"""Warm-up PCA for shift measurement (paper Equations 2–5).

FreewayML reduces the dimensionality of incoming batches before measuring
distribution shifts.  A PCA model is trained once on the first ``n`` warm-up
points: the mean :math:`\\mu` (Eq. 2) and covariance :math:`\\Sigma` (Eq. 3)
are estimated, :math:`\\Sigma = V D V^T` is eigendecomposed (Eq. 4), and the
top-``d`` eigenvectors form the component matrix :math:`P_d` (Eq. 5).
Incoming batches are then represented by :math:`\\bar y_t = P_d^T(\\mu_t -
\\mu)` (Eq. 6).
"""

from __future__ import annotations

import numpy as np

__all__ = ["WarmupPCA"]


class WarmupPCA:
    """PCA fitted once on warm-up data, then applied to the stream.

    Parameters
    ----------
    num_components:
        Target dimensionality ``d`` of the reduced space.
    warmup_points:
        Number of points to accumulate before fitting.  Batches fed to
        :meth:`observe` are buffered until this threshold, then the model
        fits itself automatically.
    representation:
        What :meth:`batch_embedding` summarizes: ``"mean"`` is the paper's
        Eq. 6 (the projected batch mean); ``"mean-std"`` appends the
        per-component standard deviation, implementing the extension the
        paper lists as future work ("explore more statistical metrics,
        such as standard deviation, to improve the representation of data
        distribution") — it lets the detector see volatility regimes whose
        mean never moves.
    """

    REPRESENTATIONS = ("mean", "mean-std")

    def __init__(self, num_components: int = 2, warmup_points: int = 2048,
                 representation: str = "mean"):
        if num_components < 1:
            raise ValueError(f"num_components must be >= 1; got {num_components}")
        if warmup_points < 2:
            raise ValueError(f"warmup_points must be >= 2; got {warmup_points}")
        if representation not in self.REPRESENTATIONS:
            raise ValueError(
                f"representation must be one of {self.REPRESENTATIONS}; "
                f"got {representation!r}"
            )
        self.num_components = num_components
        self.warmup_points = warmup_points
        self.representation = representation
        self.mean: np.ndarray | None = None          # mu (Eq. 2)
        self.components: np.ndarray | None = None    # P_d (Eq. 5), (d_in, d)
        self.explained_variance: np.ndarray | None = None
        self._buffer: list[np.ndarray] = []
        self._buffered = 0

    @property
    def is_fitted(self) -> bool:
        return self.components is not None

    def observe(self, x: np.ndarray) -> bool:
        """Feed warm-up data; fit once enough has accumulated.

        Returns ``True`` if the model is fitted after this call.  Calls after
        fitting are no-ops (the paper fits PCA once, on the initial data).
        """
        if self.is_fitted:
            return True
        x = self._flatten(x)
        self._buffer.append(x)
        self._buffered += len(x)
        if self._buffered >= self.warmup_points:
            self.fit(np.concatenate(self._buffer, axis=0))
            self._buffer.clear()
        return self.is_fitted

    def fit(self, x: np.ndarray) -> "WarmupPCA":
        """Fit mean, covariance, and components on ``x`` (Eqs. 2–5)."""
        x = self._flatten(x)
        if len(x) < 2:
            raise ValueError(f"need >= 2 points to fit PCA; got {len(x)}")
        self.mean = x.mean(axis=0)
        centered = x - self.mean
        covariance = centered.T @ centered / len(x)          # Eq. 3
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)  # Eq. 4
        order = np.argsort(eigenvalues)[::-1]
        d = min(self.num_components, x.shape[1])
        self.components = eigenvectors[:, order[:d]]          # Eq. 5
        self.explained_variance = eigenvalues[order[:d]]
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Project points into the reduced space: ``(x - mu) @ P_d``."""
        self._require_fitted()
        x = self._flatten(x)
        return (x - self.mean) @ self.components

    def batch_embedding(self, x: np.ndarray) -> np.ndarray:
        """Represent a batch by its projected summary statistics.

        With the default ``"mean"`` representation this is Eq. 6,
        :math:`\\bar y_t = P_d^T(\\mu_t - \\mu)`; with ``"mean-std"`` the
        per-component standard deviation of the projected batch is
        appended, so the embedding also moves when only the spread of the
        distribution changes.
        """
        self._require_fitted()
        x = self._flatten(x)
        batch_mean = self.components.T @ (x.mean(axis=0) - self.mean)
        if self.representation == "mean":
            return batch_mean
        projected = (x - self.mean) @ self.components
        return np.concatenate([batch_mean, projected.std(axis=0)])

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError(
                "PCA is not fitted yet; feed warm-up data via observe() or fit()"
            )

    @staticmethod
    def _flatten(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            return x.reshape(1, -1)
        return x.reshape(len(x), -1)
