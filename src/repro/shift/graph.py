"""The shift graph (paper Section III-B, Figure 2).

The paper visualizes data-distribution dynamics by reducing each batch to a
2-D PCA point and connecting points chronologically; edge lengths are shift
magnitudes.  :class:`ShiftGraph` builds that structure incrementally and
exports it as a :class:`networkx.DiGraph` (plus plain arrays) for the
Figure 2 benchmark and the example scripts.
"""

from __future__ import annotations

import numpy as np

try:  # networkx is a declared dependency, but keep the core importable without it
    import networkx as nx
except ImportError:  # pragma: no cover
    nx = None

from .pca import WarmupPCA

__all__ = ["ShiftGraph"]


class ShiftGraph:
    """Chronological graph of 2-D batch embeddings.

    Parameters
    ----------
    warmup_points:
        Points accumulated before the underlying PCA fits.  Batches observed
        during warm-up are replayed into the graph as soon as the model is
        ready, so no prefix of the stream is lost.
    """

    def __init__(self, warmup_points: int = 2048):
        self.pca = WarmupPCA(num_components=2, warmup_points=warmup_points)
        self._pending: list[np.ndarray] = []
        self._points: list[np.ndarray] = []
        self._accuracies: list[float | None] = []

    def __len__(self) -> int:
        return len(self._points)

    def observe(self, x: np.ndarray, accuracy: float | None = None) -> None:
        """Add a batch to the graph (optionally with its real-time accuracy).

        Accuracy annotations let Figure 2d-style analyses correlate shift
        magnitude with accuracy movement.
        """
        if not self.pca.is_fitted:
            self._pending.append(np.asarray(x, dtype=float))
            self._accuracies.append(accuracy)
            if self.pca.observe(x):
                for pending in self._pending:
                    self._points.append(self.pca.batch_embedding(pending))
                self._pending.clear()
            return
        self._points.append(self.pca.batch_embedding(x))
        self._accuracies.append(accuracy)

    @property
    def points(self) -> np.ndarray:
        """Embedded batch points in chronological order, shape ``(t, 2)``."""
        if not self._points:
            return np.empty((0, 2))
        return np.stack(self._points)

    @property
    def shift_magnitudes(self) -> np.ndarray:
        """Edge lengths: the shift distance between consecutive batches."""
        points = self.points
        if len(points) < 2:
            return np.empty(0)
        return np.linalg.norm(np.diff(points, axis=0), axis=1)

    @property
    def accuracies(self) -> list[float | None]:
        """Per-batch accuracy annotations aligned with :attr:`points`."""
        return list(self._accuracies[: len(self._points)])

    def accuracy_shift_correlation(self) -> float | None:
        """Pearson correlation between shift magnitude and accuracy *drop*.

        The paper's Figure 2d observation: larger shifts coincide with
        larger accuracy decreases.  Returns ``None`` if fewer than three
        annotated transitions exist.
        """
        accuracies = self.accuracies
        magnitudes = self.shift_magnitudes
        pairs = [
            (magnitudes[t - 1], accuracies[t - 1] - accuracies[t])
            for t in range(1, len(accuracies))
            if accuracies[t] is not None and accuracies[t - 1] is not None
        ]
        if len(pairs) < 3:
            return None
        shifts, drops = map(np.asarray, zip(*pairs))
        # Degenerate (near-)constant series make the correlation undefined.
        if shifts.std() < 1e-12 or drops.std() < 1e-12:
            return None
        return float(np.corrcoef(shifts, drops)[0, 1])

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` with position/shift attributes."""
        if nx is None:  # pragma: no cover
            raise RuntimeError("networkx is not installed")
        graph = nx.DiGraph()
        points = self.points
        magnitudes = self.shift_magnitudes
        for index, point in enumerate(points):
            graph.add_node(index, pos=(float(point[0]), float(point[1])),
                           accuracy=self._accuracies[index])
        for index, magnitude in enumerate(magnitudes):
            graph.add_edge(index, index + 1, shift=float(magnitude))
        return graph
