"""Shift-distance primitives (paper Equations 6–7 and the Pattern C test).

The current shift is the Euclidean distance between the embeddings of
consecutive batches, :math:`d_t = \\lVert \\bar y_t - \\bar y_{t-1} \\rVert`
(Eq. 7).  Pattern C additionally needs :math:`d_h`, the distance from the
current batch to the *nearest* previously seen distribution.
"""

from __future__ import annotations

import numpy as np

from ..perf.config import config as _perf_config

__all__ = ["shift_distance", "nearest_distance", "EmbeddingHistory"]


def shift_distance(current: np.ndarray, previous: np.ndarray) -> float:
    """Euclidean distance between two batch embeddings (Eq. 7)."""
    current = np.asarray(current, dtype=float).reshape(-1)
    previous = np.asarray(previous, dtype=float).reshape(-1)
    if current.shape != previous.shape:
        raise ValueError(
            f"embedding shape mismatch: {current.shape} vs {previous.shape}"
        )
    return float(np.linalg.norm(current - previous))


def nearest_distance(current: np.ndarray, history: np.ndarray) -> tuple[float, int]:
    """Distance and index of the nearest historical embedding (for ``d_h``)."""
    history = np.asarray(history, dtype=float)
    if history.ndim != 2 or len(history) == 0:
        raise ValueError("history must be a non-empty (k, d) array")
    current = np.asarray(current, dtype=float).reshape(-1)
    distances = np.linalg.norm(history - current, axis=1)
    index = int(distances.argmin())
    return float(distances[index]), index


class EmbeddingHistory:
    """Bounded chronological store of batch embeddings.

    Used both by the pattern classifier (to compute :math:`d_h`) and by the
    shift graph.  The most recent ``exclude_recent`` entries are skipped when
    searching for the nearest historical distribution, so the "previous
    batch" itself does not masquerade as a reoccurrence.

    Storage is one preallocated ``(2·capacity, d)`` buffer with a sliding
    ``[start, start+count)`` window, maintained incrementally on append
    and evict — :meth:`nearest` and :meth:`as_array` never restack the
    history.  Appends are amortized O(d): eviction advances ``start``,
    and a compaction memmove runs once every ``capacity`` appends when
    the window reaches the buffer's end.  A squared norm per row is
    cached alongside, so with :data:`repro.perf.config.cached_nearest`
    on, :meth:`nearest` expands ``|h - c|² = |h|² − 2 h·c + |c|²`` into
    one matrix-vector product instead of forming the difference matrix.
    """

    def __init__(self, capacity: int = 256, exclude_recent: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1; got {capacity}")
        if exclude_recent < 0:
            raise ValueError(f"exclude_recent must be >= 0; got {exclude_recent}")
        self.capacity = capacity
        self.exclude_recent = exclude_recent
        self._buffer: np.ndarray | None = None
        self._norms: np.ndarray | None = None
        self._start = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _live(self, count: int | None = None) -> np.ndarray:
        """Contiguous oldest-first view of the first ``count`` live rows."""
        count = self._count if count is None else count
        return self._buffer[self._start:self._start + count]

    def append(self, embedding: np.ndarray) -> None:
        """Record a batch embedding, evicting the oldest beyond capacity."""
        row = np.asarray(embedding, dtype=float).reshape(-1)
        buffer = self._buffer
        if buffer is None or buffer.shape[1] != row.size:
            # First append, or the embedding space changed (PCA refit):
            # (re)build the buffer in the new dimensionality.
            buffer = np.empty((2 * self.capacity, row.size))
            self._buffer = buffer
            self._norms = np.empty(2 * self.capacity)
            self._start = 0
            self._count = 0
        end = self._start + self._count
        if end == buffer.shape[0]:
            # Window hit the buffer's end: slide it back to the front.
            buffer[:self._count] = buffer[self._start:end]
            self._norms[:self._count] = self._norms[self._start:end]
            self._start = 0
            end = self._count
        buffer[end] = row
        self._norms[end] = row @ row
        if self._count == self.capacity:
            self._start += 1  # evict the oldest row
        else:
            self._count += 1

    def as_array(self) -> np.ndarray:
        """All stored embeddings as a ``(k, d)`` array, oldest first."""
        if not self._count:
            return np.empty((0, 0))
        return self._live().copy()

    def nearest(self, embedding: np.ndarray) -> tuple[float, int] | None:
        """Nearest stored embedding, excluding the most recent entries.

        Returns ``(distance, index)`` or ``None`` if too little history
        exists to make the comparison meaningful.
        """
        usable = self._count - self.exclude_recent
        if usable <= 0:
            return None
        current = np.asarray(embedding, dtype=float).reshape(-1)
        history = self._live(usable)
        if _perf_config.cached_nearest and current.size == history.shape[1]:
            norms = self._norms[self._start:self._start + usable]
            squared = norms - 2.0 * (history @ current) + current @ current
            index = int(squared.argmin())
            return float(np.sqrt(max(float(squared[index]), 0.0))), index
        return nearest_distance(current, history)
