"""Shift-distance primitives (paper Equations 6–7 and the Pattern C test).

The current shift is the Euclidean distance between the embeddings of
consecutive batches, :math:`d_t = \\lVert \\bar y_t - \\bar y_{t-1} \\rVert`
(Eq. 7).  Pattern C additionally needs :math:`d_h`, the distance from the
current batch to the *nearest* previously seen distribution.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["shift_distance", "nearest_distance", "EmbeddingHistory"]


def shift_distance(current: np.ndarray, previous: np.ndarray) -> float:
    """Euclidean distance between two batch embeddings (Eq. 7)."""
    current = np.asarray(current, dtype=float).reshape(-1)
    previous = np.asarray(previous, dtype=float).reshape(-1)
    if current.shape != previous.shape:
        raise ValueError(
            f"embedding shape mismatch: {current.shape} vs {previous.shape}"
        )
    return float(np.linalg.norm(current - previous))


def nearest_distance(current: np.ndarray, history: np.ndarray) -> tuple[float, int]:
    """Distance and index of the nearest historical embedding (for ``d_h``)."""
    history = np.asarray(history, dtype=float)
    if history.ndim != 2 or len(history) == 0:
        raise ValueError("history must be a non-empty (k, d) array")
    current = np.asarray(current, dtype=float).reshape(-1)
    distances = np.linalg.norm(history - current, axis=1)
    index = int(distances.argmin())
    return float(distances[index]), index


class EmbeddingHistory:
    """Bounded chronological store of batch embeddings.

    Used both by the pattern classifier (to compute :math:`d_h`) and by the
    shift graph.  The most recent ``exclude_recent`` entries are skipped when
    searching for the nearest historical distribution, so the "previous
    batch" itself does not masquerade as a reoccurrence.
    """

    def __init__(self, capacity: int = 256, exclude_recent: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1; got {capacity}")
        if exclude_recent < 0:
            raise ValueError(f"exclude_recent must be >= 0; got {exclude_recent}")
        self.capacity = capacity
        self.exclude_recent = exclude_recent
        self._entries: deque[np.ndarray] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, embedding: np.ndarray) -> None:
        """Record a batch embedding."""
        self._entries.append(np.asarray(embedding, dtype=float).reshape(-1))

    def as_array(self) -> np.ndarray:
        """All stored embeddings as a ``(k, d)`` array, oldest first."""
        if not self._entries:
            return np.empty((0, 0))
        return np.stack(self._entries)

    def nearest(self, embedding: np.ndarray) -> tuple[float, int] | None:
        """Nearest stored embedding, excluding the most recent entries.

        Returns ``(distance, index)`` or ``None`` if too little history
        exists to make the comparison meaningful.
        """
        usable = len(self._entries) - self.exclude_recent
        if usable <= 0:
            return None
        history = np.stack(list(self._entries)[:usable])
        return nearest_distance(embedding, history)
