"""Maximum Mean Discrepancy — a richer shift distance (paper future work).

The paper measures shifts as the Euclidean distance between projected batch
means (Eqs. 6–7) and explicitly plans "more statistical metrics" as future
work.  MMD with an RBF kernel is the canonical such metric: it compares the
*full* distributions (all moments), so it separates batches that share a
mean but differ in shape — at O(n^2) (or O(n) for the linear-time
estimator) instead of O(nd).

Provided as a standalone metric plus :class:`MMDShiftScorer`, a drop-in
producer of shift distances compatible with
:class:`~repro.shift.severity.SeverityTracker`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mmd_rbf", "median_heuristic_bandwidth", "MMDShiftScorer"]


def median_heuristic_bandwidth(x: np.ndarray, y: np.ndarray,
                               max_points: int = 256,
                               seed: int = 0) -> float:
    """The standard RBF bandwidth choice: median pairwise distance."""
    x = np.asarray(x, dtype=float).reshape(len(x), -1)
    y = np.asarray(y, dtype=float).reshape(len(y), -1)
    pooled = np.concatenate([x, y])
    if len(pooled) > max_points:
        rng = np.random.default_rng(seed)
        pooled = pooled[rng.choice(len(pooled), max_points, replace=False)]
    deltas = pooled[:, None, :] - pooled[None, :, :]
    distances = np.sqrt((deltas ** 2).sum(axis=2))
    upper = distances[np.triu_indices(len(pooled), k=1)]
    median = float(np.median(upper))
    return max(median, 1e-6)


def _rbf_kernel_mean(a: np.ndarray, b: np.ndarray, bandwidth: float,
                     exclude_diagonal: bool) -> float:
    deltas = a[:, None, :] - b[None, :, :]
    squared = (deltas ** 2).sum(axis=2)
    kernel = np.exp(-squared / (2.0 * bandwidth ** 2))
    if exclude_diagonal:
        count = len(a) * (len(a) - 1)
        return float((kernel.sum() - np.trace(kernel)) / max(count, 1))
    return float(kernel.mean())


def mmd_rbf(x: np.ndarray, y: np.ndarray, bandwidth: float | None = None,
            max_points: int = 256, seed: int = 0) -> float:
    """Unbiased squared MMD between samples ``x`` and ``y`` (RBF kernel).

    Batches larger than ``max_points`` are subsampled (seeded) so the cost
    stays bounded on 1024-row streaming batches.  Returns
    ``max(MMD^2, 0)`` — the unbiased estimator can dip slightly negative.
    """
    x = np.asarray(x, dtype=float).reshape(len(x), -1)
    y = np.asarray(y, dtype=float).reshape(len(y), -1)
    if len(x) < 2 or len(y) < 2:
        raise ValueError("MMD needs >= 2 points per sample")
    rng = np.random.default_rng(seed)
    if len(x) > max_points:
        x = x[rng.choice(len(x), max_points, replace=False)]
    if len(y) > max_points:
        y = y[rng.choice(len(y), max_points, replace=False)]
    if bandwidth is None:
        bandwidth = median_heuristic_bandwidth(x, y, max_points=max_points,
                                               seed=seed)
    value = (
        _rbf_kernel_mean(x, x, bandwidth, exclude_diagonal=True)
        + _rbf_kernel_mean(y, y, bandwidth, exclude_diagonal=True)
        - 2.0 * _rbf_kernel_mean(x, y, bandwidth, exclude_diagonal=False)
    )
    return float(max(value, 0.0))


class MMDShiftScorer:
    """Produce per-batch MMD shift distances against the previous batch.

    A drop-in alternative to the Eq. 6–7 embedding distance for feeding a
    :class:`~repro.shift.severity.SeverityTracker`: call :meth:`score` on
    each incoming batch and get the MMD to the batch before it.  A fixed
    bandwidth (estimated on the first pair, the usual practice) keeps the
    distances comparable across the stream.
    """

    def __init__(self, max_points: int = 128, seed: int = 0):
        self.max_points = max_points
        self.seed = seed
        self.bandwidth: float | None = None
        self._previous: np.ndarray | None = None

    def score(self, x: np.ndarray) -> float | None:
        """MMD^2 between this batch and the previous one (``None`` first)."""
        x = np.asarray(x, dtype=float).reshape(len(x), -1)
        previous, self._previous = self._previous, x
        if previous is None:
            return None
        if self.bandwidth is None:
            self.bandwidth = median_heuristic_bandwidth(
                previous, x, max_points=self.max_points, seed=self.seed
            )
        return mmd_rbf(previous, x, bandwidth=self.bandwidth,
                       max_points=self.max_points, seed=self.seed)
