"""Shift-pattern classification (paper Section III-C).

Combines the warm-up PCA (Eqs. 2–6), shift distances (Eq. 7), and severity
scoring (Eqs. 8–10) into the pattern classifier the strategy selector is
built on:

- **Pattern A** (slight): ``M < alpha``;
- **Pattern B** (sudden): ``M > alpha``;
- **Pattern C** (reoccurring): ``M > alpha`` and the nearest historical
  distribution is closer than the previous batch (``d_h < d_t``).

The classifier is purely observational: it never looks at labels or at the
ground-truth annotations carried by synthetic streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..obs import NULL_OBS
from .distance import EmbeddingHistory, shift_distance
from .pca import WarmupPCA
from .severity import SeverityTracker

__all__ = ["ShiftPattern", "ShiftAssessment", "PatternClassifier"]


class ShiftPattern(str, Enum):
    """The paper's shift taxonomy, plus the warm-up phase."""

    WARMUP = "warmup"
    SLIGHT = "slight"           # Pattern A
    SUDDEN = "sudden"           # Pattern B
    REOCCURRING = "reoccurring"  # Pattern C

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class ShiftAssessment:
    """Everything the classifier derived about one batch.

    Attributes
    ----------
    pattern:
        The classified :class:`ShiftPattern`.
    embedding:
        The batch's PCA embedding :math:`\\bar y_t` (``None`` during warm-up).
    distance:
        Current shift distance :math:`d_t` from the previous batch.
    severity:
        Severity score ``M`` (Eq. 10); ``None`` while history is too short.
    historical_distance:
        Distance :math:`d_h` to the nearest historical distribution, and
    historical_index:
        its index in the embedding history (both ``None`` if no usable
        history).
    """

    pattern: ShiftPattern
    embedding: np.ndarray | None = None
    distance: float | None = None
    severity: float | None = None
    historical_distance: float | None = None
    historical_index: int | None = None


class PatternClassifier:
    """Stateful per-batch shift-pattern classifier.

    Parameters
    ----------
    alpha:
        Severity threshold separating slight from severe shifts (the paper
        uses 1.96).
    num_components:
        PCA dimensionality for shift measurement.
    warmup_points:
        Points accumulated before PCA fits; batches during warm-up are
        classified :data:`ShiftPattern.WARMUP`.
    severity_window / severity_decay:
        History length ``k`` and recency factor for Eqs. 8–9.
    history_capacity:
        How many batch embeddings are retained for the ``d_h`` comparison.
    reoccurrence_ratio:
        Pattern C requires ``d_h < reoccurrence_ratio * d_t``.  The paper
        states the plain rule ``d_h < d_t`` (ratio 1.0), but after a large
        jump *some* old embedding is frequently nearer than the previous
        batch even for a genuinely novel distribution; a ratio of 0.5
        demands the historical match be substantially closer, which is what
        makes the selector reliably separate B from C in practice.
    min_shift_factor:
        A severe classification additionally requires
        ``d_t > min_shift_factor * mu_d``.  A pure z-score fires on ~2.5%
        of batches of pure noise (that is what "statistically significant"
        means); genuine sudden shifts are also large in *magnitude*, so
        this guard removes the false alarms without touching real shifts.
    reoccurrence_scale:
        Pattern C further requires the historical match to sit within
        slight-shift range, ``d_h <= mu_d + reoccurrence_scale * sigma_d``
        — a genuine reoccurrence lands *inside* a previously seen
        distribution, whereas a jump that merely passes near old territory
        does not.
    representation:
        Batch distribution summary: ``"mean"`` (the paper's Eq. 6) or
        ``"mean-std"`` (the paper's future-work extension; see
        :class:`~repro.shift.pca.WarmupPCA`).
    obs:
        Optional :class:`~repro.obs.Observability`; assessments run inside
        a ``shift.assess`` span and feed a per-pattern counter.
    """

    def __init__(self, alpha: float = 1.96, num_components: int = 2,
                 warmup_points: int = 2048, severity_window: int = 20,
                 severity_decay: float = 0.9, history_capacity: int = 256,
                 reoccurrence_ratio: float = 0.5,
                 min_shift_factor: float = 3.0,
                 reoccurrence_scale: float = 4.0,
                 representation: str = "mean", obs=None):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive; got {alpha}")
        if not 0.0 < reoccurrence_ratio <= 1.0:
            raise ValueError(
                f"reoccurrence_ratio must be in (0, 1]; got {reoccurrence_ratio}"
            )
        if min_shift_factor < 1.0:
            raise ValueError(
                f"min_shift_factor must be >= 1; got {min_shift_factor}"
            )
        if reoccurrence_scale <= 0:
            raise ValueError(
                f"reoccurrence_scale must be positive; got {reoccurrence_scale}"
            )
        self.alpha = alpha
        self.reoccurrence_ratio = reoccurrence_ratio
        self.min_shift_factor = min_shift_factor
        self.reoccurrence_scale = reoccurrence_scale
        self.pca = WarmupPCA(num_components=num_components,
                             warmup_points=warmup_points,
                             representation=representation)
        self.severity = SeverityTracker(window=severity_window,
                                        decay=severity_decay)
        self.history = EmbeddingHistory(capacity=history_capacity,
                                        exclude_recent=1)
        self.obs = obs if obs is not None else NULL_OBS
        self._previous_embedding: np.ndarray | None = None

    def assess(self, x: np.ndarray) -> ShiftAssessment:
        """Classify the shift that produced batch ``x``.

        Feeds warm-up data to the PCA until it fits; afterwards computes the
        embedding, the shift distance, the severity score, and the
        historical-distance comparison, and updates all internal state.
        """
        with self.obs.tracer.span("shift.assess"):
            assessment = self._assess(x)
        if self.obs.enabled:
            self.obs.registry.counter(
                "freeway_shift_assessments_total",
                "batches assessed per shift pattern",
            ).labels(pattern=assessment.pattern.value).inc()
        return assessment

    def _assess(self, x: np.ndarray) -> ShiftAssessment:
        if not self.pca.is_fitted:
            fitted = self.pca.observe(x)
            if not fitted:
                return ShiftAssessment(pattern=ShiftPattern.WARMUP)
            # PCA just fitted on the warm-up buffer; treat this batch as the
            # starting point of the shift series.
            embedding = self.pca.batch_embedding(x)
            self._remember(embedding)
            return ShiftAssessment(pattern=ShiftPattern.WARMUP,
                                   embedding=embedding)

        embedding = self.pca.batch_embedding(x)
        if self._previous_embedding is None:
            self._remember(embedding)
            return ShiftAssessment(pattern=ShiftPattern.WARMUP,
                                   embedding=embedding)

        distance = shift_distance(embedding, self._previous_embedding)
        severity = self.severity.score(distance)
        nearest = self.history.nearest(embedding)
        historical_distance, historical_index = (
            nearest if nearest is not None else (None, None)
        )

        severe = (severity is not None and severity > self.alpha
                  and distance > self.min_shift_factor
                  * self.severity.weighted_mean())
        if not severe:
            pattern = ShiftPattern.SLIGHT
        elif (historical_distance is not None
              and historical_distance < self.reoccurrence_ratio * distance
              and historical_distance <= self._slight_scale()):
            pattern = ShiftPattern.REOCCURRING
        else:
            pattern = ShiftPattern.SUDDEN

        # Only slight shifts feed the severity history: a severe d_t would
        # inflate mu_d/sigma_d and mute detection of the *next* shift.
        if pattern is ShiftPattern.SLIGHT:
            self.severity.observe(distance)
        self._remember(embedding)
        return ShiftAssessment(
            pattern=pattern,
            embedding=embedding,
            distance=distance,
            severity=severity,
            historical_distance=historical_distance,
            historical_index=historical_index,
        )

    def _slight_scale(self) -> float:
        """Upper bound of "within one distribution" distances."""
        return (self.severity.weighted_mean()
                + self.reoccurrence_scale * self.severity.std())

    def _remember(self, embedding: np.ndarray) -> None:
        self.history.append(embedding)
        self._previous_embedding = embedding
