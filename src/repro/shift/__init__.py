"""``repro.shift`` — shift graph, distances, severity, pattern classification.

Implements the paper's Section III machinery: warm-up PCA (Eqs. 2–5), shift
distances (Eqs. 6–7), severity scoring (Eqs. 8–10), the A/B/C pattern
classifier, and the shift-graph visualization structure behind Figure 2.
"""

from .distance import EmbeddingHistory, nearest_distance, shift_distance
from .graph import ShiftGraph
from .mmd import MMDShiftScorer, median_heuristic_bandwidth, mmd_rbf
from .patterns import PatternClassifier, ShiftAssessment, ShiftPattern
from .pca import WarmupPCA
from .severity import SeverityTracker

__all__ = [
    "WarmupPCA",
    "shift_distance",
    "nearest_distance",
    "EmbeddingHistory",
    "SeverityTracker",
    "ShiftPattern",
    "ShiftAssessment",
    "PatternClassifier",
    "ShiftGraph",
    "mmd_rbf",
    "median_heuristic_bandwidth",
    "MMDShiftScorer",
]
