"""Shift-severity scoring (paper Equations 8–10).

The severity of the current shift is its z-score against the recent shift
history: a recency-weighted mean :math:`\\mu_d` (Eq. 8) and standard
deviation :math:`\\sigma_d` (Eq. 9) are maintained over the last ``k`` shift
distances, and the magnitude :math:`M = (d_t - \\mu_d) / \\sigma_d`
(Eq. 10) is compared with the statistical threshold :math:`\\alpha`
(1.96 by default, as in the paper's experiments).
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["SeverityTracker"]


class SeverityTracker:
    """Rolling, recency-weighted statistics over shift distances.

    Parameters
    ----------
    window:
        Number of past shift distances ``k`` to keep.
    decay:
        Geometric recency factor: the weight of the shift ``i`` steps back is
        ``decay ** i``, so recent shifts dominate (the paper assigns "higher
        weights to more recent batches").
    min_history:
        Number of shifts required before a severity score is meaningful;
        :meth:`score` returns ``None`` until then.
    """

    def __init__(self, window: int = 20, decay: float = 0.9,
                 min_history: int = 3, epsilon: float = 1e-12):
        if window < 1:
            raise ValueError(f"window must be >= 1; got {window}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1]; got {decay}")
        if min_history < 2:
            raise ValueError(f"min_history must be >= 2; got {min_history}")
        self.window = window
        self.decay = decay
        self.min_history = min_history
        self.epsilon = epsilon
        self._distances: deque[float] = deque(maxlen=window)
        # Stats memo: the serving loop asks for the mean/std several times
        # per observation (score -> mean + std, plus direct reads), so the
        # pair is computed once per history version.  The geometric weight
        # vector depends only on the history length and is cached per
        # length (bounded by ``window`` entries).
        self._version = 0
        self._stats_version = -1
        self._stats: tuple[float, float] = (0.0, 0.0)
        self._weights_by_len: dict[int, tuple[np.ndarray, float]] = {}

    def __len__(self) -> int:
        return len(self._distances)

    @property
    def ready(self) -> bool:
        """Whether enough history exists to score a shift."""
        return len(self._distances) >= self.min_history

    def observe(self, distance: float) -> None:
        """Record a shift distance into the history."""
        if distance < 0:
            raise ValueError(f"shift distance must be >= 0; got {distance}")
        self._distances.append(float(distance))
        self._version += 1

    def restore(self, values) -> None:
        """Replace the history wholesale (checkpoint restore)."""
        self._distances.clear()
        self._distances.extend(float(v) for v in values)
        self._version += 1

    def _compute_stats(self) -> tuple[float, float]:
        if self._stats_version != self._version:
            distances = np.asarray(self._distances)  # oldest first
            cached = self._weights_by_len.get(len(distances))
            if cached is None:
                weights = self.decay ** np.arange(len(distances) - 1, -1, -1)
                cached = (weights, float(weights.sum()))
                self._weights_by_len[len(distances)] = cached
            weights, weight_sum = cached
            mean = float((weights * distances).sum() / weight_sum)
            std = float(np.sqrt(((distances - mean) ** 2).mean()))
            self._stats = (mean, std)
            self._stats_version = self._version
        return self._stats

    def weighted_mean(self) -> float:
        """Recency-weighted mean of past shifts (Eq. 8)."""
        return self._compute_stats()[0]

    def std(self) -> float:
        """Standard deviation of past shifts around the weighted mean (Eq. 9)."""
        return self._compute_stats()[1]

    def score(self, distance: float) -> float | None:
        """Severity ``M`` of a candidate shift (Eq. 10), or ``None`` early on.

        ``M`` is unbounded above; a degenerate history (all shifts equal)
        yields a large finite score for any strictly larger shift rather than
        infinity.
        """
        if not self.ready:
            return None
        mean, std = self._compute_stats()
        return float((distance - mean) / max(std, self.epsilon * (1.0 + mean)))
