"""Shift-severity scoring (paper Equations 8–10).

The severity of the current shift is its z-score against the recent shift
history: a recency-weighted mean :math:`\\mu_d` (Eq. 8) and standard
deviation :math:`\\sigma_d` (Eq. 9) are maintained over the last ``k`` shift
distances, and the magnitude :math:`M = (d_t - \\mu_d) / \\sigma_d`
(Eq. 10) is compared with the statistical threshold :math:`\\alpha`
(1.96 by default, as in the paper's experiments).
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["SeverityTracker"]


class SeverityTracker:
    """Rolling, recency-weighted statistics over shift distances.

    Parameters
    ----------
    window:
        Number of past shift distances ``k`` to keep.
    decay:
        Geometric recency factor: the weight of the shift ``i`` steps back is
        ``decay ** i``, so recent shifts dominate (the paper assigns "higher
        weights to more recent batches").
    min_history:
        Number of shifts required before a severity score is meaningful;
        :meth:`score` returns ``None`` until then.
    """

    def __init__(self, window: int = 20, decay: float = 0.9,
                 min_history: int = 3, epsilon: float = 1e-12):
        if window < 1:
            raise ValueError(f"window must be >= 1; got {window}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1]; got {decay}")
        if min_history < 2:
            raise ValueError(f"min_history must be >= 2; got {min_history}")
        self.window = window
        self.decay = decay
        self.min_history = min_history
        self.epsilon = epsilon
        self._distances: deque[float] = deque(maxlen=window)

    def __len__(self) -> int:
        return len(self._distances)

    @property
    def ready(self) -> bool:
        """Whether enough history exists to score a shift."""
        return len(self._distances) >= self.min_history

    def observe(self, distance: float) -> None:
        """Record a shift distance into the history."""
        if distance < 0:
            raise ValueError(f"shift distance must be >= 0; got {distance}")
        self._distances.append(float(distance))

    def weighted_mean(self) -> float:
        """Recency-weighted mean of past shifts (Eq. 8)."""
        distances = np.asarray(self._distances)  # oldest first
        weights = self.decay ** np.arange(len(distances) - 1, -1, -1)
        return float((weights * distances).sum() / weights.sum())

    def std(self) -> float:
        """Standard deviation of past shifts around the weighted mean (Eq. 9)."""
        distances = np.asarray(self._distances)
        mean = self.weighted_mean()
        return float(np.sqrt(((distances - mean) ** 2).mean()))

    def score(self, distance: float) -> float | None:
        """Severity ``M`` of a candidate shift (Eq. 10), or ``None`` early on.

        ``M`` is unbounded above; a degenerate history (all shifts equal)
        yields a large finite score for any strictly larger shift rather than
        infinity.
        """
        if not self.ready:
            return None
        mean = self.weighted_mean()
        std = self.std()
        return float((distance - mean) / max(std, self.epsilon * (1.0 + mean)))
