"""FreewayML — an adaptive and stable streaming learning framework.

Reproduction of "FreewayML: An Adaptive and Stable Streaming Learning
Framework for Dynamic Data Streams" (ICDE 2025).  The public API mirrors
the paper's interface::

    from repro import Learner
    from repro.models import StreamingMLP

    factory = lambda: StreamingMLP(num_features=20, num_classes=5, lr=0.3)
    sml = Learner(factory, num_models=2, knowledge_capacity=20,
                  experience_expiration=10, alpha=1.96)
    for batch in stream:
        report = sml.process(batch)   # test-then-train

The facade in :mod:`repro.api` is the stable entry point: ``FreewayML``
(an alias of :class:`Learner`), :func:`make_learner` (which returns a
:class:`~repro.distributed.DistributedLearner` for ``num_workers > 1`` or
a non-serial ``backend``), the :class:`StreamingEstimator` protocol every
estimator here implements, and the :class:`BaseReport` family their
``process`` methods return.

Subpackages: :mod:`repro.nn` (the numpy autograd substrate standing in for
PyTorch), :mod:`repro.data` (streams, generators, dataset simulators),
:mod:`repro.shift` (shift graph + pattern classification),
:mod:`repro.models` (Streaming LR/MLP/CNN, k-means), :mod:`repro.core`
(the FreewayML mechanisms), :mod:`repro.distributed` (execution backends
+ data-parallel coordinator), :mod:`repro.baselines` (the six comparison
frameworks), :mod:`repro.metrics` and :mod:`repro.eval` (prequential
evaluation and the benchmark harness).
"""

from .api import BaseReport, StreamingEstimator, make_learner, report_from_dict
from .core.learner import BatchReport, Learner, PredictionResult

#: Facade alias — the paper's framework under its own name.
FreewayML = Learner

__version__ = "1.0.0"

__all__ = [
    "Learner",
    "FreewayML",
    "make_learner",
    "StreamingEstimator",
    "PredictionResult",
    "BatchReport",
    "BaseReport",
    "report_from_dict",
    "__version__",
]
