"""FreewayML — an adaptive and stable streaming learning framework.

Reproduction of "FreewayML: An Adaptive and Stable Streaming Learning
Framework for Dynamic Data Streams" (ICDE 2025).  The public API mirrors
the paper's interface::

    from repro import Learner
    from repro.models import StreamingMLP

    factory = lambda: StreamingMLP(num_features=20, num_classes=5, lr=0.3)
    sml = Learner(factory, num_models=2, knowledge_capacity=20,
                  experience_expiration=10, alpha=1.96)
    for batch in stream:
        report = sml.process(batch)   # test-then-train

Subpackages: :mod:`repro.nn` (the numpy autograd substrate standing in for
PyTorch), :mod:`repro.data` (streams, generators, dataset simulators),
:mod:`repro.shift` (shift graph + pattern classification),
:mod:`repro.models` (Streaming LR/MLP/CNN, k-means), :mod:`repro.core`
(the FreewayML mechanisms), :mod:`repro.baselines` (the six comparison
frameworks), :mod:`repro.metrics` and :mod:`repro.eval` (prequential
evaluation and the benchmark harness).
"""

from .core.learner import BatchReport, Learner, PredictionResult

__version__ = "1.0.0"

__all__ = ["Learner", "PredictionResult", "BatchReport", "__version__"]
