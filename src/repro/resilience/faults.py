"""Deterministic fault injectors for chaos testing the streaming pipeline.

Production streams misbehave in a handful of canonical ways: a worker
process dies mid-batch, a batch stalls, features arrive with NaN/inf
cells, a preserved checkpoint is corrupted on disk.  Each injector here
reproduces one of those failures *deterministically* — the trigger
schedule is either explicit (``at={...}``) or drawn from a seeded RNG, so
the same seed replays the exact same chaos and a test can assert the
precise recovery behaviour.

Plug points:

- :class:`DirtyData` and :class:`SlowBatch` are stream transforms — pass
  them to :meth:`~repro.data.stream.DataStream.map`;
- :class:`WorkerCrash` and :class:`SlowBatch` attach to a
  :class:`~repro.distributed.backends.ProcessBackend`
  (``injector.attach(backend)``), which consults them before dispatching
  each shard;
- :class:`CorruptCheckpoint` attaches to a
  :class:`~repro.core.knowledge.KnowledgeStore` and mangles entries as
  they are preserved, so the next restore trips the static compatibility
  gate.

Every injector records what it did in ``fired`` (a list of opportunity
indices), so tests can assert the chaos actually happened.
"""

from __future__ import annotations

import copy
import time

import numpy as np

from ..data.stream import Batch

__all__ = [
    "FaultInjector",
    "WorkerCrash",
    "SlowBatch",
    "DirtyData",
    "CorruptCheckpoint",
]


class FaultInjector:
    """Base class: a deterministic, seedable trigger schedule.

    Parameters
    ----------
    at:
        Explicit opportunity indices that fire (a set of ints).  When
        given, ``rate`` is ignored — the schedule is fully explicit.
    rate:
        Per-opportunity firing probability in [0, 1], drawn from a
        dedicated ``numpy`` generator seeded with ``seed`` — two injectors
        with the same seed and the same call sequence fire identically.
    seed:
        Seeds the trigger RNG (and any payload randomness in subclasses).
    """

    def __init__(self, *, at=None, rate: float = 0.0, seed: int = 0):
        if at is None and not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1]; got {rate}")
        self.at = frozenset(int(i) for i in at) if at is not None else None
        self.rate = float(rate)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._opportunities = 0
        self.fired: list[int] = []

    def should_fire(self, index: int | None = None) -> bool:
        """One trigger opportunity; ``index`` defaults to the call count.

        Deterministic: with ``at`` the decision is a set lookup; without,
        one draw is consumed per opportunity in call order.
        """
        if index is None:
            index = self._opportunities
        self._opportunities += 1
        if self.at is not None:
            fire = int(index) in self.at
        else:
            fire = bool(self._rng.random() < self.rate)
        if fire:
            self.fired.append(int(index))
        return fire

    def reset(self) -> None:
        """Rewind to the initial schedule (same seed, fresh draw stream)."""
        self._rng = np.random.default_rng(self.seed)
        self._opportunities = 0
        self.fired = []


def _copy_with_x(batch: Batch, x: np.ndarray) -> Batch:
    """Shallow-copy ``batch`` with ``x`` swapped in, skipping validation.

    :class:`Batch` rejects non-finite features by design; a dirty-data
    injector exists precisely to smuggle such values past the front door,
    so it bypasses ``__post_init__``.
    """
    dirty = copy.copy(batch)
    dirty.x = x
    return dirty


class DirtyData(FaultInjector):
    """Corrupt a fraction of feature cells with NaN/inf.

    A stream transform: ``stream.map(injector)``.  On a firing batch,
    ``cells`` randomly chosen cells are overwritten — half NaN, half
    ±inf — in a copy (the source batch is never mutated).  The corrupted
    batch bypasses :class:`Batch` validation, exactly like a dirty
    upstream producer would.
    """

    def __init__(self, *, at=None, rate: float = 0.0, cells: int = 8,
                 seed: int = 0):
        super().__init__(at=at, rate=rate, seed=seed)
        if cells < 1:
            raise ValueError(f"cells must be >= 1; got {cells}")
        self.cells = cells
        self.corrupted_cells = 0

    def __call__(self, batch: Batch) -> Batch:
        if not self.should_fire(batch.index):
            return batch
        x = batch.x.copy()
        flat = x.reshape(-1)
        count = min(self.cells, flat.size)
        positions = self._rng.choice(flat.size, size=count, replace=False)
        values = np.where(self._rng.random(count) < 0.5, np.nan, np.inf)
        values = np.where(self._rng.random(count) < 0.25, -np.inf, values)
        flat[positions] = values
        self.corrupted_cells += count
        return _copy_with_x(batch, x)


class SlowBatch(FaultInjector):
    """Stall a batch (stream transform) or a worker (backend hook).

    As a stream transform, a firing batch is delayed by ``delay`` seconds
    before being yielded downstream — latency chaos for benchmarks.
    Attached to a :class:`ProcessBackend`, a firing (worker, sequence)
    dispatch makes that worker sleep ``delay`` seconds before its shard;
    with the backend's ``hang_timeout`` below the delay the supervisor
    declares the worker hung and restarts it.
    """

    def __init__(self, *, at=None, rate: float = 0.0, delay: float = 0.2,
                 worker: int | None = None, seed: int = 0):
        super().__init__(at=at, rate=rate, seed=seed)
        if delay < 0:
            raise ValueError(f"delay must be >= 0; got {delay}")
        self.delay = float(delay)
        self.worker = worker

    def __call__(self, batch: Batch) -> Batch:
        if self.should_fire(batch.index):
            time.sleep(self.delay)
        return batch

    # -- backend hook ---------------------------------------------------------

    def delay_before(self, worker_index: int, sequence: int) -> float:
        """Seconds this worker should stall before the given dispatch."""
        if self.worker is not None and worker_index != self.worker:
            return 0.0
        return self.delay if self.should_fire(sequence) else 0.0

    def attach(self, backend) -> "SlowBatch":
        backend.faults.append(self)
        return self


class WorkerCrash(FaultInjector):
    """Kill a worker process just before it would run a shard.

    Attach to a :class:`ProcessBackend`; on a firing (worker, sequence)
    dispatch the backend orders that child to ``os._exit`` instead of
    sending it the shard, so the shard is genuinely lost in flight and
    the supervisor must detect the death, restart the worker, re-seed it
    from the last synchronized state, and resubmit the shard.
    """

    def __init__(self, *, at=None, rate: float = 0.0,
                 worker: int | None = None, seed: int = 0):
        super().__init__(at=at, rate=rate, seed=seed)
        self.worker = worker

    # -- backend hook ---------------------------------------------------------

    def crash_before(self, worker_index: int, sequence: int) -> bool:
        """Whether this worker should die before the given dispatch."""
        if self.worker is not None and worker_index != self.worker:
            return False
        return self.should_fire(sequence)

    def attach(self, backend) -> "WorkerCrash":
        backend.faults.append(self)
        return self


class CorruptCheckpoint(FaultInjector):
    """Mangle knowledge entries as they are preserved.

    Attached to a :class:`~repro.core.knowledge.KnowledgeStore`, a firing
    preservation gets its stored ``state_dict`` corrupted — the first
    parameter is truncated and re-dtyped — so a later
    :meth:`KnowledgeStore.restore` trips the static compatibility check,
    emits :class:`~repro.obs.CheckpointRejected`, and the learner
    downgrades instead of loading garbage weights.
    """

    def attach(self, store) -> "CorruptCheckpoint":
        """Wrap ``store.preserve`` so firing entries are corrupted."""
        original = store.preserve

        def preserve(embedding, state, model_kind, disorder, batch_index):
            entry = original(embedding, state, model_kind, disorder,
                             batch_index)
            if self.should_fire(batch_index):
                self.corrupt(entry.state)
            return entry

        store.preserve = preserve
        return self

    @staticmethod
    def corrupt(state: dict) -> dict:
        """Truncate + re-dtype the first parameter in place."""
        for name in sorted(state):
            value = np.asarray(state[name])
            if value.size > 1:
                state[name] = value.reshape(-1)[:-1].astype(np.float32)
                return state
        # Degenerate all-scalar state: re-dtype only.
        for name in sorted(state):
            state[name] = np.asarray(state[name]).astype(np.int32)
            return state
        return state
