"""Circuit breaker for the learner's graceful-degradation chain.

When a mechanism (knowledge reuse, CEC, the ensemble, ASW training) keeps
raising, retrying it every batch just pays the failure cost repeatedly.
The breaker counts *consecutive* failures per mechanism; at
``threshold`` the circuit opens and the mechanism is skipped outright
until ``cooldown`` batches elapse, after which one retry is allowed
(half-open).  A success closes the circuit and resets the count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CircuitBreaker"]


@dataclass
class _Circuit:
    failures: int = 0            # consecutive failures
    opened_at: int | None = None  # clock tick the circuit opened, if open


@dataclass
class CircuitBreaker:
    """Per-mechanism consecutive-failure breaker with cooldown.

    Parameters
    ----------
    threshold:
        Consecutive failures that open a mechanism's circuit.
    cooldown:
        Clock ticks (batches) an open circuit blocks retries.  After the
        cooldown the next :meth:`allow` returns True once (half-open);
        the retry's outcome decides whether the circuit closes or
        re-opens for another full cooldown.
    """

    threshold: int = 3
    cooldown: int = 10
    _clock: int = 0
    _circuits: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.threshold < 1:
            raise ValueError(f"threshold must be >= 1; got {self.threshold}")
        if self.cooldown < 1:
            raise ValueError(f"cooldown must be >= 1; got {self.cooldown}")

    def tick(self) -> None:
        """Advance the clock one batch."""
        self._clock += 1

    def _circuit(self, mechanism: str) -> _Circuit:
        return self._circuits.setdefault(mechanism, _Circuit())

    def allow(self, mechanism: str) -> bool:
        """Whether the mechanism may run this batch."""
        circuit = self._circuit(mechanism)
        if circuit.opened_at is None:
            return True
        if self._clock - circuit.opened_at >= self.cooldown:
            return True  # half-open: one probe allowed
        return False

    def is_open(self, mechanism: str) -> bool:
        return not self.allow(mechanism)

    def record_failure(self, mechanism: str) -> bool:
        """Count one failure; returns True when this failure opens the
        circuit (so the caller can emit a :class:`CircuitOpened` event
        exactly once per opening)."""
        circuit = self._circuit(mechanism)
        circuit.failures += 1
        was_open = circuit.opened_at is not None
        if circuit.failures >= self.threshold:
            circuit.opened_at = self._clock
            return not was_open
        return False

    def record_success(self, mechanism: str) -> None:
        """A mechanism ran clean: close its circuit."""
        circuit = self._circuit(mechanism)
        circuit.failures = 0
        circuit.opened_at = None

    def snapshot(self) -> dict:
        """Plain-dict breaker state (for summaries and dashboards)."""
        return {
            mechanism: {
                "failures": circuit.failures,
                "open": self.is_open(mechanism),
            }
            for mechanism, circuit in self._circuits.items()
        }

    def state_dict(self) -> dict:
        """Full JSON-able breaker state for checkpointing.

        Unlike :meth:`snapshot` (a derived view for dashboards), this is
        lossless: :meth:`load_state_dict` reproduces the exact clock and
        per-mechanism counters, so a rehydrated learner resumes cooldowns
        where it left off instead of silently resetting them.
        """
        return {
            "threshold": self.threshold,
            "cooldown": self.cooldown,
            "clock": self._clock,
            "circuits": {
                mechanism: {
                    "failures": circuit.failures,
                    "opened_at": circuit.opened_at,
                }
                for mechanism, circuit in self._circuits.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore breaker state written by :meth:`state_dict`."""
        self.threshold = int(state["threshold"])
        self.cooldown = int(state["cooldown"])
        self._clock = int(state["clock"])
        self._circuits = {
            mechanism: _Circuit(
                failures=int(circuit["failures"]),
                opened_at=(None if circuit["opened_at"] is None
                           else int(circuit["opened_at"])),
            )
            for mechanism, circuit in state["circuits"].items()
        }
