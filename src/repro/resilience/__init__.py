"""``repro.resilience`` — runtime fault tolerance for the streaming pipeline.

Three legs, matching how production streams actually fail:

- **worker supervision** lives in
  :class:`~repro.distributed.backends.ProcessBackend`: dead or hung
  workers are detected during drain, restarted with exponential backoff,
  re-seeded from the last synchronized state, and their lost in-flight
  shards resubmitted;
- **graceful degradation** lives in :class:`~repro.core.learner.Learner`
  (``degrade=True``): a mechanism that raises downgrades along a fixed
  fallback chain instead of propagating, guarded by a per-mechanism
  :class:`CircuitBreaker`;
- **fault injection** (:mod:`repro.resilience.faults`) provides seedable,
  deterministic injectors — :class:`WorkerCrash`, :class:`SlowBatch`,
  :class:`DirtyData`, :class:`CorruptCheckpoint` — so chaos scenarios are
  reproducible in tests and benchmarks.

See ``docs/RESILIENCE.md`` for the failure-mode catalogue.
"""

from .degrade import CircuitBreaker
from .faults import (
    CorruptCheckpoint,
    DirtyData,
    FaultInjector,
    SlowBatch,
    WorkerCrash,
)

__all__ = [
    "CircuitBreaker",
    "FaultInjector",
    "WorkerCrash",
    "SlowBatch",
    "DirtyData",
    "CorruptCheckpoint",
]
