"""Synthetic stream generators: Hyperplane and SEA.

Faithful re-implementations of the two synthetic benchmarks the paper
evaluates on (citing the River definitions):

- **Hyperplane**: ``d`` uniform features on ``[0, 1]``; the label is the
  side of a rotating hyperplane through the centre of the cube.  A subset of
  weights drifts each step, and each drifting weight's direction flips with
  a small probability.
- **SEA**: three uniform features on ``[0, 10]``; the label tests
  ``f1 + f2 <= theta`` where ``theta`` cycles through the four classic SEA
  variants (8, 9, 7, 9.5) with abrupt concept changes.

Both generators annotate batches with ground-truth patterns: SEA's abrupt
variant switches are tagged :data:`Pattern.SUDDEN` (and
:data:`Pattern.REOCCURRING` when a theta value returns), everything else
:data:`Pattern.SLIGHT`.
"""

from __future__ import annotations

import numpy as np

from .stream import Batch, DataStream, Pattern

__all__ = ["HyperplaneGenerator", "SEAGenerator"]


class HyperplaneGenerator:
    """Rotating hyperplane stream (Hulten et al., 2001; River's Hyperplane).

    Parameters
    ----------
    num_features:
        Dimensionality ``d`` of the uniform feature cube.
    drift_features:
        How many of the ``d`` weights drift each example/batch step.
    magnitude:
        Per-step weight change applied to drifting features.
    noise:
        Probability a label is flipped.
    sigma:
        Probability that a drifting weight's direction reverses each step.
    concept_switch_every:
        If set, every this-many batches the weight vector abruptly switches
        between a pool of ``num_concepts`` stored hyperplanes — the way the
        paper's pattern experiments inject sudden/reoccurring episodes into
        Hyperplane.  ``None`` (default) reproduces the classic
        continuously-rotating generator.  Note these are *concept-only*
        shifts: the feature distribution stays uniform, which is exactly the
        case a distribution-based detector cannot see (DESIGN.md).
    """

    name = "hyperplane"

    def __init__(self, num_features: int = 10, drift_features: int = 2,
                 magnitude: float = 0.002, noise: float = 0.05,
                 sigma: float = 0.1, concept_switch_every: int | None = None,
                 num_concepts: int = 2, seed: int = 0):
        if not 0 < drift_features <= num_features:
            raise ValueError(
                f"drift_features must be in (0, {num_features}]; got {drift_features}"
            )
        if concept_switch_every is not None and concept_switch_every < 2:
            raise ValueError(
                f"concept_switch_every must be >= 2; got {concept_switch_every}"
            )
        if num_concepts < 2:
            raise ValueError(f"num_concepts must be >= 2; got {num_concepts}")
        self.num_features = num_features
        self.num_classes = 2
        self.drift_features = drift_features
        self.magnitude = magnitude
        self.noise = noise
        self.sigma = sigma
        self.concept_switch_every = concept_switch_every
        self.num_concepts = num_concepts
        self.seed = seed

    def stream(self, num_batches: int, batch_size: int = 1024) -> DataStream:
        """Generate ``num_batches`` annotated batches."""
        rng = np.random.default_rng(self.seed)
        # Pool of concepts: jittered copies of one hyperplane with
        # alternating decision polarity, so a switch inverts the labels of
        # most of the cube — catastrophic for the resident model, as the
        # paper's sudden-shift episodes are.
        base = rng.uniform(0.0, 1.0, size=self.num_features)
        pool = [(base.copy(), 1)]
        for position in range(1, self.num_concepts):
            jittered = base + rng.uniform(-0.1, 0.1, self.num_features)
            pool.append((jittered, -1 if position % 2 else 1))
        weights, polarity = pool[0][0].copy(), pool[0][1]
        directions = rng.choice([-1.0, 1.0], size=self.drift_features)

        def generate():
            nonlocal weights, polarity, directions
            active = 0
            seen = {0}
            entry_countdown = 0
            entry_pattern = None
            for index in range(num_batches):
                switching = (self.concept_switch_every is not None
                             and index > 0
                             and index % self.concept_switch_every == 0)
                if switching:
                    active = (active + 1) % self.num_concepts
                    weights, polarity = pool[active][0].copy(), pool[active][1]
                    entry_pattern = (Pattern.REOCCURRING if active in seen
                                     else Pattern.SUDDEN)
                    seen.add(active)
                    entry_countdown = 3
                x = rng.uniform(0.0, 1.0, size=(batch_size, self.num_features))
                threshold = weights.sum() / 2.0
                above = x @ weights > threshold
                y = (above if polarity > 0 else ~above).astype(np.int64)
                # Continuity: a switch never aligns with a batch boundary,
                # so the tail of the last pre-switch batch already follows
                # the incoming concept (the CEC hypothesis).
                switch_next = (self.concept_switch_every is not None
                               and (index + 1) % self.concept_switch_every == 0
                               and index + 1 < num_batches)
                if switch_next:
                    next_weights, next_polarity = pool[
                        (active + 1) % self.num_concepts
                    ]
                    leak = batch_size // 10
                    tail_above = (x[-leak:] @ next_weights
                                  > next_weights.sum() / 2.0)
                    y[-leak:] = (tail_above if next_polarity > 0
                                 else ~tail_above).astype(np.int64)
                if self.noise > 0:
                    flip = rng.random(batch_size) < self.noise
                    y[flip] = 1 - y[flip]
                if index == 0:
                    pattern = None
                elif entry_countdown > 0:
                    pattern = entry_pattern
                    entry_countdown -= 1
                else:
                    pattern = Pattern.SLIGHT
                yield Batch(x, y, index=index, pattern=pattern)
                # Gradual drift for the next batch.
                reverse = rng.random(self.drift_features) < self.sigma
                directions[reverse] *= -1.0
                weights[: self.drift_features] += directions * self.magnitude

        return DataStream(generate(), num_features=self.num_features,
                          num_classes=2, name=self.name)


class SEAGenerator:
    """SEA concepts stream (Street & Kim, 2001; River's SEA).

    Three features uniform on ``[0, 10]``; only the first two are relevant.
    The label is ``f1 + f2 <= theta``.  ``theta`` follows the classic
    variant sequence ``8 → 9 → 7 → 9.5`` (then repeats), switching abruptly
    every ``batches_per_concept`` batches.
    """

    name = "sea"
    THETAS = (8.0, 9.0, 7.0, 9.5)

    def __init__(self, noise: float = 0.1, batches_per_concept: int = 15,
                 seed: int = 0):
        self.num_features = 3
        self.num_classes = 2
        self.noise = noise
        self.batches_per_concept = batches_per_concept
        self.seed = seed

    def stream(self, num_batches: int, batch_size: int = 1024) -> DataStream:
        """Generate ``num_batches`` annotated batches."""
        rng = np.random.default_rng(self.seed)

        def generate():
            seen_variants: set[int] = set()
            entry_pattern = None
            entry_countdown = 0
            for index in range(num_batches):
                variant = (index // self.batches_per_concept) % len(self.THETAS)
                theta = self.THETAS[variant]
                x = rng.uniform(0.0, 10.0, size=(batch_size, 3))
                y = ((x[:, 0] + x[:, 1]) <= theta).astype(np.int64)
                # Continuity: the incoming theta governs the batch tail just
                # before a variant switch.
                if ((index + 1) % self.batches_per_concept == 0
                        and index + 1 < num_batches):
                    next_variant = ((index + 1) // self.batches_per_concept
                                    % len(self.THETAS))
                    next_theta = self.THETAS[next_variant]
                    leak = batch_size // 10
                    y[-leak:] = ((x[-leak:, 0] + x[-leak:, 1])
                                 <= next_theta).astype(np.int64)
                if self.noise > 0:
                    flip = rng.random(batch_size) < self.noise
                    y[flip] = 1 - y[flip]
                boundary = index > 0 and index % self.batches_per_concept == 0
                if boundary:
                    entry_pattern = (Pattern.REOCCURRING
                                     if variant in seen_variants
                                     else Pattern.SUDDEN)
                    entry_countdown = min(3, self.batches_per_concept)
                if index == 0:
                    pattern = None
                elif entry_countdown > 0:
                    pattern = entry_pattern
                    entry_countdown -= 1
                else:
                    pattern = Pattern.SLIGHT
                seen_variants.add(variant)
                yield Batch(x, y, index=index, pattern=pattern,
                            meta={"theta": theta})

        return DataStream(generate(), num_features=3, num_classes=2,
                          name=self.name)
