"""``repro.data`` — streams, generators, dataset simulators, drift machinery.

Everything FreewayML and the benchmark harness consume arrives through this
package as a :class:`~repro.data.stream.DataStream` of
:class:`~repro.data.stream.Batch` objects, each optionally annotated with
the ground-truth drift pattern that produced it.
"""

from .drift import (
    Concept,
    GaussianMixtureConcept,
    HyperplaneConcept,
    Segment,
    pattern_mix_schedule,
    stream_from_schedule,
)
from .io import load_csv, stream_from_arrays, stream_from_csv
from .quality import MissingValueRepair, StreamingStandardScaler
from .images import (
    IMAGE_REGISTRY,
    AnimalsStream,
    FlowersStream,
    ImageConcept,
    RandomProjectionFeaturizer,
)
from .real import (
    DATASET_REGISTRY,
    AirlinesSimulator,
    CovertypeSimulator,
    ElectricitySimulator,
    NSLKDDSimulator,
    make_dataset,
)
from .stream import Batch, DataStream, Pattern, batches_from_arrays
from .synth import HyperplaneGenerator, SEAGenerator

__all__ = [
    "Batch",
    "DataStream",
    "Pattern",
    "batches_from_arrays",
    "load_csv",
    "stream_from_csv",
    "stream_from_arrays",
    "StreamingStandardScaler",
    "MissingValueRepair",
    "Concept",
    "GaussianMixtureConcept",
    "HyperplaneConcept",
    "Segment",
    "stream_from_schedule",
    "pattern_mix_schedule",
    "HyperplaneGenerator",
    "SEAGenerator",
    "ElectricitySimulator",
    "NSLKDDSimulator",
    "CovertypeSimulator",
    "AirlinesSimulator",
    "DATASET_REGISTRY",
    "make_dataset",
    "ImageConcept",
    "AnimalsStream",
    "FlowersStream",
    "RandomProjectionFeaturizer",
    "IMAGE_REGISTRY",
]


def all_benchmark_datasets(seed: int = 0) -> dict:
    """The paper's six tabular benchmark datasets, keyed by name.

    Two synthetic (Hyperplane, SEA) plus four real-world simulators
    (Airlines, Covertype, NSL-KDD, Electricity) — the Table I lineup.
    """
    return {
        "hyperplane": HyperplaneGenerator(seed=seed),
        "sea": SEAGenerator(seed=seed),
        "airlines": AirlinesSimulator(seed=seed),
        "covertype": CovertypeSimulator(seed=seed),
        "nsl-kdd": NSLKDDSimulator(seed=seed),
        "electricity": ElectricitySimulator(seed=seed),
    }
