"""Simulators for the paper's four real-world datasets.

The evaluation environment is offline, so Airlines / Covertype / NSL-KDD /
Electricity cannot be downloaded.  Each simulator here is a seeded
generative model that reproduces the drift structure the paper attributes
to its dataset (see DESIGN.md, "Substitutions"):

- **Electricity** (Elec2): diurnal localized wobble with occasional price
  regime changes that later revert — mostly Pattern A2, some B and C.
- **NSL-KDD**: alternating attack-type regimes with strong class imbalance —
  the flagship Pattern C (reoccurring) workload.
- **Covertype**: slow spatially-ordered drift as the survey moves across
  terrain — dominantly Pattern A1 (directional).
- **Airlines**: seasonal directional drift punctuated by sudden
  weather-style disruptions — a mix of A1 and B.

All simulators share the interface of the synthetic generators:
``stream(num_batches, batch_size) -> DataStream`` with ground-truth pattern
annotations on every batch.
"""

from __future__ import annotations

import numpy as np

from .drift import GaussianMixtureConcept, Segment, stream_from_schedule
from .stream import DataStream

__all__ = [
    "ElectricitySimulator",
    "NSLKDDSimulator",
    "CovertypeSimulator",
    "AirlinesSimulator",
    "DATASET_REGISTRY",
    "make_dataset",
]


def _tile_segments(blueprint: list[Segment], num_batches: int) -> list[Segment]:
    """Repeat a schedule blueprint until it covers ``num_batches``.

    Repetitions re-enter previously seen concepts, so entries that were
    ``sudden`` on the first pass are rewritten as ``reoccurring`` afterwards
    — matching what actually happens in a cyclic stream.
    """
    segments: list[Segment] = []
    total = 0
    seen: set[str] = set()
    while total < num_batches:
        for item in blueprint:
            entry = item.entry
            if entry == "sudden" and item.concept in seen:
                entry = "reoccurring"
            if not segments:
                entry = "none"
            segments.append(Segment(item.concept, item.num_batches,
                                    kind=item.kind, entry=entry,
                                    magnitude=item.magnitude))
            seen.add(item.concept)
            total += item.num_batches
            if total >= num_batches:
                break
    return segments


class _ScheduledSimulator:
    """Shared base: subclasses define concepts and a schedule blueprint."""

    name = "scheduled"
    num_features = 0
    num_classes = 0

    def __init__(self, seed: int = 0):
        self.seed = seed

    def _build(self, rng: np.random.Generator) -> tuple[dict, list[Segment]]:
        raise NotImplementedError

    def stream(self, num_batches: int, batch_size: int = 1024) -> DataStream:
        """Generate ``num_batches`` annotated batches."""
        rng = np.random.default_rng(self.seed)
        concepts, blueprint = self._build(rng)
        segments = _tile_segments(blueprint, num_batches)
        composed = stream_from_schedule(concepts, segments, batch_size, rng,
                                        num_classes=self.num_classes,
                                        name=self.name)
        return composed.take(num_batches)


class ElectricitySimulator(_ScheduledSimulator):
    """Electricity price up/down stream (Elec2 stand-in).

    Two classes over 8 features (prices, demands, transfer, encoded time).
    The base concept wobbles with the daily cycle (localized slight shifts);
    a high-volatility pricing regime intrudes suddenly and the market later
    reverts — giving the B-then-C excursions visible in the paper's
    Electricity rows.
    """

    name = "electricity"
    num_features = 8
    num_classes = 2

    def _build(self, rng):
        base = GaussianMixtureConcept(2, 8, rng, spread=2.0, scale=1.1)
        # The volatile regime flips which feature region predicts "up" and
        # sits elsewhere in feature space — a genuine regime change.
        volatile = base.remix(rng, offset=4.0, class_weights=[0.35, 0.65])
        concepts = {"base": base, "volatile": volatile}
        blueprint = [
            Segment("base", 20, kind="localized", magnitude=0.06),
            Segment("volatile", 6, kind="localized", entry="sudden",
                    magnitude=0.10),
            Segment("base", 20, kind="localized", entry="reoccurring",
                    magnitude=0.06),
        ]
        return concepts, blueprint


class NSLKDDSimulator(_ScheduledSimulator):
    """Network-intrusion stream (NSL-KDD stand-in).

    Five imbalanced classes (normal, DoS, probe, R2L, U2R) over 20
    connection features.  Attack campaigns alternate: a DoS-heavy regime, a
    probe-heavy regime, then returns of earlier regimes — the prototypical
    reoccurring-shift workload the paper highlights for historical
    knowledge reuse.
    """

    name = "nsl-kdd"
    num_features = 20
    num_classes = 5

    def _build(self, rng):
        normal_weights = [0.70, 0.15, 0.10, 0.04, 0.01]
        dos_weights = [0.25, 0.60, 0.08, 0.05, 0.02]
        probe_weights = [0.30, 0.10, 0.50, 0.07, 0.03]
        normal = GaussianMixtureConcept(5, 20, rng, spread=3.0,
                                        class_weights=normal_weights)
        # Attack campaigns re-map traffic signatures to different categories
        # and shift the feature mass — catastrophic for the resident model.
        concepts = {
            "normal": normal,
            "dos": normal.remix(rng, offset=4.5, class_weights=dos_weights),
            "probe": normal.remix(rng, offset=4.0, class_weights=probe_weights),
        }
        blueprint = [
            Segment("normal", 14, kind="localized", magnitude=0.04),
            Segment("dos", 8, kind="localized", entry="sudden",
                    magnitude=0.05),
            Segment("normal", 10, kind="localized", entry="reoccurring",
                    magnitude=0.04),
            Segment("probe", 8, kind="localized", entry="sudden",
                    magnitude=0.05),
            Segment("dos", 8, kind="localized", entry="reoccurring",
                    magnitude=0.05),
            Segment("normal", 10, kind="localized", entry="reoccurring",
                    magnitude=0.04),
        ]
        return concepts, blueprint


class CovertypeSimulator(_ScheduledSimulator):
    """Forest cover-type stream (Covertype stand-in).

    Seven classes over 10 cartographic features.  The original dataset is
    ordered spatially, so the class-conditional feature distributions creep
    along a terrain gradient — long directional segments with a rare sudden
    jump when the survey region changes.
    """

    name = "covertype"
    num_features = 10
    num_classes = 7

    def _build(self, rng):
        weights = [0.36, 0.30, 0.12, 0.09, 0.06, 0.04, 0.03]
        region0 = GaussianMixtureConcept(7, 10, rng, spread=3.2,
                                         class_weights=weights)
        concepts = {
            "region0": region0,
            # A new survey region: same cover types, different terrain.
            "region1": region0.remix(rng, offset=3.5),
        }
        blueprint = [
            Segment("region0", 30, kind="directional", magnitude=0.05),
            Segment("region1", 24, kind="directional", entry="sudden",
                    magnitude=0.05),
            Segment("region0", 20, kind="directional", entry="reoccurring",
                    magnitude=0.04),
        ]
        return concepts, blueprint


class AirlinesSimulator(_ScheduledSimulator):
    """Flight-delay stream (Airlines stand-in).

    Binary delayed/on-time labels over 7 schedule features.  Traffic drifts
    directionally with the season, and sudden weather disruptions briefly
    impose a very different delay concept before conditions return to
    seasonal norms.
    """

    name = "airlines"
    num_features = 7
    num_classes = 2

    def _build(self, rng):
        season = GaussianMixtureConcept(2, 7, rng, spread=2.2, scale=1.3,
                                        class_weights=[0.55, 0.45])
        # A storm inverts the delay concept: flights that were reliably
        # on-time become the delayed ones.
        storm = season.remix(rng, offset=3.5, class_weights=[0.25, 0.75])
        concepts = {"season": season, "storm": storm}
        blueprint = [
            Segment("season", 24, kind="directional", magnitude=0.05),
            Segment("storm", 5, kind="localized", entry="sudden",
                    magnitude=0.08),
            Segment("season", 18, kind="directional", entry="reoccurring",
                    magnitude=0.05),
        ]
        return concepts, blueprint


DATASET_REGISTRY = {
    simulator.name: simulator
    for simulator in (
        ElectricitySimulator,
        NSLKDDSimulator,
        CovertypeSimulator,
        AirlinesSimulator,
    )
}


def make_dataset(name: str, seed: int = 0):
    """Instantiate a real-dataset simulator by name."""
    try:
        factory = DATASET_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}"
        ) from None
    return factory(seed=seed)
