"""Stream preprocessing: online standardization and missing-value repair.

Real deployments rarely hand a learner clean, scaled features.  These
transforms are *streaming-safe*: statistics update incrementally from the
batches already seen (never from the future), so prequential evaluation
stays honest.

- :class:`StreamingStandardScaler` — online z-scoring with Welford/Chan
  statistics and optional exponential forgetting (so scaling tracks
  drifting feature ranges instead of being anchored by history);
- :class:`MissingValueRepair` — replaces NaN/inf cells with the running
  per-feature mean *before* they reach :class:`~repro.data.stream.Batch`
  validation (which rejects non-finite features by design).

Both plug into a stream via :meth:`DataStream.map`.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from .stream import Batch

__all__ = ["StreamingStandardScaler", "MissingValueRepair"]


class StreamingStandardScaler:
    """Online per-feature standardization ``(x - mean) / std``.

    Parameters
    ----------
    decay:
        Exponential forgetting in (0, 1]: effective historical counts are
        multiplied by ``decay`` per batch, so the scaling tracks drifting
        ranges.  ``1.0`` accumulates forever (classic z-scoring).
    epsilon:
        Variance floor so constant features do not divide by zero.
    """

    def __init__(self, decay: float = 1.0, epsilon: float = 1e-8):
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1]; got {decay}")
        self.decay = decay
        self.epsilon = epsilon
        self._count = 0.0
        self._mean: np.ndarray | None = None
        self._m2: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        return self._count > 0

    def mean(self) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("scaler has seen no data")
        return self._mean.copy()

    def std(self) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("scaler has seen no data")
        return np.sqrt(self._m2 / self._count + self.epsilon)

    def partial_fit(self, x: np.ndarray) -> "StreamingStandardScaler":
        """Fold a batch into the running statistics (Chan merge)."""
        x = np.asarray(x, dtype=float).reshape(len(x), -1)
        if len(x) == 0:
            raise ValueError("cannot fit an empty batch")
        if self._mean is None:
            self._mean = np.zeros(x.shape[1])
            self._m2 = np.zeros(x.shape[1])
        elif x.shape[1] != self._mean.shape[0]:
            raise ValueError(
                f"expected {self._mean.shape[0]} features; got {x.shape[1]}"
            )
        if self.decay < 1.0:
            self._count *= self.decay
            self._m2 *= self.decay
        n_new = float(len(x))
        mean_new = x.mean(axis=0)
        m2_new = ((x - mean_new) ** 2).sum(axis=0)
        delta = mean_new - self._mean
        total = self._count + n_new
        self._mean = self._mean + delta * (n_new / total)
        self._m2 = self._m2 + m2_new + delta ** 2 * (self._count * n_new
                                                     / total)
        self._count = total
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Standardize with the statistics seen so far."""
        x = np.asarray(x, dtype=float)
        flat = x.reshape(len(x), -1)
        if not self.fitted:
            return x.copy()
        scaled = (flat - self._mean) / self.std()
        return scaled.reshape(x.shape)

    def __call__(self, batch: Batch) -> Batch:
        """Stream transform: standardize with *past* statistics, then fold
        the batch in — the prequential-safe ordering."""
        if len(batch.x) == 0:
            # Nothing to scale and no statistics to fold in; rebuilding via
            # replace() would also trip Batch's empty-batch validation.
            return batch
        scaled = self.transform(batch.x)
        self.partial_fit(batch.x)
        return replace(batch, x=scaled)


class MissingValueRepair:
    """Replace NaN/inf cells with the running per-feature mean.

    The first batch's missing cells (no history yet) fall back to 0.0.
    Statistics are computed over repaired values, so a burst of missing
    data cannot corrupt them.
    """

    def __init__(self):
        self._count = 0.0
        self._mean: np.ndarray | None = None
        self.repaired_cells = 0

    def repair(self, x: np.ndarray) -> np.ndarray:
        """Return a finite copy of ``x``; updates the running mean."""
        x = np.asarray(x, dtype=float)
        if len(x) == 0:
            # A zero-row batch has no mean; folding it in would poison the
            # running statistics with NaN for every later repair (and
            # reshape(0, -1) cannot infer a width anyway).
            return x.copy()
        flat = x.reshape(len(x), -1).copy()
        bad = ~np.isfinite(flat)
        if bad.any():
            self.repaired_cells += int(bad.sum())
            if self._mean is None:
                fill = np.zeros(flat.shape[1])
            else:
                fill = self._mean
            flat[bad] = np.broadcast_to(fill, flat.shape)[bad]
        n_new = float(len(flat))
        mean_new = flat.mean(axis=0)
        if self._mean is None:
            self._mean = mean_new
        else:
            total = self._count + n_new
            self._mean = (self._count * self._mean + n_new * mean_new) / total
        self._count += n_new
        return flat.reshape(x.shape)

    def __call__(self, x, y=None, index: int = 0, pattern=None) -> Batch:
        """Build a valid :class:`Batch` from possibly-dirty arrays."""
        if isinstance(x, Batch):
            raise TypeError(
                "pass raw arrays — Batch construction already rejects "
                "non-finite features, so repair must happen before it"
            )
        return Batch(self.repair(x), y, index=index, pattern=pattern)
