"""Loading user data as streams: CSV/NPZ to :class:`DataStream`.

The generators in this package synthesize the paper's benchmarks, but a
framework is only adoptable if it runs on *your* data.  These helpers cut
an on-disk dataset into the mini-batch stream the
:class:`~repro.core.learner.Learner` consumes, preserving row order (order
is the whole point of streaming evaluation — never shuffle drift away).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .stream import DataStream, batches_from_arrays

__all__ = ["load_csv", "stream_from_csv", "stream_from_arrays"]


def load_csv(path: str | Path, label_column: str | int = -1,
             has_header: bool | None = None,
             delimiter: str = ",") -> tuple[np.ndarray, np.ndarray]:
    """Read a CSV of numeric features plus one label column.

    Parameters
    ----------
    path:
        CSV file path.
    label_column:
        Column holding the class label — a header name, or an index
        (negative indices count from the right; default: last column).
    has_header:
        ``True``/``False``, or ``None`` to sniff: if every cell of the
        first row parses as a number, it is treated as data.
    delimiter:
        Field separator.

    Returns ``(x, y)`` with ``x`` float features in file order and ``y``
    integer labels (string labels are assigned codes by first appearance,
    preserving stream order).
    """
    path = Path(path)
    with path.open(newline="") as handle:
        rows = list(csv.reader(handle, delimiter=delimiter))
    rows = [row for row in rows if row]
    if not rows:
        raise ValueError(f"{path} contains no data rows")

    def _numeric(cell: str) -> bool:
        try:
            float(cell)
            return True
        except ValueError:
            return False

    header: list[str] | None = None
    if has_header is None:
        has_header = not all(_numeric(cell) for cell in rows[0])
    if has_header:
        header = rows[0]
        rows = rows[1:]
        if not rows:
            raise ValueError(f"{path} has a header but no data rows")

    if isinstance(label_column, str):
        if header is None:
            raise ValueError(
                "label_column given by name but the file has no header"
            )
        try:
            label_index = header.index(label_column)
        except ValueError:
            raise ValueError(
                f"no column named {label_column!r}; header: {header}"
            ) from None
    else:
        label_index = label_column % len(rows[0])

    width = len(rows[0])
    for line, row in enumerate(rows):
        if len(row) != width:
            raise ValueError(
                f"{path}: row {line} has {len(row)} fields, expected {width}"
            )

    labels_raw = [row[label_index] for row in rows]
    features = [
        [row[i] for i in range(width) if i != label_index] for row in rows
    ]
    x = np.asarray(features, dtype=float)

    if all(_numeric(value) for value in labels_raw):
        y = np.asarray([float(value) for value in labels_raw])
        if not np.allclose(y, np.round(y)):
            raise ValueError("label column contains non-integer numbers")
        y = y.astype(np.int64)
        # Models expect a dense 0-based label space; remap anything else
        # (negative codes, sparse ids) by order of first appearance.
        present = set(np.unique(y).tolist())
        if present != set(range(len(present))):
            codes: dict[int, int] = {}
            y = np.asarray(
                [codes.setdefault(int(value), len(codes)) for value in y],
                dtype=np.int64,
            )
    else:
        codes = {}
        y = np.asarray(
            [codes.setdefault(value, len(codes)) for value in labels_raw],
            dtype=np.int64,
        )
    return x, y


def stream_from_arrays(x: np.ndarray, y: np.ndarray, batch_size: int = 1024,
                       drop_last: bool = False,
                       name: str = "arrays") -> DataStream:
    """Wrap in-memory arrays as a mini-batch stream (order preserved)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    return DataStream(
        batches_from_arrays(x, y, batch_size, drop_last=drop_last),
        num_features=int(np.prod(x.shape[1:])),
        num_classes=int(y.max()) + 1,
        name=name,
    )


def stream_from_csv(path: str | Path, batch_size: int = 1024,
                    label_column: str | int = -1,
                    has_header: bool | None = None,
                    delimiter: str = ",") -> DataStream:
    """Load a CSV and cut it into a stream of mini-batches."""
    x, y = load_csv(path, label_column=label_column,
                    has_header=has_header, delimiter=delimiter)
    return stream_from_arrays(x, y, batch_size=batch_size,
                              name=Path(path).stem)
