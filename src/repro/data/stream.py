"""Stream abstractions: batches, data streams, and stream utilities.

FreewayML consumes data as a sequence of mini-batches (the paper uses batch
size 1024).  :class:`Batch` carries the features, the labels (which, in the
prequential protocol, are revealed only after inference), and an optional
ground-truth drift-pattern annotation used by the pattern-segmented
experiments (Table II, Figures 9/11).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator

import numpy as np

__all__ = ["Batch", "DataStream", "batches_from_arrays", "Pattern"]


class Pattern:
    """Canonical names for ground-truth drift-pattern annotations.

    These match the paper's taxonomy: slight shifts (Pattern A, with
    directional A1 and localized A2 variants), sudden shifts (Pattern B),
    and reoccurring shifts (Pattern C).
    """

    SLIGHT = "slight"
    SUDDEN = "sudden"
    REOCCURRING = "reoccurring"

    ALL = (SLIGHT, SUDDEN, REOCCURRING)


@dataclass
class Batch:
    """One mini-batch of streaming data.

    Attributes
    ----------
    x:
        Feature array, ``(n, d)`` for tabular data or ``(n, c, h, w)`` for
        images.
    y:
        Integer class labels, or ``None`` for an unlabeled inference-only
        batch.
    index:
        Position of the batch in the stream (0-based).
    pattern:
        Optional ground-truth drift annotation (:class:`Pattern` constant)
        describing the shift *into* this batch, for evaluation only —
        FreewayML itself never reads it.
    """

    x: np.ndarray
    y: np.ndarray | None
    index: int
    pattern: str | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=np.float64)
        if len(self.x) == 0:
            raise ValueError(f"batch {self.index} is empty")
        if not np.isfinite(self.x).all():
            raise ValueError(
                f"batch {self.index} contains NaN/inf features — clean the "
                "stream before feeding it to a learner"
            )
        if self.y is not None:
            self.y = np.asarray(self.y, dtype=np.int64).reshape(-1)
            if len(self.y) != len(self.x):
                raise ValueError(
                    f"batch {self.index}: {len(self.x)} rows but {len(self.y)} labels"
                )

    def __len__(self) -> int:
        return len(self.x)

    @property
    def labeled(self) -> bool:
        return self.y is not None

    @property
    def num_features(self) -> int:
        """Flattened feature dimensionality."""
        return int(np.prod(self.x.shape[1:]))

    def flat_x(self) -> np.ndarray:
        """Features flattened to ``(n, d)`` regardless of input rank."""
        return self.x.reshape(len(self.x), -1)

    def without_labels(self) -> "Batch":
        """Copy of this batch with labels stripped (an inference batch)."""
        return replace(self, y=None)

    def subset(self, indices: np.ndarray) -> "Batch":
        """Select a subset of rows, keeping metadata."""
        y = self.y[indices] if self.y is not None else None
        return replace(self, x=self.x[indices], y=y)


class DataStream:
    """A lazy, single-pass sequence of :class:`Batch` objects.

    Thin wrapper over an iterator that adds combinators used throughout the
    benchmark harness (``take``, ``map``, ``materialize``).  A stream can be
    iterated once; call :meth:`materialize` first if multiple passes over the
    same data are needed (e.g. to feed several frameworks identical batches).
    """

    def __init__(self, batches: Iterable[Batch],
                 num_features: int | None = None,
                 num_classes: int | None = None,
                 name: str = "stream"):
        self._iterator = iter(batches)
        self.num_features = num_features
        self.num_classes = num_classes
        self.name = name

    def __iter__(self) -> Iterator[Batch]:
        return self._iterator

    def __next__(self) -> Batch:
        return next(self._iterator)

    def take(self, count: int) -> "DataStream":
        """Stream over at most the next ``count`` batches."""
        return DataStream(
            itertools.islice(self._iterator, count),
            num_features=self.num_features,
            num_classes=self.num_classes,
            name=self.name,
        )

    def map(self, fn: Callable[[Batch], Batch]) -> "DataStream":
        """Apply ``fn`` to every batch lazily."""
        return DataStream(
            (fn(batch) for batch in self._iterator),
            num_features=self.num_features,
            num_classes=self.num_classes,
            name=self.name,
        )

    def materialize(self, count: int | None = None) -> list[Batch]:
        """Realize the stream (or its first ``count`` batches) as a list."""
        source = self._iterator if count is None else itertools.islice(
            self._iterator, count
        )
        return list(source)


def batches_from_arrays(x: np.ndarray, y: np.ndarray, batch_size: int,
                        drop_last: bool = True,
                        patterns: Iterable[str | None] | None = None) -> Iterator[Batch]:
    """Cut feature/label arrays into consecutive :class:`Batch` objects."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive; got {batch_size}")
    if len(x) != len(y):
        raise ValueError(f"x has {len(x)} rows but y has {len(y)}")
    pattern_list = list(patterns) if patterns is not None else None
    total = len(x) // batch_size if drop_last else -(-len(x) // batch_size)
    for index in range(total):
        start = index * batch_size
        end = min(start + batch_size, len(x))
        pattern = None
        if pattern_list is not None and index < len(pattern_list):
            pattern = pattern_list[index]
        yield Batch(x[start:end], y[start:end], index=index, pattern=pattern)
