"""Synthetic image streams for the CNN experiments (paper appendix).

The appendix evaluates StreamingCNN on ImageNet-Subset ("Animals") and
Flowers streams, with a frozen VGG-16 extracting features before coherent
experience clustering.  Offline, we substitute:

- :class:`ImageConcept` — class-conditional images built from per-class
  Gaussian blob layouts plus sinusoidal texture, supporting the same
  drift/jitter/clone protocol as tabular concepts, so
  :func:`~repro.data.drift.stream_from_schedule` composes image streams
  with ground-truth pattern annotations;
- :class:`AnimalsStream` / :class:`FlowersStream` — the two appendix
  workloads, with drift schedules mixing all three patterns;
- :class:`RandomProjectionFeaturizer` — a fixed random linear map with a
  ReLU standing in for the frozen VGG-16 feature extractor (both are fixed
  nonlinear encoders whose role is to give clustering a feature space).
"""

from __future__ import annotations

import numpy as np

from .drift import Concept, Segment, stream_from_schedule
from .stream import DataStream

__all__ = [
    "ImageConcept",
    "AnimalsStream",
    "FlowersStream",
    "RandomProjectionFeaturizer",
    "IMAGE_REGISTRY",
]


class ImageConcept(Concept):
    """Class-conditional image distribution over ``(channels, size, size)``.

    Each class owns a set of blob centres (in image coordinates) and a
    texture frequency.  Images are rendered as the sum of Gaussian bumps at
    the blob centres plus a low-amplitude sinusoid, then perturbed with
    pixel noise.  Drifting moves the blob centres; a fresh concept places
    them elsewhere entirely.
    """

    def __init__(self, num_classes: int, rng: np.random.Generator,
                 size: int = 16, channels: int = 1, blobs_per_class: int = 3,
                 noise: float = 0.15):
        self.num_classes = num_classes
        self.size = size
        self.channels = channels
        self.noise = noise
        self.num_features = channels * size * size
        self.centres = rng.uniform(2.0, size - 2.0,
                                   size=(num_classes, blobs_per_class, 2))
        self.widths = rng.uniform(1.5, 3.0, size=(num_classes, blobs_per_class))
        self.frequencies = rng.uniform(0.5, 2.0, size=num_classes)
        grid = np.arange(size, dtype=float)
        self._yy, self._xx = np.meshgrid(grid, grid, indexing="ij")

    def _render_class(self, label: int) -> np.ndarray:
        image = np.zeros((self.size, self.size))
        for (cy, cx), width in zip(self.centres[label], self.widths[label]):
            image += np.exp(
                -((self._yy - cy) ** 2 + (self._xx - cx) ** 2) / (2.0 * width**2)
            )
        texture = 0.2 * np.sin(self.frequencies[label] * self._xx / 2.0)
        return image + texture

    def sample(self, rng: np.random.Generator, n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, self.num_classes, size=n)
        prototypes = np.stack(
            [self._render_class(label) for label in range(self.num_classes)]
        )
        base = prototypes[labels]  # (n, size, size)
        noise = rng.normal(scale=self.noise, size=(n, self.size, self.size))
        images = base + noise
        x = np.repeat(images[:, None, :, :], self.channels, axis=1)
        return x, labels.astype(np.int64)

    def drift(self, rng: np.random.Generator, magnitude: float) -> None:
        direction = rng.normal(size=self.centres.shape)
        norms = np.linalg.norm(direction, axis=-1, keepdims=True)
        self.centres = np.clip(
            self.centres + magnitude * direction / np.maximum(norms, 1e-12),
            1.0, self.size - 1.0,
        )

    def jitter(self, rng: np.random.Generator, magnitude: float) -> None:
        self.centres = np.clip(
            self.centres + rng.normal(scale=magnitude * 0.5,
                                      size=self.centres.shape),
            1.0, self.size - 1.0,
        )

    def clone(self) -> "ImageConcept":
        copy = object.__new__(ImageConcept)
        copy.num_classes = self.num_classes
        copy.size = self.size
        copy.channels = self.channels
        copy.noise = self.noise
        copy.num_features = self.num_features
        copy.centres = self.centres.copy()
        copy.widths = self.widths.copy()
        copy.frequencies = self.frequencies.copy()
        copy._yy = self._yy
        copy._xx = self._xx
        return copy


class _ImageStreamBase:
    """Shared scheduling for the two appendix image workloads."""

    name = "images"
    num_classes = 0
    size = 16
    channels = 1

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.num_features = self.channels * self.size * self.size

    def _blueprint(self) -> list[Segment]:
        raise NotImplementedError

    def stream(self, num_batches: int, batch_size: int = 128) -> DataStream:
        """Generate ``num_batches`` annotated image batches."""
        rng = np.random.default_rng(self.seed)
        concepts = {
            f"c{i}": ImageConcept(self.num_classes, rng, size=self.size,
                                  channels=self.channels)
            for i in range(2)
        }
        blueprint = self._blueprint()
        segments: list[Segment] = []
        total = 0
        seen: set[str] = set()
        while total < num_batches:
            for item in blueprint:
                entry = item.entry
                if entry == "sudden" and item.concept in seen:
                    entry = "reoccurring"
                if not segments:
                    entry = "none"
                segments.append(Segment(item.concept, item.num_batches,
                                        kind=item.kind, entry=entry,
                                        magnitude=item.magnitude))
                seen.add(item.concept)
                total += item.num_batches
                if total >= num_batches:
                    break
        composed = stream_from_schedule(concepts, segments, batch_size, rng,
                                        num_classes=self.num_classes,
                                        name=self.name)
        return composed.take(num_batches)


class AnimalsStream(_ImageStreamBase):
    """ImageNet-Subset ("Animals") stand-in: 4 classes, mixed drift."""

    name = "animals"
    num_classes = 4

    def _blueprint(self) -> list[Segment]:
        return [
            Segment("c0", 10, kind="localized", magnitude=0.3),
            Segment("c1", 6, kind="localized", entry="sudden", magnitude=0.3),
            Segment("c0", 8, kind="directional", entry="reoccurring",
                    magnitude=0.25),
        ]


class FlowersStream(_ImageStreamBase):
    """Flowers stand-in: 5 classes, slower drift with reoccurrences."""

    name = "flowers"
    num_classes = 5

    def _blueprint(self) -> list[Segment]:
        return [
            Segment("c0", 12, kind="directional", magnitude=0.2),
            Segment("c1", 8, kind="localized", entry="sudden", magnitude=0.3),
            Segment("c0", 10, kind="localized", entry="reoccurring",
                    magnitude=0.25),
        ]


class RandomProjectionFeaturizer:
    """Fixed random nonlinear encoder standing in for frozen VGG-16 features.

    Coherent experience clustering on raw pixels is dominated by nuisance
    variation; the paper routes images through a frozen VGG-16 first.  A
    seeded random projection followed by ReLU preserves the property that
    matters — a fixed encoder under which class structure is linearly
    clusterable — without the ImageNet weights.
    """

    def __init__(self, input_features: int, output_features: int = 64,
                 seed: int = 0):
        rng = np.random.default_rng(seed)
        self.input_features = input_features
        self.output_features = output_features
        scale = 1.0 / np.sqrt(input_features)
        self._weight = rng.normal(scale=scale,
                                  size=(input_features, output_features))
        self._bias = rng.normal(scale=0.1, size=output_features)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Encode a batch: flatten, project, ReLU."""
        flat = np.asarray(x, dtype=float).reshape(len(x), -1)
        if flat.shape[1] != self.input_features:
            raise ValueError(
                f"featurizer expects {self.input_features} features, "
                f"got {flat.shape[1]}"
            )
        return np.maximum(flat @ self._weight + self._bias, 0.0)


IMAGE_REGISTRY = {
    AnimalsStream.name: AnimalsStream,
    FlowersStream.name: FlowersStream,
}
