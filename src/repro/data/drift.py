"""Concept-drift machinery: concepts, drift schedules, and stream composition.

The pattern-segmented experiments in the paper (Table II, Figures 9/11)
require streams whose drift pattern is known batch-by-batch.  This module
provides:

- :class:`Concept`, a distribution over ``(x, y)`` pairs that can mutate in
  place (directional drift), jitter (localized drift), or be replaced
  entirely (sudden drift);
- :class:`GaussianMixtureConcept`, the workhorse concept with one Gaussian
  cluster per class;
- :class:`Segment` / :func:`stream_from_schedule`, which compose concepts
  into an annotated :class:`~repro.data.stream.DataStream` where each batch
  carries the ground-truth :class:`~repro.data.stream.Pattern` of the shift
  that produced it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from .stream import Batch, DataStream, Pattern

__all__ = [
    "Concept",
    "GaussianMixtureConcept",
    "HyperplaneConcept",
    "Segment",
    "stream_from_schedule",
    "pattern_mix_schedule",
]


class Concept(abc.ABC):
    """A label-conditional data distribution that can drift."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` labeled samples ``(x, y)``."""

    @abc.abstractmethod
    def drift(self, rng: np.random.Generator, magnitude: float) -> None:
        """Mutate the concept in place by roughly ``magnitude`` (directional)."""

    @abc.abstractmethod
    def jitter(self, rng: np.random.Generator, magnitude: float) -> None:
        """Perturb the concept without a net direction (localized)."""

    @abc.abstractmethod
    def clone(self) -> "Concept":
        """Deep copy, so a concept can be frozen for later reoccurrence."""


class GaussianMixtureConcept(Concept):
    """One Gaussian cluster per class in ``d`` dimensions.

    Directional drift moves every class mean along a persistent random
    direction; localized jitter wiggles the means with zero-mean noise;
    sudden shifts are modelled by constructing a fresh concept elsewhere in
    feature space.
    """

    def __init__(self, num_classes: int, num_features: int,
                 rng: np.random.Generator, spread: float = 2.5,
                 scale: float = 1.0, class_weights: np.ndarray | None = None):
        if num_classes < 2:
            raise ValueError(f"need >= 2 classes; got {num_classes}")
        self.num_classes = num_classes
        self.num_features = num_features
        self.means = rng.normal(0.0, spread, size=(num_classes, num_features))
        self.scales = np.full(num_classes, scale, dtype=float)
        if class_weights is None:
            self.class_weights = np.full(num_classes, 1.0 / num_classes)
        else:
            class_weights = np.asarray(class_weights, dtype=float)
            self.class_weights = class_weights / class_weights.sum()
        # Persistent drift direction (unit vector per class).
        direction = rng.normal(size=(num_classes, num_features))
        self._direction = direction / np.linalg.norm(direction, axis=1, keepdims=True)

    def sample(self, rng: np.random.Generator, n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.choice(self.num_classes, size=n, p=self.class_weights)
        noise = rng.normal(size=(n, self.num_features))
        x = self.means[labels] + noise * self.scales[labels, None]
        return x, labels

    def drift(self, rng: np.random.Generator, magnitude: float) -> None:
        # Small angular wander keeps the direction persistent but not fixed.
        wander = rng.normal(scale=0.05, size=self._direction.shape)
        direction = self._direction + wander
        self._direction = direction / np.linalg.norm(direction, axis=1, keepdims=True)
        self.means = self.means + magnitude * self._direction

    def jitter(self, rng: np.random.Generator, magnitude: float) -> None:
        self.means = self.means + rng.normal(scale=magnitude, size=self.means.shape)

    def clone(self) -> "GaussianMixtureConcept":
        copy = object.__new__(GaussianMixtureConcept)
        copy.num_classes = self.num_classes
        copy.num_features = self.num_features
        copy.means = self.means.copy()
        copy.scales = self.scales.copy()
        copy.class_weights = self.class_weights.copy()
        copy._direction = self._direction.copy()
        return copy

    def remix(self, rng: np.random.Generator, offset: float = 3.0,
              permute: bool = True,
              class_weights: np.ndarray | None = None) -> "GaussianMixtureConcept":
        """A *catastrophically different* concept derived from this one.

        Real sudden shifts (a DDoS campaign, Black Friday) do not merely
        nudge the feature distribution — they change which regions of
        feature space map to which label.  ``remix`` permutes the class
        means (so the old decision boundary actively mispredicts) and
        offsets them (so the shift is visible in feature space), while
        keeping the cluster structure crisp — precisely the regime where
        coherent experience clustering should beat a pre-trained model.
        """
        remixed = self.clone()
        if permute:
            permutation = rng.permutation(self.num_classes)
            remixed.means = remixed.means[permutation]
            remixed.scales = remixed.scales[permutation]
        shift = rng.normal(size=self.num_features)
        shift = offset * shift / np.linalg.norm(shift)
        remixed.means = remixed.means + shift
        if class_weights is not None:
            class_weights = np.asarray(class_weights, dtype=float)
            remixed.class_weights = class_weights / class_weights.sum()
        direction = rng.normal(size=remixed._direction.shape)
        remixed._direction = direction / np.linalg.norm(direction, axis=1,
                                                        keepdims=True)
        return remixed


class HyperplaneConcept(Concept):
    """Rotating-hyperplane concept: label = side of a moving hyperplane.

    Features are uniform on ``[0, 1]^d`` and the class boundary is
    ``sum(w_i x_i) > sum(w_i) / 2``; drift rotates the weight vector.  This
    matches the classic Hyperplane generator the paper evaluates on.
    """

    def __init__(self, num_features: int, rng: np.random.Generator,
                 noise: float = 0.05):
        self.num_features = num_features
        self.noise = noise
        self.weights = rng.uniform(0.0, 1.0, size=num_features)

    def sample(self, rng: np.random.Generator, n: int) -> tuple[np.ndarray, np.ndarray]:
        x = rng.uniform(0.0, 1.0, size=(n, self.num_features))
        threshold = self.weights.sum() / 2.0
        labels = (x @ self.weights > threshold).astype(np.int64)
        if self.noise > 0:
            flip = rng.random(n) < self.noise
            labels[flip] = 1 - labels[flip]
        return x, labels

    def drift(self, rng: np.random.Generator, magnitude: float) -> None:
        self.weights = self.weights + rng.normal(scale=magnitude,
                                                 size=self.num_features)

    def jitter(self, rng: np.random.Generator, magnitude: float) -> None:
        self.weights = self.weights + rng.normal(scale=magnitude * 0.2,
                                                 size=self.num_features)

    def clone(self) -> "HyperplaneConcept":
        copy = object.__new__(HyperplaneConcept)
        copy.num_features = self.num_features
        copy.noise = self.noise
        copy.weights = self.weights.copy()
        return copy


@dataclass
class Segment:
    """A contiguous run of batches drawn from one (possibly drifting) concept.

    Attributes
    ----------
    concept:
        Key into the schedule's concept table.
    num_batches:
        Length of the segment.
    kind:
        Within-segment drift: ``"stationary"``, ``"directional"`` (Pattern
        A1), or ``"localized"`` (Pattern A2).
    entry:
        How the stream arrives at this segment: ``"none"`` (first segment or
        smooth continuation), ``"sudden"`` (Pattern B: the concept is brand
        new), or ``"reoccurring"`` (Pattern C: the concept was seen before).
    magnitude:
        Per-batch drift step for directional/localized kinds.
    """

    concept: str
    num_batches: int
    kind: str = "stationary"
    entry: str = "none"
    magnitude: float = 0.05

    VALID_KINDS = ("stationary", "directional", "localized")
    VALID_ENTRIES = ("none", "sudden", "reoccurring")

    def __post_init__(self):
        if self.kind not in self.VALID_KINDS:
            raise ValueError(f"unknown segment kind {self.kind!r}")
        if self.entry not in self.VALID_ENTRIES:
            raise ValueError(f"unknown segment entry {self.entry!r}")
        if self.num_batches <= 0:
            raise ValueError(f"segment length must be positive; got {self.num_batches}")


def _entry_pattern(entry: str) -> str | None:
    if entry == "sudden":
        return Pattern.SUDDEN
    if entry == "reoccurring":
        return Pattern.REOCCURRING
    return None


def stream_from_schedule(concepts: dict[str, Concept], segments: list[Segment],
                         batch_size: int, rng: np.random.Generator,
                         num_classes: int, name: str = "scheduled",
                         entry_span: int = 3,
                         transition_fraction: float = 0.1) -> DataStream:
    """Compose concepts into an annotated stream.

    Each segment samples from a live clone of its concept.  Reoccurring
    segments re-clone the *original* concept so the old distribution truly
    comes back.  The first ``entry_span`` batches after a severe segment
    boundary carry the segment's entry pattern — a sudden shift is a
    *period* of disruption, not a single batch (this matches how the
    paper's Figure 9 shades pattern regions); batches inside a drifting
    segment are tagged :data:`Pattern.SLIGHT`.

    ``transition_fraction`` implements the paper's continuity hypothesis:
    real shifts never align with batch boundaries, so the *tail* of the
    batch preceding a severe boundary is already drawn from the incoming
    concept.  This is precisely what coherent experience clustering relies
    on — the most recent labeled points sharing the new distribution.
    """
    if not segments:
        raise ValueError("schedule needs at least one segment")
    if entry_span < 1:
        raise ValueError(f"entry_span must be >= 1; got {entry_span}")
    if not 0.0 <= transition_fraction < 1.0:
        raise ValueError(
            f"transition_fraction must be in [0, 1); got {transition_fraction}"
        )
    for segment in segments:
        if segment.concept not in concepts:
            raise KeyError(f"segment references unknown concept {segment.concept!r}")

    def generate():
        index = 0
        for position, segment in enumerate(segments):
            live = concepts[segment.concept].clone()
            entry = _entry_pattern(segment.entry)
            next_segment = (segments[position + 1]
                            if position + 1 < len(segments) else None)
            for step in range(segment.num_batches):
                if step == 0:
                    if position == 0:
                        pattern = None
                    else:
                        # A "none" entry on a later segment is a smooth
                        # continuation of the same concept — a slight shift.
                        pattern = entry or Pattern.SLIGHT
                else:
                    if entry is not None and step < entry_span:
                        pattern = entry
                    else:
                        pattern = Pattern.SLIGHT
                    if segment.kind == "directional":
                        live.drift(rng, segment.magnitude)
                    elif segment.kind == "localized":
                        live.jitter(rng, segment.magnitude)
                x, y = live.sample(rng, batch_size)
                # Continuity: the incoming concept leaks into the tail of
                # the final batch before a severe boundary.
                is_final = step == segment.num_batches - 1
                if (is_final and transition_fraction > 0.0
                        and next_segment is not None
                        and next_segment.entry in ("sudden", "reoccurring")):
                    leak = int(round(batch_size * transition_fraction))
                    if leak > 0:
                        incoming = concepts[next_segment.concept].clone()
                        leak_x, leak_y = incoming.sample(rng, leak)
                        x = np.concatenate([x[: batch_size - leak], leak_x])
                        y = np.concatenate([y[: batch_size - leak], leak_y])
                yield Batch(x, y, index=index, pattern=pattern,
                            meta={"segment": position, "concept": segment.concept})
                index += 1

    num_features = next(iter(concepts.values())).num_features
    return DataStream(generate(), num_features=num_features,
                      num_classes=num_classes, name=name)


def pattern_mix_schedule(rng: np.random.Generator, num_classes: int = 4,
                         num_features: int = 16,
                         segment_length: int = 12) -> tuple[dict, list[Segment]]:
    """Build the canonical A/B/C mixed schedule used by pattern benchmarks.

    The schedule walks: concept0 with directional drift → localized drift →
    a sudden jump to concept1 → more slight drift → a reoccurrence of
    concept0 → a sudden jump to concept2 → a reoccurrence of concept1.  This
    exercises every pattern several times with ground truth attached.
    """
    base = GaussianMixtureConcept(num_classes, num_features, rng, spread=3.0)
    concepts = {
        "c0": base,
        # Sudden-entry concepts are remixes: the label-region mapping
        # changes, so the shift is catastrophic for a resident model.
        "c1": base.remix(rng, offset=4.0),
        "c2": base.remix(rng, offset=5.0),
    }
    half = max(segment_length // 2, 4)
    segments = [
        Segment("c0", segment_length, kind="directional"),
        Segment("c0", segment_length, kind="localized"),
        Segment("c1", segment_length, kind="localized", entry="sudden"),
        Segment("c1", half, kind="directional"),
        Segment("c0", segment_length, kind="localized", entry="reoccurring"),
        Segment("c2", segment_length, kind="localized", entry="sudden"),
        Segment("c1", half, kind="stationary", entry="reoccurring"),
    ]
    return concepts, segments
