"""Command-line interface: run FreewayML experiments without writing code.

Six subcommands::

    python -m repro run --dataset nsl-kdd --framework freewayml --batches 80
    python -m repro compare --dataset electricity --model mlp
    python -m repro serve --tenants 256 --capacity 32 --requests 4000
    python -m repro datasets
    python -m repro report trace.jsonl
    python -m repro analyze src/ --format json

``run`` evaluates one framework on one dataset prequentially and prints
G_acc / SI / throughput (``--json`` emits the result as one JSON object;
``--trace out.jsonl`` records the decision-event/span log; ``--metrics``
prints the Prometheus-style metrics snapshot; ``--serve-telemetry [PORT]``
exposes ``/metrics``, ``/health``, and ``/snapshot`` over HTTP during the
run with an online SLO/alert engine, see ``docs/OBSERVABILITY.md``;
``--profile`` prints the per-stage hot-path time breakdown, see
``docs/PERF.md``); ``compare`` runs every framework of the chosen model
group plus FreewayML and renders a Table-I-style block; ``serve`` drives
the multi-tenant serving front end over a synthetic Zipf workload — every
flag maps one-to-one onto a :class:`~repro.serving.ServeConfig` field,
see ``docs/SERVING.md``; ``datasets``
lists what is available; ``report`` summarizes a recorded trace or a
saved ``/snapshot`` dump (per-strategy latency percentiles, knowledge
reuse hit-rate, decay timeline).  ``--csv`` runs on your own data instead
of a built-in generator.  ``analyze`` runs the static REP001–REP007 lint
pass (``--concurrency`` adds the execution-context pass REP008–REP011;
``--check-models`` adds symbolic shape verification of the model zoo) —
see ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baselines import BASELINES, LR_GROUP, MLP_GROUP
from .data import IMAGE_REGISTRY, all_benchmark_datasets
from .data.io import stream_from_csv
from .eval import RunConfig, render_accuracy_table, run_framework, run_matrix
from .obs import (
    CompositeSink,
    MemorySink,
    Observability,
    render_report,
    summarize_trace,
)

__all__ = ["build_parser", "main"]

FRAMEWORK_CHOICES = ["freewayml", "plain", *sorted(BASELINES)]


class _CsvGenerator:
    """Adapter exposing a CSV file through the generator interface."""

    def __init__(self, path: str, label_column, batch_size: int):
        self.path = path
        self.label_column = label_column
        probe = stream_from_csv(path, batch_size=batch_size,
                                label_column=label_column)
        self.num_features = probe.num_features
        self.num_classes = probe.num_classes
        self.name = probe.name

    def stream(self, num_batches: int, batch_size: int = 1024):
        return stream_from_csv(
            self.path, batch_size=batch_size,
            label_column=self.label_column,
        ).take(num_batches)


def _resolve_label_column(value: str):
    try:
        return int(value)
    except ValueError:
        return value


def _generator(args):
    if args.csv:
        return _CsvGenerator(args.csv, _resolve_label_column(args.label),
                             args.batch_size)
    datasets = all_benchmark_datasets(seed=args.seed)
    if args.dataset not in datasets:
        raise SystemExit(
            f"unknown dataset {args.dataset!r}; run `python -m repro "
            f"datasets` to list them"
        )
    return datasets[args.dataset]


def _config(args, obs: Observability | None = None,
            profiler=None, slo_engine=None) -> RunConfig:
    return RunConfig(num_batches=args.batches, batch_size=args.batch_size,
                     model=args.model, lr=args.lr, seed=args.seed,
                     num_workers=getattr(args, "workers", 1),
                     backend=getattr(args, "backend", "serial"),
                     sync_every=getattr(args, "sync_every", 1),
                     max_restarts=getattr(args, "max_restarts", 2),
                     degrade=getattr(args, "degrade", False), obs=obs,
                     profiler=profiler, slo_engine=slo_engine)


def _build_obs(args) -> Observability | None:
    """Observability facade for a ``run`` invocation, if requested."""
    serving = getattr(args, "serve_telemetry", None) is not None
    if getattr(args, "trace", None):
        # One run per file: truncate any previous trace so `report` never
        # silently merges two runs (the sink itself appends).
        path = Path(args.trace)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("")
        # The telemetry server needs an in-process ring for /snapshot's
        # recent events; tee into one alongside the JSONL file.
        extra = MemorySink() if serving else None
        return Observability.to_jsonl(args.trace, extra_sink=extra)
    if getattr(args, "metrics", False) or serving:
        return Observability.in_memory()
    return None


def _build_telemetry(args, obs: Observability):
    """``--serve-telemetry``: SLO engine + HTTP server around the run."""
    if getattr(args, "serve_telemetry", None) is None:
        return None, None
    from .obs import SloEngine, TelemetryServer, default_slo_rules, find_ring

    ring = find_ring(obs.sink)
    engine = SloEngine(default_slo_rules(), obs,
                       pre_emptive_degrade=getattr(args, "slo_degrade",
                                                   False))
    # Tee pipeline events into the engine so event-driven SLO signals
    # (degraded-rate, worker-restart-rate, ...) see every occurrence.
    # The rebind happens strictly before TelemetryServer.start() below,
    # so no server thread can observe the sink chain mid-swap.
    obs.sink = CompositeSink(obs.sink, engine)  # repro: noqa[REP008]

    def health_source():
        summarize = getattr(engine.target, "summary", None)
        return summarize() if callable(summarize) else {}

    server = TelemetryServer(obs, engine, health_source=health_source,
                             port=args.serve_telemetry, ring=ring).start()
    print(f"telemetry : {server.url}  (/metrics /health /snapshot)",
          file=sys.stderr)
    return engine, server


def _add_common(parser):
    parser.add_argument("--dataset", default="electricity",
                        help="built-in dataset name (see `datasets`)")
    parser.add_argument("--csv", help="run on your own CSV instead")
    parser.add_argument("--label", default="-1",
                        help="CSV label column (name or index; default last)")
    parser.add_argument("--model", default="mlp", choices=["lr", "mlp", "cnn"])
    parser.add_argument("--batches", type=int, default=80)
    parser.add_argument("--batch-size", type=int, default=1024,
                        dest="batch_size")
    parser.add_argument("--lr", type=float, default=None,
                        help="learning rate (default: per-model preset)")
    parser.add_argument("--seed", type=int, default=0)


def _build_profiler(args, obs=None):
    """Hot-path profiler for a ``run --profile`` invocation, if viable."""
    if not getattr(args, "profile", False):
        return None
    if args.framework != "freewayml":
        print(f"note: --profile instruments the freewayml serving loop; "
              f"framework {args.framework!r} records nothing",
              file=sys.stderr)
        return None
    if getattr(args, "workers", 1) > 1 or (
            getattr(args, "backend", "serial") != "serial"):
        print("note: --profile is single-process only; distributed replicas "
              "would interleave stage timings — skipping", file=sys.stderr)
        return None
    from .perf import HotPathProfiler
    return HotPathProfiler(obs=obs)


def _cmd_run(args) -> int:
    generator = _generator(args)
    obs = _build_obs(args)
    if obs is not None and args.framework != "freewayml":
        print(f"note: --trace/--metrics/--serve-telemetry instrument the "
              f"freewayml pipeline; framework {args.framework!r} records "
              f"nothing", file=sys.stderr)
    profiler = _build_profiler(args, obs=obs)
    engine, server = _build_telemetry(args, obs)
    try:
        # --serve-telemetry starts a server thread before a process-backend
        # run forks its workers: a real fork-after-thread ordering.  It is
        # accepted here because workers never touch the inherited server
        # state, and ProcessBackend._ensure_started emits a RuntimeWarning
        # naming the leaked threads so the combination stays visible.
        result = run_framework(  # repro: noqa[REP009]
            args.framework, generator,
            _config(args, obs=obs, profiler=profiler, slo_engine=engine),
        )
    finally:
        if server is not None:
            server.stop()
    by_pattern = result.accuracy_by_pattern()
    if args.json:
        payload = {
            "framework": result.name,
            "dataset": generator.name,
            "batches": len(result.accuracies),
            "batch_size": args.batch_size,
            "g_acc": result.g_acc,
            "si": result.si,
            "throughput": result.throughput,
            "accuracy_by_pattern": by_pattern,
        }
        if obs is not None and args.metrics:
            payload["metrics"] = obs.registry.snapshot()
        if obs is not None and getattr(args, "trace", None):
            payload["trace"] = args.trace
        if profiler is not None:
            payload["hot_path"] = profiler.summary()
        if engine is not None:
            payload["slo"] = engine.summary()
        print(json.dumps(payload, indent=2, default=float))
    else:
        print(f"framework : {result.name}")
        print(f"dataset   : {generator.name}")
        print(f"batches   : {len(result.accuracies)} x {args.batch_size}")
        print(f"G_acc     : {result.g_acc * 100:.2f}%")
        print(f"SI        : {result.si:.3f}")
        print(f"throughput: {result.throughput / 1e3:.0f} K items/s")
        if by_pattern:
            per = "  ".join(f"{pattern}={accuracy * 100:.1f}%"
                            for pattern, accuracy in sorted(by_pattern.items()))
            print(f"by pattern: {per}")
        if obs is not None and args.metrics:
            print()
            print(obs.registry.render_text(), end="")
        if obs is not None and getattr(args, "trace", None):
            print(f"trace     : {args.trace}")
        if engine is not None:
            active = ", ".join(sorted(engine.active)) or "none"
            print(f"slo       : {engine.raised_total} raised / "
                  f"{engine.resolved_total} resolved (active: {active})")
        if profiler is not None:
            print()
            print("hot path (per-stage):")
            print(profiler.render())
    if obs is not None:
        obs.close()
    return 0


def _cmd_report(args) -> int:
    try:
        summary = summarize_trace(args.trace)
    except FileNotFoundError:
        raise SystemExit(f"no trace at {args.trace!r}; record one with "
                         f"`python -m repro run --trace {args.trace}`")
    except json.JSONDecodeError as error:
        raise SystemExit(
            f"{args.trace!r} is not a JSONL trace ({error}); expected the "
            f"format written by `python -m repro run --trace`"
        )
    if args.json:
        payload = {
            "path": summary.path,
            "num_events": summary.num_events,
            "num_spans": summary.num_spans,
            "event_counts": summary.event_counts,
            "pattern_counts": summary.pattern_counts,
            "strategy_counts": summary.strategy_counts,
            "fallback_counts": summary.fallback_counts,
            "strategy_latency": summary.strategy_latency,
            "span_latency": summary.span_latency,
            "reuse_attempts": summary.reuse_attempts,
            "reuse_hits": summary.reuse_hits,
            "reuse_hit_rate": summary.reuse_hit_rate,
            "preserved": summary.preserved,
            "evicted": summary.evicted,
            "cec_calls": summary.cec_calls,
            "decay_timeline": summary.decay_timeline,
        }
        print(json.dumps(payload, indent=2, default=float))
    else:
        print(render_report(summary))
    return 0


def _check_model_zoo(stream=sys.stdout) -> int:
    """Statically verify the model zoo's architectures (no data executed)."""
    from .analysis import GraphValidationError, validate_model
    from .models import StreamingCNN, StreamingLR, StreamingMLP

    zoo = [
        ("lr", StreamingLR(num_features=20, num_classes=5)),
        ("mlp", StreamingMLP(num_features=20, num_classes=5)),
        ("cnn-tabular", StreamingCNN(input_shape=(20,), num_classes=5)),
        ("cnn-image", StreamingCNN(input_shape=(1, 16, 16), num_classes=10)),
    ]
    failures = 0
    for name, model in zoo:
        try:
            traces = validate_model(model)
        except GraphValidationError as error:
            print(f"  {name:12s} FAIL  {error}", file=stream)
            failures += 1
        else:
            print(f"  {name:12s} ok    {len(traces)} layers, output "
                  f"{traces[-1].output}", file=stream)
    return failures


def _cmd_analyze(args) -> int:
    from .analysis import EXIT_FINDINGS, run_analyze

    code = run_analyze(args.paths, output_format=args.format,
                       show_suppressed=args.show_suppressed,
                       concurrency=args.concurrency)
    if args.check_models:
        # JSON mode keeps stdout a single parseable object; the zoo
        # report goes to stderr there.
        stream = sys.stderr if args.format == "json" else sys.stdout
        print("model zoo (symbolic shape check):", file=stream)
        failures = _check_model_zoo(stream=stream)
        if failures and code == 0:
            code = EXIT_FINDINGS
    return code


def _cmd_serve(args) -> int:
    import time

    from .core.learner import Learner
    from .eval import model_factory_for
    from .serving import (
        DirCheckpointStore,
        ServeConfig,
        SessionRegistry,
        make_requests,
        serve_requests,
        zipf_tenants,
    )

    config = ServeConfig(
        max_active_tenants=args.capacity,
        microbatch_size=args.microbatch_size,
        microbatch_timeout_s=args.microbatch_timeout,
        shed_policy=args.shed_policy,
        max_pending_per_tenant=args.max_pending_per_tenant,
        max_pending_total=args.max_pending_total,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        degrade_high_watermark=args.degrade_watermark,
        tenant_metrics=args.tenant_metrics,
        learner_kwargs={"num_models": 1, "seed": args.seed},
    )
    lr = args.lr if args.lr is not None else 0.05
    model_factory = model_factory_for(args.model, args.features,
                                      args.classes, lr, seed=args.seed)

    def factory(_tenant: str) -> Learner:
        return Learner(model_factory, **config.learner_kwargs)

    obs = Observability.in_memory() if args.metrics else None
    store = (DirCheckpointStore(args.checkpoint_dir)
             if args.checkpoint_dir else None)
    registry = SessionRegistry(factory, capacity=config.max_active_tenants,
                               store=store, obs=obs)
    arrivals = zipf_tenants(args.requests, args.tenants,
                            exponent=args.zipf, seed=args.seed)
    requests = make_requests(arrivals, rows_per_request=args.rows,
                             num_features=args.features,
                             num_classes=args.classes, seed=args.seed)
    started = time.perf_counter()
    results, service = serve_requests(config, registry, requests,
                                      obs=obs, window=args.window)
    elapsed = time.perf_counter() - started
    summary = service.summary()
    rows_served = sum(len(result.labels) for result in results
                      if result.accepted)
    latencies = sorted(result.latency_s for result in results
                       if result.accepted)
    p50 = latencies[len(latencies) // 2] if latencies else 0.0
    p99 = latencies[int(len(latencies) * 0.99)] if latencies else 0.0
    shed_rate = summary["requests_shed"] / max(1, len(results))
    if args.json:
        payload = {
            "tenants": args.tenants,
            "requests": len(results),
            "elapsed_s": elapsed,
            "throughput_rows_s": rows_served / max(elapsed, 1e-9),
            "latency_p50_s": p50,
            "latency_p99_s": p99,
            "shed_rate": shed_rate,
            **summary,
        }
        if obs is not None:
            payload["metrics"] = obs.registry.snapshot()
        print(json.dumps(payload, indent=2, default=float))
    else:
        registry_stats = summary["registry"]
        print(f"tenants   : {args.tenants} "
              f"(capacity {config.max_active_tenants})")
        print(f"requests  : {len(results)} "
              f"(ok {summary['requests_ok']}, "
              f"shed {summary['requests_shed']}, "
              f"failed {summary['requests_failed']})")
        print(f"throughput: {rows_served / max(elapsed, 1e-9) / 1e3:.1f} "
              f"K rows/s over {elapsed:.2f}s")
        print(f"latency   : p50 {p50 * 1e3:.2f} ms, p99 {p99 * 1e3:.2f} ms")
        print(f"shed rate : {shed_rate * 100:.2f}%")
        print(f"registry  : {registry_stats['activations']} activations "
              f"({registry_stats['rehydrations']} rehydrated), "
              f"{registry_stats['evictions']} evictions")
        if obs is not None:
            print()
            print(obs.registry.render_text(), end="")
    if obs is not None:
        obs.close()
    return 0


def _cmd_compare(args) -> int:
    generator = _generator(args)
    group = LR_GROUP if args.model == "lr" else MLP_GROUP
    frameworks = [*group, "freewayml"]
    results = run_matrix(frameworks, {generator.name: generator},
                         _config(args))
    print(render_accuracy_table(
        results, title=f"{generator.name} / Streaming{args.model.upper()}"
    ))
    return 0


def _cmd_datasets(_args) -> int:
    print("tabular benchmarks (paper Table I):")
    for name, generator in all_benchmark_datasets().items():
        print(f"  {name:12s} {generator.num_features:3d} features, "
              f"{generator.num_classes} classes")
    print("image streams (paper appendix):")
    for name, stream_cls in IMAGE_REGISTRY.items():
        instance = stream_cls()
        print(f"  {name:12s} 1x16x16 images, "
              f"{instance.num_classes} classes")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FreewayML (ICDE 2025 reproduction) experiment runner",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="evaluate one framework on one dataset"
    )
    _add_common(run_parser)
    run_parser.add_argument("--framework", default="freewayml",
                            choices=FRAMEWORK_CHOICES)
    run_parser.add_argument("--backend", default="serial",
                            choices=["serial", "thread", "process"],
                            help="execution backend for distributed "
                                 "freewayml runs (with --workers > 1)")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="replica count; > 1 runs the "
                                 "data-parallel DistributedLearner")
    run_parser.add_argument("--sync-every", type=int, default=1,
                            dest="sync_every",
                            help="batches between parameter-averaging "
                                 "rounds (distributed runs)")
    run_parser.add_argument("--max-restarts", type=int, default=2,
                            dest="max_restarts",
                            help="supervised restarts allowed per worker "
                                 "before the failure propagates "
                                 "(process backend)")
    run_parser.add_argument("--degrade", action="store_true",
                            help="graceful degradation: mechanism failures "
                                 "downgrade along the fallback chain "
                                 "instead of propagating")
    run_parser.add_argument("--trace", metavar="PATH", default=None,
                            help="write the decision-event/span JSONL log "
                                 "here (freewayml only)")
    run_parser.add_argument("--metrics", action="store_true",
                            help="print the metrics snapshot after the run")
    run_parser.add_argument("--serve-telemetry", nargs="?", const=0,
                            default=None, type=int, metavar="PORT",
                            dest="serve_telemetry",
                            help="serve /metrics, /health, and /snapshot "
                                 "on 127.0.0.1 for the duration of the run "
                                 "(omit PORT for an ephemeral port; see "
                                 "docs/OBSERVABILITY.md)")
    run_parser.add_argument("--slo-degrade", action="store_true",
                            dest="slo_degrade",
                            help="let an active SLO alert pre-emptively "
                                 "switch the learner into degraded mode "
                                 "(with --serve-telemetry)")
    run_parser.add_argument("--profile", action="store_true",
                            help="time each serving-loop stage and print "
                                 "the hot-path breakdown after the run "
                                 "(freewayml, single process)")
    run_parser.add_argument("--json", action="store_true",
                            help="emit the result as a single JSON object")
    run_parser.set_defaults(handler=_cmd_run)

    report_parser = commands.add_parser(
        "report", help="summarize a JSONL trace written by `run --trace` "
                       "or a saved /snapshot JSON dump"
    )
    report_parser.add_argument("trace", help="path to the JSONL trace "
                                             "(or /snapshot JSON dump)")
    report_parser.add_argument("--json", action="store_true",
                               help="emit the summary as JSON")
    report_parser.set_defaults(handler=_cmd_report)

    compare_parser = commands.add_parser(
        "compare", help="Table-I-style comparison on one dataset"
    )
    _add_common(compare_parser)
    compare_parser.set_defaults(handler=_cmd_compare)

    serve_parser = commands.add_parser(
        "serve",
        help="drive the multi-tenant serving front end over a synthetic "
             "Zipf workload (see docs/SERVING.md)",
    )
    serve_parser.add_argument("--tenants", type=int, default=256,
                              help="distinct tenants in the workload")
    serve_parser.add_argument("--requests", type=int, default=4000,
                              help="total requests across all tenants")
    serve_parser.add_argument("--capacity", type=int, default=32,
                              help="resident-session bound "
                                   "(ServeConfig.max_active_tenants)")
    serve_parser.add_argument("--microbatch-size", type=int, default=32,
                              dest="microbatch_size",
                              help="rows coalesced per micro-batch")
    serve_parser.add_argument("--microbatch-timeout", type=float,
                              default=0.05, dest="microbatch_timeout",
                              help="seconds a partial micro-batch may age")
    serve_parser.add_argument("--shed-policy", default="reject",
                              dest="shed_policy",
                              choices=["reject", "oldest", "block"],
                              help="admission policy when a queue bound "
                                   "is hit")
    serve_parser.add_argument("--max-pending-per-tenant", type=int,
                              default=64, dest="max_pending_per_tenant",
                              help="per-tenant pending-request bound")
    serve_parser.add_argument("--max-pending-total", type=int, default=4096,
                              dest="max_pending_total",
                              help="global pending-request bound")
    serve_parser.add_argument("--breaker-threshold", type=int, default=3,
                              dest="breaker_threshold",
                              help="consecutive failures opening a "
                                   "tenant's serving circuit")
    serve_parser.add_argument("--breaker-cooldown", type=int, default=50,
                              dest="breaker_cooldown",
                              help="micro-batches an open circuit blocks "
                                   "admission")
    serve_parser.add_argument("--degrade-watermark", type=float,
                              default=None, dest="degrade_watermark",
                              metavar="FRACTION",
                              help="global pending fraction above which "
                                   "resident estimators degrade "
                                   "(default: coupling disabled)")
    serve_parser.add_argument("--tenant-metrics", action="store_true",
                              dest="tenant_metrics",
                              help="label serving metrics per tenant "
                                   "(high cardinality)")
    serve_parser.add_argument("--checkpoint-dir", default=None,
                              dest="checkpoint_dir", metavar="PATH",
                              help="durable per-tenant .npz checkpoints "
                                   "here (default: in-memory store)")
    serve_parser.add_argument("--zipf", type=float, default=1.1,
                              help="Zipf exponent of tenant popularity")
    serve_parser.add_argument("--rows", type=int, default=8,
                              help="rows per request")
    serve_parser.add_argument("--window", type=int, default=256,
                              help="concurrent in-flight submissions")
    serve_parser.add_argument("--model", default="lr",
                              choices=["lr", "mlp", "cnn"])
    serve_parser.add_argument("--features", type=int, default=8,
                              help="features per row")
    serve_parser.add_argument("--classes", type=int, default=2,
                              help="label classes per tenant stream")
    serve_parser.add_argument("--lr", type=float, default=None,
                              help="learning rate (default 0.05)")
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument("--metrics", action="store_true",
                              help="print the serving metrics snapshot")
    serve_parser.add_argument("--json", action="store_true",
                              help="emit the result as a single JSON "
                                   "object")
    serve_parser.set_defaults(handler=_cmd_serve)

    datasets_parser = commands.add_parser(
        "datasets", help="list built-in datasets"
    )
    datasets_parser.set_defaults(handler=_cmd_datasets)

    analyze_parser = commands.add_parser(
        "analyze",
        help="static REP001-REP007 lint pass; --concurrency adds "
             "REP008-REP011 (see docs/ANALYSIS.md)",
    )
    analyze_parser.add_argument("paths", nargs="*", default=["src"],
                                help="files or directories to analyze "
                                     "(default: src)")
    analyze_parser.add_argument("--format", choices=["text", "json"],
                                default="text",
                                help="report format (json is machine-readable)")
    analyze_parser.add_argument("--show-suppressed", action="store_true",
                                help="also list noqa-suppressed findings")
    analyze_parser.add_argument("--check-models", action="store_true",
                                help="additionally run symbolic shape "
                                     "verification over the model zoo")
    analyze_parser.add_argument("--concurrency", action="store_true",
                                help="additionally run the execution-context "
                                     "concurrency pass (REP008-REP011)")
    analyze_parser.set_defaults(handler=_cmd_analyze)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
