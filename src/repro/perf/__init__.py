"""Hot-path performance layer: feature flags, buffer pool, stage profiler.

``repro.perf`` is deliberately a *leaf* package: it imports nothing from
:mod:`repro.nn`, :mod:`repro.core`, or :mod:`repro.shift` so those modules
can consult it without cycles.  It bundles three things:

- :data:`config` — global feature flags for every optimization introduced
  by the hot-path pass (autograd tape, fused linear, buffer pool, grad
  ownership, in-place optimizers, cached nearest-neighbour norms).  Each
  flag gates one optimization whose output is bitwise-identical to the
  legacy path; ``optimizations_disabled()`` restores the reference
  implementation wholesale so equivalence tests can diff the two.
- :data:`POOL` — a thread-local per-shape scratch-buffer pool
  (:class:`BufferPool`), safe under the thread execution backend because
  free lists are never shared across threads.
- :class:`HotPathProfiler` — per-stage wall-clock aggregation for
  :meth:`Learner.process`, feeding the ``freeway_hot_path_seconds{stage}``
  histogram when an :class:`~repro.obs.Observability` facade is attached
  (see ``run --profile``).

See ``docs/PERF.md`` for the design notes and the benchmark workflow.
"""

from .config import (PerfConfig, config, configure, optimizations_disabled,
                     optimizations_enabled)
from .pool import (POOL, POOL_BUFFERS_GAUGE, POOL_HITS_COUNTER, BufferPool,
                   can_own)
from .profile import HOT_PATH_HISTOGRAM, PLAN_CACHE_COUNTER, HotPathProfiler

__all__ = [
    "PerfConfig",
    "config",
    "configure",
    "optimizations_disabled",
    "optimizations_enabled",
    "BufferPool",
    "POOL",
    "can_own",
    "POOL_BUFFERS_GAUGE",
    "POOL_HITS_COUNTER",
    "HotPathProfiler",
    "HOT_PATH_HISTOGRAM",
    "PLAN_CACHE_COUNTER",
]
