"""Feature flags for the hot-path optimizations.

Every optimization in the perf pass is individually switchable so that

- equivalence tests can assert the optimized and reference paths produce
  bitwise-identical results (``with optimizations_disabled(): ...``),
- the regression bench can measure before/after on the same build, and
- a single misbehaving optimization can be turned off in the field
  without reverting the release.

Flags are plain attributes on a module-level singleton (:data:`config`)
— one attribute load per check on the hot path, no function call.  They
are process-global, not thread-local: the thread execution backend runs
replicas under one configuration, and toggling mid-run from another
thread is not a supported pattern (tests toggle around runs, not during).
"""

from __future__ import annotations

import contextlib

__all__ = ["PerfConfig", "config", "configure", "optimizations_disabled",
           "optimizations_enabled"]


class PerfConfig:
    """The set of hot-path optimization switches (all on by default).

    Attributes
    ----------
    graph_tape:
        Record autograd nodes on a per-thread tape at creation time so
        ``backward()`` replays the reverse order without a DFS topo sort.
    fused_linear:
        Collapse ``x @ W.T + b`` (and a following activation inside
        ``Sequential``) into one autograd node.
    buffer_pool:
        Reuse per-shape scratch arrays (im2col padding, optimizer
        scratch) through the thread-local :data:`repro.perf.POOL`.
    grad_ownership:
        Let ``Tensor._accumulate`` adopt a privately-owned gradient
        buffer instead of copying it.
    inplace_optim:
        ``SGD``/``Adam`` update a single preflattened parameter buffer
        in place; parameters become views into it.
    cached_nearest:
        ``EmbeddingHistory.nearest`` maintains cached squared norms
        incrementally instead of restacking the deque every call.
    fused_loss:
        ``cross_entropy`` runs as a single autograd node (replaying the
        ``log_softmax`` + ``nll_loss`` chain's exact float operations),
        and inference ``softmax`` skips graph construction entirely.
    stacked_exec:
        The serving layer may co-schedule same-architecture tenants'
        micro-batches through one stacked tensor program
        (:mod:`repro.nn.stacked`) instead of N serial per-model steps;
        per-model results stay bitwise-identical to the serial loop.
    plan_capture:
        Trace a model's fit/inference step once into a compiled plan of
        flat ``out=``-style numpy kernels writing into a preallocated
        buffer arena, then replay the plan for every later batch with
        the same signature (:mod:`repro.nn.plan`).  A plan is cached
        only after a trial replay reproduces the reference run's
        post-state bit for bit; anything unverifiable falls back to the
        define-by-run path.
    """

    __slots__ = ("graph_tape", "fused_linear", "buffer_pool",
                 "grad_ownership", "inplace_optim", "cached_nearest",
                 "fused_loss", "stacked_exec", "plan_capture")

    def __init__(self, enabled: bool = True):
        self.set_all(enabled)

    def set_all(self, enabled: bool) -> None:
        for name in self.__slots__:
            setattr(self, name, bool(enabled))

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


config = PerfConfig()


@contextlib.contextmanager
def configure(**flags: bool):
    """Temporarily override individual flags: ``with configure(graph_tape=False): ...``."""
    unknown = set(flags) - set(PerfConfig.__slots__)
    if unknown:
        raise TypeError(f"unknown perf flags: {sorted(unknown)}")
    previous = config.as_dict()
    try:
        for name, value in flags.items():
            setattr(config, name, bool(value))
        yield config
    finally:
        for name, value in previous.items():
            setattr(config, name, value)


@contextlib.contextmanager
def optimizations_disabled():
    """Run the reference (unoptimized) implementations of everything."""
    previous = config.as_dict()
    try:
        config.set_all(False)
        yield config
    finally:
        for name, value in previous.items():
            setattr(config, name, value)


@contextlib.contextmanager
def optimizations_enabled():
    """Force every optimization on (the default state)."""
    previous = config.as_dict()
    try:
        config.set_all(True)
        yield config
    finally:
        for name, value in previous.items():
            setattr(config, name, value)
