"""A thread-local per-shape scratch-buffer pool.

Profiling the serving loop (see ``docs/PERF.md``) shows the matrices are
small enough that numpy allocation — not FLOPs — dominates several hot
call sites: conv2d's padded im2col scratch, optimizer step scratch, and
gradient accumulation buffers.  :class:`BufferPool` keeps per-``(shape,
dtype)`` free lists so those arrays are recycled instead of reallocated.

Free lists live in ``threading.local`` storage, so two replicas running
under the thread execution backend can never hand each other the same
scratch array — the no-cross-thread-aliasing property is structural, and
``tests/test_distributed.py`` asserts it under concurrency.

Ownership protocol
------------------
``acquire`` returns an array with *unspecified contents* (callers must
fill it); ``zeros`` returns it cleared.  ``release`` returns a buffer to
this thread's free list — only call it when no live reference to the
array (or a view of it) remains.  Arrays that are views (``arr.base is
not None``) are refused, since releasing a view could recycle memory the
base still exposes.

:func:`can_own` is the aliasing oracle used by ``Tensor._accumulate``:
a freshly-computed gradient contribution is *private* — safe to adopt
without a defensive copy — exactly when it is a top-level buffer (not a
view of some op's saved array) and not the very gradient being routed
(ops like ``a + a`` deliver the same array twice).
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["BufferPool", "POOL", "can_own", "POOL_BUFFERS_GAUGE",
           "POOL_HITS_COUNTER"]

#: Metric name for the idle-buffer gauge published by :meth:`BufferPool.publish`.
POOL_BUFFERS_GAUGE = "freeway_pool_buffers"

#: Metric name for the cumulative acquire-hit counter.
POOL_HITS_COUNTER = "freeway_pool_hits_total"


class BufferPool:
    """Per-thread free lists of numpy arrays keyed by ``(shape, dtype)``.

    Parameters
    ----------
    max_per_key:
        Cap on how many idle buffers of one shape/dtype are retained per
        thread; beyond it, released buffers are dropped for the GC.
    """

    __slots__ = ("_local", "max_per_key")

    def __init__(self, max_per_key: int = 8):
        self.max_per_key = int(max_per_key)
        self._local = threading.local()

    # -- thread-local state ---------------------------------------------------

    def _state(self) -> dict:
        state = getattr(self._local, "state", None)
        if state is None:
            state = {"free": {}, "hits": 0, "misses": 0, "released": 0}
            self._local.state = state
        return state

    # -- acquire / release ----------------------------------------------------

    def acquire(self, shape, dtype=np.float64) -> np.ndarray:
        """Return a buffer of ``shape``/``dtype`` with unspecified contents."""
        key = (tuple(int(n) for n in np.atleast_1d(shape))
               if not isinstance(shape, tuple) else shape,
               np.dtype(dtype).str)
        state = self._state()
        stack = state["free"].get(key)
        if stack:
            state["hits"] += 1
            return stack.pop()
        state["misses"] += 1
        return np.empty(key[0], dtype=dtype)

    def zeros(self, shape, dtype=np.float64) -> np.ndarray:
        """Like :meth:`acquire` but zero-filled."""
        buffer = self.acquire(shape, dtype)
        buffer[...] = 0
        return buffer

    def release(self, array: np.ndarray) -> bool:
        """Return ``array`` to this thread's free list.

        Views are refused (their base still exposes the memory); returns
        whether the buffer was actually retained.
        """
        if not isinstance(array, np.ndarray) or array.base is not None:
            return False
        state = self._state()
        key = (array.shape, array.dtype.str)
        stack = state["free"].setdefault(key, [])
        if len(stack) >= self.max_per_key:
            return False
        stack.append(array)
        state["released"] += 1
        return True

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        """Hit/miss counters and idle-buffer count for *this thread*."""
        state = self._state()
        idle = sum(len(stack) for stack in state["free"].values())
        return {"hits": state["hits"], "misses": state["misses"],
                "released": state["released"], "idle_buffers": idle}

    def publish(self, registry) -> None:
        """Export this thread's pool stats into a metrics registry.

        Sets ``freeway_pool_buffers`` to the current idle-buffer count and
        adds the hits accrued since the last publish to
        ``freeway_pool_hits_total``.  Call from the thread that owns the
        hot path (the learner's run loop) — the pool is thread-local, so
        publishing from elsewhere would export an empty pool.
        """
        state = self._state()
        idle = sum(len(stack) for stack in state["free"].values())
        registry.gauge(
            POOL_BUFFERS_GAUGE, "Idle pooled scratch buffers (run-loop thread)"
        ).set(idle)
        delta = state["hits"] - state.get("published_hits", 0)
        if delta > 0:
            registry.counter(
                POOL_HITS_COUNTER, "Scratch-buffer pool acquire hits"
            ).inc(delta)
        state["published_hits"] = state["hits"]

    def clear(self) -> None:
        """Drop this thread's free lists and reset its counters."""
        self._local.state = {"free": {}, "hits": 0, "misses": 0,
                             "released": 0}


#: The process-wide pool (thread-local internally).
POOL = BufferPool()


def can_own(candidate: np.ndarray, source: np.ndarray) -> bool:
    """Whether ``candidate`` is a private buffer safe to adopt as a gradient.

    True when ``candidate`` is a top-level array (not a view whose base an
    op closure may have retained) and is not ``source`` itself — the
    gradient currently being routed, which sibling parents may also
    receive (``a + a`` returns ``(g, g)``).
    """
    return candidate.base is None and candidate is not source
