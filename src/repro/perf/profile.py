"""Per-stage wall-clock profiling for the serving loop.

:class:`HotPathProfiler` aggregates ``time.perf_counter`` spans by stage
name.  The :class:`~repro.core.Learner` accepts one via ``profiler=`` and
wraps its hot-path stages (assess, select, infer, train, experience,
preserve) — ``python -m repro run --profile`` prints the breakdown after
a run.  When an :class:`~repro.obs.Observability` facade is attached,
every sample is also recorded into the
``freeway_hot_path_seconds{stage}`` histogram so dashboards see the same
numbers the profiler prints.
"""

from __future__ import annotations

import time

import numpy as np

__all__ = ["HotPathProfiler", "HOT_PATH_HISTOGRAM", "PLAN_CACHE_COUNTER"]

#: Metric name for the per-stage latency histogram.
HOT_PATH_HISTOGRAM = "freeway_hot_path_seconds"

#: Metric name for plan-cache events (mirrors
#: :data:`repro.nn.plan.PLAN_CACHE_COUNTER`; duplicated here so the
#: profiler does not import the nn package).
PLAN_CACHE_COUNTER = "freeway_plan_cache"


class _Stage:
    """Reusable-per-call context manager timing one stage span."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "HotPathProfiler", name: str):
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._profiler.record(self._name, time.perf_counter() - self._start)
        return False


class HotPathProfiler:
    """Collects per-stage wall-clock samples from the serving loop.

    Parameters
    ----------
    obs:
        Optional :class:`~repro.obs.Observability`; when enabled, each
        sample also feeds ``freeway_hot_path_seconds{stage}``.
    """

    __slots__ = ("_samples", "_obs")

    def __init__(self, obs=None):
        self._samples: dict[str, list[float]] = {}
        self._obs = obs

    # -- recording ------------------------------------------------------------

    def stage(self, name: str) -> _Stage:
        """Context manager timing one span of ``name``."""
        return _Stage(self, name)

    def record(self, name: str, seconds: float) -> None:
        """Add one wall-clock sample for ``name``."""
        self._samples.setdefault(name, []).append(float(seconds))
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.registry.histogram(
                HOT_PATH_HISTOGRAM, "Serving-loop stage latency (seconds)"
            ).labels(stage=name).observe(float(seconds))

    def observe_plan_event(self, event: str, seconds: float) -> None:
        """Plan-cache hook (see :func:`repro.nn.plan.add_plan_hook`).

        Timed events (capture, replay) land as ``plan.<event>`` stages so
        :meth:`render` shows them next to the serving stages; every event
        also bumps ``freeway_plan_cache{event}`` when observability is on.
        """
        if event in ("capture", "replay"):
            self.record(f"plan.{event}", seconds)
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.registry.counter(
                PLAN_CACHE_COUNTER, "Plan-cache events by type"
            ).labels(event=event).inc()

    def reset(self) -> None:
        self._samples.clear()

    # -- reporting ------------------------------------------------------------

    def summary(self) -> dict:
        """Per-stage ``{count, total_s, mean_s, p50_s, max_s}``."""
        out = {}
        for name, samples in self._samples.items():
            arr = np.asarray(samples)
            out[name] = {
                "count": int(arr.size),
                "total_s": float(arr.sum()),
                "mean_s": float(arr.mean()),
                "p50_s": float(np.median(arr)),
                "max_s": float(arr.max()),
            }
        return out

    def render(self) -> str:
        """Aligned text table, stages sorted by total time descending."""
        summary = self.summary()
        if not summary:
            return "hot path: no samples recorded"
        rows = sorted(summary.items(), key=lambda kv: -kv[1]["total_s"])
        total = sum(stats["total_s"] for _, stats in rows)
        width = max(len(name) for name, _ in rows)
        lines = [f"{'stage'.ljust(width)}  {'count':>6}  {'total':>9}  "
                 f"{'mean':>9}  {'p50':>9}  {'share':>6}"]
        for name, stats in rows:
            share = stats["total_s"] / total if total else 0.0
            lines.append(
                f"{name.ljust(width)}  {stats['count']:>6d}  "
                f"{stats['total_s'] * 1e3:>7.2f}ms  "
                f"{stats['mean_s'] * 1e6:>7.1f}us  "
                f"{stats['p50_s'] * 1e6:>7.1f}us  {share:>6.1%}")
        return "\n".join(lines)
