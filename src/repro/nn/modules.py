"""Neural-network modules for :mod:`repro.nn`, mirroring ``torch.nn``.

Provides the :class:`Module` container protocol (parameter discovery,
``state_dict`` / ``load_state_dict``, train/eval mode) and the concrete
layers used by the streaming models in this reproduction: :class:`Linear`,
:class:`Conv2d`, :class:`MaxPool2d`, activations, :class:`Dropout`,
:class:`Flatten`, and :class:`Sequential`.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Iterator

import numpy as np

from ..perf.config import config as _perf_config
from . import functional as F
from . import init
from . import record as _record
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "Flatten",
    "Sequential",
]


class Parameter(Tensor):
    """A :class:`Tensor` that a :class:`Module` treats as trainable state."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for neural-network modules.

    Assigning a :class:`Parameter` or another :class:`Module` as an attribute
    registers it automatically, so :meth:`parameters` and :meth:`state_dict`
    discover the full tree without manual bookkeeping.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        else:
            # Re-assigning a registered slot to a plain value unregisters it
            # (e.g. ``self.bias = None`` for a bias-free layer).
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
        object.__setattr__(self, name, value)

    # -- forward -------------------------------------------------------------

    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    # -- parameter discovery ---------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` for this module and children."""
        for name, parameter in self._parameters.items():
            yield prefix + name, parameter
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """Return all parameters of this module tree."""
        return [parameter for _, parameter in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(parameter.size for parameter in self.parameters())

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth first."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    # -- training state ----------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        """Set train/eval mode recursively (affects e.g. :class:`Dropout`)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- state dict ----------------------------------------------------------------

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return a copy of all parameter arrays keyed by dotted name."""
        return OrderedDict(
            (name, parameter.data.copy()) for name, parameter in self.named_parameters()
        )

    def load_state_dict(self, state: dict) -> None:
        """Load parameter arrays produced by :meth:`state_dict` in place.

        Every parameter is validated before any is written: key sets must
        match, each array's shape must equal the resident parameter's, and
        its dtype must be of the same kind (a float parameter rejects an
        integer or complex blob; width changes like float32 → float64 are
        fine).  Errors name the offending parameter.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        incoming = {name: np.asarray(state[name]) for name in own}
        for name, parameter in own.items():
            value = incoming[name]
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter {name!r}: "
                    f"expected {parameter.data.shape}, got {value.shape}"
                )
            if (value.dtype.kind != parameter.data.dtype.kind
                    or not np.can_cast(value.dtype, parameter.data.dtype,
                                       casting="same_kind")):
                raise TypeError(
                    f"dtype mismatch for parameter {name!r}: expected "
                    f"{parameter.data.dtype} (kind {parameter.data.dtype.kind!r}), "
                    f"got {value.dtype}"
                )
        for name, parameter in own.items():
            parameter.data = incoming[name].astype(parameter.data.dtype)


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with torch-style ``(out, in)`` weight."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()  # repro: noqa[REP001] — explicit opt-out of seeding
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(init.uniform((out_features,), rng, -bound, bound))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if _perf_config.fused_linear:
            return F.fused_linear(x, self.weight, self.bias)
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, "
            f"out_features={self.out_features}, bias={self.bias is not None})"
        )


class Conv2d(Module):
    """2-D convolution layer over ``(batch, channels, H, W)`` input."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()  # repro: noqa[REP001] — explicit opt-out of seeding
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = F._pair(kernel_size)
        self.stride = stride
        self.padding = padding
        kernel_h, kernel_w = self.kernel_size
        shape = (out_channels, in_channels, kernel_h, kernel_w)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        if bias:
            fan_in = in_channels * kernel_h * kernel_w
            bound = 1.0 / math.sqrt(fan_in)
            self.bias = Parameter(init.uniform((out_channels,), rng, -bound, bound))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias,
                        stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding})"
        )


class MaxPool2d(Module):
    """2-D max pooling (``kernel_size``/``stride`` may be ints or pairs)."""

    def __init__(self, kernel_size, stride=None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Dropout(Module):
    """Inverted dropout, active only in training mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1); got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng()  # repro: noqa[REP001] — explicit opt-out of seeding

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        rec = _record.current() if _record.ACTIVE else None
        if rec is not None:
            rec.begin()
        out = x.flatten_batch()
        if rec is not None:
            rec.end(("flatten", x, out))
        return out


#: Activation modules Sequential can fold into a preceding Linear
#: (exact types only — a subclass may override forward arbitrarily).
_FUSABLE_ACTIVATIONS = {ReLU: "relu", Tanh: "tanh", Sigmoid: "sigmoid"}


class Sequential(Module):
    """Run child modules in order.

    With :data:`repro.perf.config.fused_linear` on, a ``Linear`` directly
    followed by a ``ReLU``/``Tanh``/``Sigmoid`` executes as one fused
    autograd node (:func:`repro.nn.functional.fused_linear`) — the values
    are bitwise-identical, only the graph is smaller.
    """

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(layers):
            setattr(self, f"layer{index}", layer)

    def forward(self, x: Tensor) -> Tensor:
        if _perf_config.fused_linear:
            return self._forward_fused(x)
        for layer in self.layers:
            x = layer(x)
        return x

    def _forward_fused(self, x: Tensor) -> Tensor:
        layers = self.layers
        count = len(layers)
        index = 0
        while index < count:
            layer = layers[index]
            if type(layer) is Linear and index + 1 < count:
                activation = _FUSABLE_ACTIVATIONS.get(type(layers[index + 1]))
                if activation is not None:
                    x = F.fused_linear(x, layer.weight, layer.bias,
                                       activation=activation)
                    index += 2
                    continue
            x = layer(x)
            index += 1
        return x

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)
