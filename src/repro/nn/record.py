"""Op-trace recording substrate for the captured-plan engine.

This module is deliberately a leaf — it imports nothing from
:mod:`repro.nn`, so every nn module (``tensor``, ``functional``,
``modules``, ``optim``, ``stacked``) can hook into it without cycles.
The plan compiler (:mod:`repro.nn.plan`) consumes the traces.

Design: a capture runs the *normal* define-by-run path once while a
:class:`Trace` is active for the current thread.  Known ops bracket
their body with :meth:`Trace.begin` / :meth:`Trace.end`, appending one
descriptor tuple per outermost op.  ``Tensor._make`` reports every
autograd-node creation via :func:`note_node`; a node born outside any
bracket means an op the plan engine does not know how to replay, which
poisons the trace (``trace.ok`` goes False) and the caller falls back to
the uncaptured path.

Hot-path cost when nothing records (the 99.99% case): each hook site
reads :data:`ACTIVE` — a module-level int — and branches.  The
thread-local lookup only happens while some thread is capturing.
"""

from __future__ import annotations

import threading

__all__ = ["Trace", "ACTIVE", "current", "capturing", "note_node",
           "note_step"]

#: Number of threads currently capturing.  Hook sites gate on this plain
#: module attribute so the idle cost is one load + branch per op.
ACTIVE = 0

_ACTIVE_LOCK = threading.Lock()
_local = threading.local()


class Trace:
    """One recorded step: ordered op descriptors plus a validity flag."""

    __slots__ = ("ops", "ok", "reason", "_depth")

    def __init__(self):
        self.ops: list[tuple] = []
        self.ok = True
        self.reason: str | None = None
        self._depth = 0

    def begin(self) -> None:
        """Enter a known-op bracket (nested ops attribute to the outermost)."""
        self._depth += 1

    def end(self, descriptor: tuple) -> None:
        """Leave a bracket; the outermost one records ``descriptor``."""
        self._depth -= 1
        if self._depth == 0:
            self.ops.append(descriptor)

    def poison(self, reason: str) -> None:
        """Mark the trace unreplayable (first reason wins)."""
        if self.ok:
            self.ok = False
            self.reason = reason


def current() -> Trace | None:
    """The trace capturing on *this* thread, if any."""
    return getattr(_local, "trace", None)


class capturing:
    """Context manager activating ``trace`` for the current thread."""

    __slots__ = ("_trace",)

    def __init__(self, trace: Trace):
        self._trace = trace

    def __enter__(self) -> Trace:
        global ACTIVE
        if getattr(_local, "trace", None) is not None:
            raise RuntimeError("a capture is already active on this thread")
        _local.trace = self._trace
        with _ACTIVE_LOCK:
            ACTIVE += 1
        return self._trace

    def __exit__(self, exc_type, exc, tb) -> bool:
        global ACTIVE
        _local.trace = None
        with _ACTIVE_LOCK:
            ACTIVE -= 1
        return False


def note_node() -> None:
    """Called by ``Tensor._make`` for every autograd node while capturing.

    A node created outside any op bracket belongs to an op the plan
    engine cannot replay — the trace is poisoned and capture falls back.
    """
    trace = getattr(_local, "trace", None)
    if trace is not None and trace._depth == 0:
        trace.poison("autograd node created outside a recordable op")


def note_step(optimizer) -> None:
    """Called by replayable optimizers at the top of ``step()``."""
    trace = getattr(_local, "trace", None)
    if trace is not None:
        if trace._depth != 0:
            trace.poison("optimizer step inside an op bracket")
        else:
            trace.ops.append(("step", optimizer))
