"""A small reverse-mode automatic differentiation engine backed by numpy.

This module is the core of :mod:`repro.nn`, the substrate that stands in for
PyTorch in this reproduction (see DESIGN.md).  It provides a :class:`Tensor`
type that records the operations applied to it and can backpropagate
gradients through the resulting computation graph.

The design mirrors PyTorch's eager autograd:

- every differentiable operation returns a new :class:`Tensor` whose
  ``_backward`` closure knows how to route the output gradient to the
  operation's inputs;
- :meth:`Tensor.backward` topologically sorts the graph and runs those
  closures in reverse order;
- broadcasting is supported, with gradients summed back to the original
  operand shapes.

Hot path (see ``docs/PERF.md``): when :data:`repro.perf.config.graph_tape`
is on, nodes are also recorded on a per-thread *tape* in creation order —
a creation order is already a valid topological order, so ``backward()``
replays the tape slice in reverse instead of re-deriving the order with a
DFS every step.  Graphs that span a tape boundary (nodes created before a
previous ``backward`` cycled the tape) fall back to the DFS for the
remainder, so the tape is a pure fast path, never a correctness
assumption.  With :data:`~repro.perf.config.grad_ownership` on,
``_accumulate`` adopts privately-owned gradient buffers instead of
defensively copying them (see :func:`repro.perf.can_own`).

Only the operations needed by the streaming models in this repository are
implemented, but each is implemented fully (correct broadcasting, correct
gradients) rather than special-cased for one call site.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence, Union

import numpy as np

from ..perf import can_own as _can_own
from ..perf.config import config as _perf_config
from . import record as _record

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "tensor", "zeros", "ones"]

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]

# Grad mode is per-thread, like torch's: concurrent replicas (the thread
# execution backend) must not see each other's ``no_grad`` sections.  The
# same thread-local also carries the autograd tape (``.tape``) so each
# replica records its own graphs.
_grad_state = threading.local()

# A graph that records this many nodes without a backward() forces a fresh
# tape — bounds current-tape growth for grad-enabled forwards that never
# backpropagate.  Old tapes stay alive only while their tensors do.
_TAPE_LIMIT = 4096


def _current_tape() -> list:
    """This thread's recording tape, cycling it when it grows unbounded."""
    tape = getattr(_grad_state, "tape", None)
    if tape is None or len(tape) >= _TAPE_LIMIT:
        tape = []
        _grad_state.tape = tape
    return tape


def _cycle_tape(tape: list) -> None:
    """Start a fresh tape after a backward pass consumed ``tape``."""
    if getattr(_grad_state, "tape", None) is tape:
        _grad_state.tape = []


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tracking, like ``torch.no_grad``."""
    previous = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients (this thread)."""
    return getattr(_grad_state, "enabled", True)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    array = np.asarray(value, dtype=dtype)
    if array.dtype == np.float16:  # promote: float16 accumulation is lossy
        array = array.astype(np.float32)
    return array


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` so that it matches ``shape`` after a broadcast op.

    Broadcasting may both prepend axes and stretch length-1 axes; the
    gradient of a broadcast is the sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched length-1 axes.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array that supports reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array.
    requires_grad:
        If ``True``, operations on this tensor are recorded so gradients can
        be computed by :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_tape", "_tape_pos")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = _as_array(data, dtype=None)
        if self.data.dtype.kind not in "fc":
            self.data = self.data.astype(np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._tape: list | None = None
        self._tape_pos = 0

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        if _record.ACTIVE:
            # A node born outside any recorded-op bracket poisons the
            # active plan capture (an op the engine cannot replay).
            _record.note_node()
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
            if _perf_config.graph_tape:
                tape = _current_tape()
                out._tape = tape
                out._tape_pos = len(tape)
                tape.append(out)
        return out

    # -- basic protocol ------------------------------------------------------

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        return Tensor(self.data.astype(dtype), requires_grad=False)

    # -- gradient bookkeeping --------------------------------------------------

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def _accumulate(self, grad: np.ndarray, own: bool = False) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            # ``own=True`` certifies the buffer is private (no op closure or
            # sibling parent aliases it), so adopting it skips the defensive
            # copy.  Re-check base: _unbroadcast can hand back a view.
            if own and grad.base is None:
                self.grad = grad
            else:
                self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: ArrayLike | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective with respect to this tensor.
            Defaults to 1 for scalar tensors, matching PyTorch.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(_as_array(grad), dtype=self.data.dtype)

        tape = self._tape
        if (tape is not None and self._backward is not None
                and _perf_config.graph_tape):
            self._backward_tape(grad, tape)
        else:
            Tensor._run_dfs([(self, grad)])

    def _backward_tape(self, grad: np.ndarray, tape: list) -> None:
        """Replay the creation-order tape in reverse — no DFS topo sort.

        Nodes are appended to the tape at creation, and every parent is
        created before its child, so reverse tape order is a valid reverse
        topological order.  Gradients land in ``grads`` keyed by id; each
        tape node pops its entry (or skips if unreachable from ``self``).
        Delivery order at a join matches the DFS path bitwise for the
        graphs built here: float addition of two contributions is
        commutative under IEEE-754, and no op in the serving path has a
        node with more than two consumers.
        """
        grads: dict[int, np.ndarray] = {id(self): grad}
        registry: dict[int, Tensor] = {}
        for node in reversed(tape[: self._tape_pos + 1]):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            node._deliver(node_grad, grads, registry)
        if grads:
            # The graph reaches op nodes recorded before this tape started
            # (a previous backward cycled it): finish those with the DFS.
            Tensor._run_dfs([(registry[key], value)
                             for key, value in grads.items()])
        _cycle_tape(tape)

    @staticmethod
    def _run_dfs(seeds: list[tuple["Tensor", np.ndarray]]) -> None:
        """Reference backward: DFS topo sort from ``seeds``, then deliver."""
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(node, False) for node, _ in seeds]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(node): g for node, g in seeds}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            # Leaf-style accumulation for tensors the user holds onto is done
            # inside each op's backward via _accumulate on parents; here we
            # deliver the gradient to the op closure.
            node._deliver(node_grad, grads)

    def _deliver(self, grad: np.ndarray,
                 grads: dict[int, np.ndarray],
                 registry: dict[int, "Tensor"] | None = None) -> None:
        """Run the backward closure, routing parent grads into ``grads``."""
        contributions = self._backward(grad)
        for parent, contribution in zip(self._parents, contributions):
            if contribution is None or not parent.requires_grad:
                continue
            raw = contribution
            contribution = _unbroadcast(
                np.asarray(contribution, dtype=parent.data.dtype), parent.data.shape
            )
            if parent._backward is None:
                # A contribution transformed by asarray/_unbroadcast is a
                # fresh local array; otherwise ask the pool's aliasing
                # oracle whether the closure's buffer is private.
                own = _perf_config.grad_ownership and (
                    contribution is not raw or _can_own(raw, grad))
                parent._accumulate(contribution, own=own)
            else:
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + contribution
                else:
                    grads[key] = contribution
                    if registry is not None:
                        registry[key] = parent

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data
        return Tensor._make(data, (self, other_t), lambda g: (g, g))

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data
        return Tensor._make(data, (self, other_t), lambda g: (g, -g))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return other_t - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data
        a, b = self.data, other_t.data
        return Tensor._make(data, (self, other_t), lambda g: (g * b, g * a))

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data
        a, b = self.data, other_t.data
        return Tensor._make(
            data, (self, other_t), lambda g: (g / b, -g * a / (b * b))
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return other_t / self

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), lambda g: (-g,))

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported")
        data = self.data ** exponent
        base = self.data
        return Tensor._make(
            data, (self,), lambda g: (g * exponent * base ** (exponent - 1),)
        )

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data
        a, b = self.data, other_t.data

        def backward(g: np.ndarray):
            if a.ndim == 1 and b.ndim == 1:  # dot product
                return g * b, g * a
            if a.ndim == 1:  # (k,) @ (k, n) -> (n,)
                return g @ b.T, np.outer(a, g)
            if b.ndim == 1:  # (m, k) @ (k,) -> (m,)
                return np.outer(g, b), a.T @ g
            grad_a = g @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ g
            return grad_a, grad_b

        return Tensor._make(data, (self, other_t), backward)

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return other_t @ self

    # -- comparisons (detached, boolean) ----------------------------------------

    def __eq__(self, other):  # type: ignore[override]
        return self.data == _as_array(other)

    def __ne__(self, other):  # type: ignore[override]
        return self.data != _as_array(other)

    def __lt__(self, other):
        return self.data < _as_array(other)

    def __le__(self, other):
        return self.data <= _as_array(other)

    def __gt__(self, other):
        return self.data > _as_array(other)

    def __ge__(self, other):
        return self.data >= _as_array(other)

    def __hash__(self):
        return id(self)

    # -- shape ops ---------------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)
        return Tensor._make(data, (self,), lambda g: (g.reshape(original),))

    def flatten_batch(self) -> "Tensor":
        """Flatten all but the first (batch) axis."""
        return self.reshape(self.data.shape[0], -1)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        data = self.data.transpose(axes)
        return Tensor._make(data, (self,), lambda g: (g.transpose(inverse),))

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        shape = self.data.shape
        dtype = self.data.dtype

        def backward(g: np.ndarray):
            full = np.zeros(shape, dtype=dtype)
            np.add.at(full, index, g)
            return (full,)

        return Tensor._make(data, (self,), backward)

    # -- reductions ----------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray):
            if axis is None:
                return (np.broadcast_to(g, shape).copy(),)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return (np.broadcast_to(g_expanded, shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        source = self.data

        def backward(g: np.ndarray):
            if axis is None:
                mask = (source == data).astype(source.dtype)
                mask /= mask.sum()
                return (mask * g,)
            expanded = data if keepdims else np.expand_dims(data, axis)
            mask = (source == expanded).astype(source.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return (mask * g_expanded,)

        return Tensor._make(data, (self,), backward)

    # -- elementwise nonlinearities ---------------------------------------------------

    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        return Tensor._make(data, (self,), lambda g: (g * data,))

    def log(self) -> "Tensor":
        source = self.data
        return Tensor._make(np.log(source), (self,), lambda g: (g / source,))

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        return Tensor._make(data, (self,), lambda g: (g / (2.0 * data),))

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        return Tensor._make(data, (self,), lambda g: (g * (1.0 - data * data),))

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        return Tensor._make(data, (self,), lambda g: (g * data * (1.0 - data),))

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)
        return Tensor._make(data, (self,), lambda g: (g * mask,))

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return Tensor._make(np.abs(self.data), (self,), lambda g: (g * sign,))

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        data = np.clip(self.data, low, high)
        return Tensor._make(data, (self,), lambda g: (g * mask,))


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a :class:`Tensor`, mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False, dtype=np.float64) -> Tensor:
    """Create a zero-filled tensor."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False, dtype=np.float64) -> Tensor:
    """Create a one-filled tensor."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)
