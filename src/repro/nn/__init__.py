"""``repro.nn`` — a numpy-backed neural-network substrate.

This package stands in for PyTorch in the FreewayML reproduction (the
evaluation environment is offline and has no ``torch``).  It provides:

- :class:`~repro.nn.tensor.Tensor` with reverse-mode autograd,
- ``torch.nn``-style modules (:class:`Linear`, :class:`Conv2d`, pooling,
  activations, :class:`Sequential`) with ``state_dict`` support,
- optimizers (:class:`SGD`, :class:`Adam`) plus the :class:`FOBOS` and
  :class:`RDA` online-learning updates used by the Alink baseline,
- checkpoint serialization utilities used by the historical-knowledge store.
"""

from . import functional, init, plan, serialization, stacked
from .modules import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .optim import RDA, SGD, Adam, FOBOS, Optimizer
from .stacked import (
    ModelStack,
    StackedAdam,
    StackedModelError,
    StackedSGD,
    make_stacked_optimizer,
    stack_models,
    stacked_cross_entropy,
    stacked_fit,
    unstack_models,
)
from .tensor import Tensor, is_grad_enabled, no_grad, ones, tensor, zeros

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "init",
    "plan",
    "serialization",
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "Flatten",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "FOBOS",
    "RDA",
    "stacked",
    "ModelStack",
    "StackedModelError",
    "StackedSGD",
    "StackedAdam",
    "stack_models",
    "unstack_models",
    "stacked_cross_entropy",
    "stacked_fit",
    "make_stacked_optimizer",
]
