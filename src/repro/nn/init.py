"""Weight initialization schemes for :mod:`repro.nn` modules.

All initializers take an explicit :class:`numpy.random.Generator` so model
construction is reproducible from a single seed — the streaming experiments
in this repository compare frameworks starting from identical weights.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "kaiming_uniform",
    "xavier_uniform",
    "uniform",
    "normal",
    "zeros",
    "fan_in_and_out",
]


def fan_in_and_out(shape: tuple) -> tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight of the given shape.

    Linear weights are ``(out, in)``; convolution weights are
    ``(out_channels, in_channels, kh, kw)`` where the receptive-field size
    multiplies both fans, matching PyTorch's convention.
    """
    if len(shape) < 2:
        raise ValueError(f"fan computation requires >= 2 dims, got shape {shape}")
    receptive = 1
    for dim in shape[2:]:
        receptive *= dim
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_uniform(shape: tuple, rng: np.random.Generator,
                    a: float = math.sqrt(5.0)) -> np.ndarray:
    """Kaiming (He) uniform initialization, PyTorch's Linear/Conv default."""
    fan_in, _ = fan_in_and_out(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: tuple, rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = fan_in_and_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: tuple, rng: np.random.Generator, low: float, high: float) -> np.ndarray:
    """Uniform initialization on ``[low, high)``."""
    return rng.uniform(low, high, size=shape)


def normal(shape: tuple, rng: np.random.Generator,
           mean: float = 0.0, std: float = 1.0) -> np.ndarray:
    """Gaussian initialization."""
    return rng.normal(mean, std, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    """Zero initialization (biases)."""
    return np.zeros(shape)
