"""Functional neural-network operations for :mod:`repro.nn`.

These functions operate on :class:`~repro.nn.tensor.Tensor` objects and are
fully differentiable.  They cover the needs of the streaming models used in
the FreewayML reproduction: linear layers, the usual activations, softmax /
cross-entropy losses, and 2-D convolution + max pooling for the CNN
experiments in the paper's appendix.
"""

from __future__ import annotations

import functools

import numpy as np

from ..perf import POOL as _POOL
from ..perf.config import config as _perf_config
from . import record as _record
from .tensor import Tensor

__all__ = [
    "linear",
    "fused_linear",
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "binary_cross_entropy_with_logits",
    "dropout",
    "conv2d",
    "max_pool2d",
    "one_hot",
]


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with torch-style weight layout.

    ``weight`` has shape ``(out_features, in_features)`` and ``bias`` shape
    ``(out_features,)``.
    """
    rec = _record.current() if _record.ACTIVE else None
    if rec is not None:
        rec.begin()
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    if rec is not None:
        rec.end(("linear", x, weight, bias, None, out))
    return out


_FUSED_ACTIVATIONS = ("relu", "tanh", "sigmoid")


def fused_linear(x: Tensor, weight: Tensor, bias: Tensor | None = None,
                 activation: str | None = None) -> Tensor:
    """Affine map (optionally + activation) as a *single* autograd node.

    Numerically this is bitwise-identical to ``linear(x, weight, bias)``
    followed by the activation: the forward replays the exact float
    expressions of the unfused op chain, and the backward replays the
    gemm calls the chain's matmul/transpose closures would have issued
    (``grad_W = (x.T @ g).T``, ``grad_x = g @ W``, bias unbroadcast by
    the delivery path).  What it saves is graph overhead: one node and
    one closure instead of three to five per layer — which dominates at
    streaming batch sizes (see ``docs/PERF.md``).

    Falls back to the unfused chain for non-2D inputs.
    """
    x = _as_tensor(x)
    xd = x.data
    if xd.ndim != 2 or weight.data.ndim != 2:
        out = linear(x, weight, bias)
        if activation == "relu":
            return out.relu()
        if activation == "tanh":
            return out.tanh()
        if activation == "sigmoid":
            return out.sigmoid()
        return out
    if activation is not None and activation not in _FUSED_ACTIVATIONS:
        raise ValueError(f"unsupported fused activation: {activation!r}")
    rec = _record.current() if _record.ACTIVE else None
    if rec is not None:
        rec.begin()
    wd = weight.data
    out = xd @ wd.T
    if bias is not None:
        # The product buffer is private (fresh from the gemm), so the bias
        # add can land in place — same ufunc, same bits, one less alloc.
        np.add(out, bias.data, out=out)
    # act_state is what the activation's backward needs: the relu mask, or
    # the activation output itself for tanh/sigmoid.
    act_state = None
    if activation == "relu":
        act_state = out > 0
        out = np.maximum(out, 0.0)
    elif activation == "tanh":
        out = np.tanh(out)
        act_state = out
    elif activation == "sigmoid":
        out = 1.0 / (1.0 + np.exp(-np.clip(out, -60.0, 60.0)))
        act_state = out

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray):
        if activation == "relu":
            g = g * act_state
        elif activation == "tanh":
            g = g * (1.0 - act_state * act_state)
        elif activation == "sigmoid":
            g = g * act_state * (1.0 - act_state)
        grad_x = g @ wd
        grad_weight = (xd.T @ g).T
        if bias is None:
            return grad_x, grad_weight
        return grad_x, grad_weight, g

    out_t = Tensor._make(out, parents, backward)
    if rec is not None:
        rec.end(("linear", x, weight, bias, activation, out_t))
    return out_t


def _recorded_activation(x: Tensor, name: str) -> Tensor:
    rec = _record.current() if _record.ACTIVE else None
    if rec is not None:
        rec.begin()
    out = getattr(x, name)()
    if rec is not None:
        rec.end(("act", name, x, out))
    return out


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return _recorded_activation(_as_tensor(x), "relu")


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return _recorded_activation(_as_tensor(x), "sigmoid")


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return _recorded_activation(_as_tensor(x), "tanh")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` along ``axis``."""
    x = _as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    x = _as_tensor(x)
    rec = _record.current() if _record.ACTIVE else None
    if rec is not None:
        rec.begin()
    if _perf_config.fused_loss and not x.requires_grad:
        # Inference fast path: no gradient can flow, so skip graph
        # construction and run the identical ufunc sequence on raw
        # arrays (max → sub → exp → sum → log → sub → exp).
        data = x.data
        shifted = data - data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = Tensor(np.exp(shifted - log_norm))
    else:
        out = log_softmax(x, axis=axis).exp()
    if rec is not None:
        rec.end(("softmax", axis, x, out))
    return out


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer ``labels`` as a ``(n, num_classes)`` one-hot matrix."""
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}); got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes))
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log likelihood of integer ``labels`` under ``log_probs``."""
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    mask = Tensor(one_hot(labels, log_probs.shape[-1]))
    picked = (log_probs * mask).sum(axis=-1)
    return -picked.mean()


def _fused_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """``nll_loss(log_softmax(logits))`` as one autograd node.

    Bitwise-identical to the unfused chain: the forward replays its exact
    ufunc sequence, and the backward replays — in the same order — every
    float operation the chain's ten node closures would have run (the
    broadcast copies, the ``(-g).sum`` unbroadcast of the log-norm grad,
    and the two-consumer pair addition at the shifted logits).  What it
    saves is ten Tensor allocations and closure round-trips per loss
    evaluation.
    """
    x = logits.data
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    mask = one_hot(labels, x.shape[-1])
    shifted = x - x.max(axis=-1, keepdims=True)
    exp_shifted = np.exp(shifted)
    norm = exp_shifted.sum(axis=-1, keepdims=True)
    log_probs = shifted - np.log(norm)
    picked = (log_probs * mask).sum(axis=-1)
    inv_count = 1.0 / picked.size
    loss = -(picked.sum() * inv_count)
    rows, cols = x.shape

    def backward(g: np.ndarray):
        # Broadcast *views* stand in for the chain's materialized copies:
        # the consumers below are elementwise, so the products come out
        # bit-for-bit the same without the intermediate allocations.
        g_picked = np.broadcast_to(-g * inv_count, (rows,))
        g_log_probs = np.broadcast_to(
            np.expand_dims(g_picked, -1), (rows, cols)
        )
        g_masked = g_log_probs * mask
        g_log_norm = (-g_masked).sum(axis=(1,), keepdims=True)
        g_exp = np.broadcast_to(g_log_norm / norm, (rows, cols))
        return (g_masked + g_exp * exp_shifted,)

    return Tensor._make(loss, (logits,), backward)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Softmax cross-entropy between ``logits`` and integer ``labels``."""
    logits = _as_tensor(logits)
    rec = _record.current() if _record.ACTIVE else None
    if rec is not None:
        rec.begin()
    if _perf_config.fused_loss and logits.data.ndim == 2:
        out = _fused_cross_entropy(logits, labels)
    else:
        out = nll_loss(log_softmax(logits, axis=-1), labels)
    if rec is not None:
        # One descriptor for both paths: the fused node replays the
        # unfused chain's exact float ops, so one replay kernel serves
        # either (the capture-time verify holds it to that).
        rec.end(("ce", logits, out))
    return out


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""
    target_t = _as_tensor(target).detach()
    diff = prediction - target_t
    return (diff * diff).mean()


def binary_cross_entropy_with_logits(logits: Tensor, target) -> Tensor:
    """Stable binary cross-entropy on raw logits (mean over elements)."""
    target_t = _as_tensor(target).detach()
    # log(1 + exp(-|x|)) + max(x, 0) - x * y, the standard stable form.
    x = logits
    max_part = x.relu()
    abs_x = x.abs()
    log_part = ((-abs_x).exp() + 1.0).log()
    return (max_part - x * target_t + log_part).mean()


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` in training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1); got {p}")
    rec = _record.current() if _record.ACTIVE else None
    if rec is not None:
        rec.begin()
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    out = x * Tensor(mask)
    if rec is not None:
        rec.end(("dropout", p, rng, x, out))
    return out


# ---------------------------------------------------------------------------
# Convolution via im2col.
# ---------------------------------------------------------------------------


def _pair(value) -> tuple[int, int]:
    """Normalize an int-or-pair argument to an ``(h, w)`` tuple."""
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected an int or a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _im2col_indices(x_shape, kernel_h, kernel_w, stride, padding):
    """Gather indices for im2col — memoized, the args fully determine them.

    Streaming models call conv2d with the same shapes every batch; the
    repeat/tile index construction is pure overhead after the first call.
    Callers only ever *read* the returned arrays (fancy indexing), so
    sharing cached instances is safe.
    """
    stride_h, stride_w = _pair(stride)
    pad_h, pad_w = _pair(padding)
    return _im2col_indices_cached(tuple(x_shape), int(kernel_h), int(kernel_w),
                                  stride_h, stride_w, pad_h, pad_w)


@functools.lru_cache(maxsize=128)
def _im2col_indices_cached(x_shape, kernel_h, kernel_w, stride_h, stride_w,
                           pad_h, pad_w):
    batch, channels, height, width = x_shape
    out_h = (height + 2 * pad_h - kernel_h) // stride_h + 1
    out_w = (width + 2 * pad_w - kernel_w) // stride_w + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"conv/pool output would be empty for input {x_shape} with "
            f"kernel ({kernel_h},{kernel_w}), stride ({stride_h},{stride_w}), "
            f"padding ({pad_h},{pad_w})"
        )
    i0 = np.repeat(np.arange(kernel_h), kernel_w)
    i0 = np.tile(i0, channels)
    i1 = stride_h * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel_w), kernel_h * channels)
    j1 = stride_w * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel_h * kernel_w).reshape(-1, 1)
    return k, i, j, out_h, out_w


def _im2col(x: np.ndarray, kernel_h, kernel_w, stride, padding):
    k, i, j, out_h, out_w = _im2col_indices(
        x.shape, kernel_h, kernel_w, stride, padding
    )
    pad_h, pad_w = _pair(padding)
    if pad_h == 0 and pad_w == 0:
        # No padding: gather straight from the input, skipping np.pad's
        # full copy.  Fancy indexing yields the identical fresh array.
        cols = x[:, k, i, j]  # (batch, C*kh*kw, out_h*out_w)
        return cols, out_h, out_w
    padded_shape = (x.shape[0], x.shape[1],
                    x.shape[2] + 2 * pad_h, x.shape[3] + 2 * pad_w)
    if _perf_config.buffer_pool:
        # Zero-filled pool scratch + interior write == np.pad constant-0;
        # the gather below copies out of it, so it can be released here.
        padded = _POOL.zeros(padded_shape, dtype=x.dtype)
        padded[:, :, pad_h:pad_h + x.shape[2], pad_w:pad_w + x.shape[3]] = x
        cols = padded[:, k, i, j]
        _POOL.release(padded)
    else:
        padded = np.pad(
            x, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)), mode="constant"
        )
        cols = padded[:, k, i, j]
    return cols, out_h, out_w


def _col2im(cols: np.ndarray, x_shape, kernel_h, kernel_w, stride, padding):
    batch, channels, height, width = x_shape
    pad_h, pad_w = _pair(padding)
    k, i, j, _, _ = _im2col_indices(x_shape, kernel_h, kernel_w, stride, padding)
    padded = np.zeros(
        (batch, channels, height + 2 * pad_h, width + 2 * pad_w),
        dtype=cols.dtype,
    )
    np.add.at(padded, (slice(None), k, i, j), cols)
    row_end = padded.shape[2] - pad_h
    col_end = padded.shape[3] - pad_w
    return padded[:, :, pad_h:row_end, pad_w:col_end]


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride=1, padding=0) -> Tensor:
    """2-D convolution (cross-correlation, as in PyTorch).

    ``x`` has shape ``(batch, in_channels, H, W)`` and ``weight`` has shape
    ``(out_channels, in_channels, kh, kw)``.  ``stride`` and ``padding`` may
    be ints or ``(h, w)`` pairs, so 1-D convolutions over tabular features
    can be expressed as ``(1, k)`` kernels.
    """
    x = _as_tensor(x)
    kernel_out, kernel_in, kernel_h, kernel_w = weight.shape
    if x.ndim != 4:
        raise ValueError(f"conv2d expects (batch, C, H, W) input; got shape {x.shape}")
    if x.shape[1] != kernel_in:
        raise ValueError(
            f"conv2d channel mismatch: input has {x.shape[1]}, weight expects {kernel_in}"
        )
    cols, out_h, out_w = _im2col(x.data, kernel_h, kernel_w, stride, padding)
    weight_mat = weight.data.reshape(kernel_out, -1)
    out = np.einsum("of,bfp->bop", weight_mat, cols)
    out = out.reshape(x.shape[0], kernel_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1, 1)

    x_shape = x.shape
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray):
        g_mat = g.reshape(g.shape[0], kernel_out, -1)  # (batch, out_c, positions)
        grad_weight = np.einsum("bop,bfp->of", g_mat, cols).reshape(weight.shape)
        grad_cols = np.einsum("of,bop->bfp", weight_mat, g_mat)
        grad_x = _col2im(grad_cols, x_shape, kernel_h, kernel_w, stride, padding)
        if bias is None:
            return grad_x, grad_weight
        grad_bias = g.sum(axis=(0, 2, 3))
        return grad_x, grad_weight, grad_bias

    return Tensor._make(out, parents, backward)


def max_pool2d(x: Tensor, kernel_size, stride=None) -> Tensor:
    """2-D max pooling over ``(batch, channels, H, W)`` input.

    ``kernel_size`` and ``stride`` may be ints or ``(h, w)`` pairs.
    """
    x = _as_tensor(x)
    kernel_h, kernel_w = _pair(kernel_size)
    stride = kernel_size if stride is None else stride
    batch, channels, height, width = x.shape
    # Pool each channel independently by folding channels into the batch.
    reshaped = x.data.reshape(batch * channels, 1, height, width)
    cols, out_h, out_w = _im2col(reshaped, kernel_h, kernel_w, stride, 0)
    # cols: (batch*channels, k*k, positions)
    argmax = cols.argmax(axis=1)
    positions = np.arange(cols.shape[2])
    rows = np.arange(cols.shape[0])[:, None]
    pooled = cols[rows, argmax, positions]
    out = pooled.reshape(batch, channels, out_h, out_w)

    def backward(g: np.ndarray):
        g_flat = g.reshape(batch * channels, -1)
        grad_cols = np.zeros_like(cols)
        grad_cols[rows, argmax, positions] = g_flat
        grad_reshaped = _col2im(
            grad_cols, reshaped.shape, kernel_h, kernel_w, stride, 0
        )
        return (grad_reshaped.reshape(batch, channels, height, width),)

    return Tensor._make(out, (x,), backward)
