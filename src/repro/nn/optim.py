"""Optimizers for :mod:`repro.nn`.

:class:`SGD` and :class:`Adam` mirror their PyTorch counterparts and drive
the streaming models.  :class:`FOBOS` and :class:`RDA` implement the
regularized online-learning updates the Alink baseline integrates with
logistic regression (see the paper's appendix, "Details of baseline").
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "FOBOS", "RDA"]


class Optimizer:
    """Base class holding a flat list of parameters to update."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _grads(self):
        """Yield ``(index, parameter, gradient)`` for parameters with grads."""
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is not None:
                yield index, parameter, parameter.grad


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Tensor], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive; got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1); got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        for index, parameter, grad in self._grads():
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(index)
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + grad
                self._velocity[index] = velocity
                grad = velocity
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive; got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for index, parameter, grad in self._grads():
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m = self._m.get(index)
            v = self._v.get(index)
            if m is None:
                m = np.zeros_like(parameter.data)
                v = np.zeros_like(parameter.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[index] = m
            self._v[index] = v
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def _soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Elementwise soft-thresholding operator for L1 proximal steps."""
    return np.sign(values) * np.maximum(np.abs(values) - threshold, 0.0)


class FOBOS(Optimizer):
    """Forward-Backward Splitting (Duchi & Singer, 2009) with L1 penalty.

    Each step takes an SGD step followed by the proximal (soft-threshold)
    step, yielding sparse, stable weights for streaming logistic regression
    — the behaviour the paper attributes to Alink.
    """

    def __init__(self, parameters: Iterable[Tensor], lr: float,
                 l1: float = 1e-5):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive; got {lr}")
        if l1 < 0:
            raise ValueError(f"l1 strength must be non-negative; got {l1}")
        self.lr = lr
        self.l1 = l1
        self._step_count = 0

    def step(self) -> None:
        self._step_count += 1
        # Decaying step size eta_t = lr / sqrt(t), standard for FOBOS.
        eta = self.lr / np.sqrt(self._step_count)
        for _, parameter, grad in self._grads():
            updated = parameter.data - eta * grad
            parameter.data = _soft_threshold(updated, eta * self.l1)


class RDA(Optimizer):
    """Regularized Dual Averaging (Xiao, 2010) with L1 regularization.

    Maintains the running average gradient and solves the regularized
    proximal problem in closed form each step.
    """

    def __init__(self, parameters: Iterable[Tensor], l1: float = 1e-5,
                 gamma: float = 1.0):
        super().__init__(parameters)
        if l1 < 0:
            raise ValueError(f"l1 strength must be non-negative; got {l1}")
        if gamma <= 0:
            raise ValueError(f"gamma must be positive; got {gamma}")
        self.l1 = l1
        self.gamma = gamma
        self._step_count = 0
        self._grad_sum: dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        scale = np.sqrt(t) / self.gamma
        for index, parameter, grad in self._grads():
            total = self._grad_sum.get(index)
            if total is None:
                total = np.zeros_like(parameter.data)
            total = total + grad
            self._grad_sum[index] = total
            mean_grad = total / t
            # w_{t+1} = -sqrt(t)/gamma * soft_threshold(mean_grad, l1)
            parameter.data = -scale * _soft_threshold(mean_grad, self.l1)
