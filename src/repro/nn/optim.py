"""Optimizers for :mod:`repro.nn`.

:class:`SGD` and :class:`Adam` mirror their PyTorch counterparts and drive
the streaming models.  :class:`FOBOS` and :class:`RDA` implement the
regularized online-learning updates the Alink baseline integrates with
logistic regression (see the paper's appendix, "Details of baseline").

Hot path: with :data:`repro.perf.config.inplace_optim` on, ``SGD`` and
``Adam`` update a single preflattened float64 buffer in place — each
parameter's ``.data`` becomes a reshaped view into it, in the spirit of
``state_spec``/``flatten_state`` from :mod:`repro.distributed.backends`.
Every update is elementwise, and the in-place kernels issue the exact
same per-element float operations as the legacy per-parameter loop, so
results stay bitwise-identical (asserted in ``tests/test_perf.py``).
External code that replaces ``parameter.data`` (``load_state_dict``,
checkpoint restore) is re-adopted into the flat buffer on the next step.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..perf.config import config as _perf_config
from . import record as _record
from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "FOBOS", "RDA"]


class _FlatState:
    """Preflattened parameter storage for the in-place optimizers."""

    __slots__ = ("flat", "grad", "views", "slices", "scratch_a", "scratch_b",
                 "extra")

    def __init__(self, parameters: list[Tensor]):
        total = sum(parameter.data.size for parameter in parameters)
        self.flat = np.empty(total)
        self.grad = np.empty(total)
        self.scratch_a = np.empty(total)
        self.scratch_b = np.empty(total)
        self.views: list[np.ndarray] = []
        self.slices: list[tuple[int, int]] = []
        self.extra: dict[str, np.ndarray] = {}
        offset = 0
        for parameter in parameters:
            count = parameter.data.size
            view = self.flat[offset:offset + count].reshape(parameter.data.shape)
            view[...] = parameter.data
            parameter.data = view
            self.views.append(view)
            self.slices.append((offset, offset + count))
            offset += count


class Optimizer:
    """Base class holding a flat list of parameters to update."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self._flat: _FlatState | None = None

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _grads(self):
        """Yield ``(index, parameter, gradient)`` for parameters with grads."""
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is not None:
                yield index, parameter, parameter.grad

    # -- in-place fast path helpers -------------------------------------------

    def _flat_state(self) -> _FlatState | None:
        """Adopt parameters into the flat buffer; None when ineligible.

        Eligibility: every parameter is float64 (mixed dtypes keep the
        legacy loop).  A parameter whose ``.data`` was replaced since the
        last step (``load_state_dict``, checkpoint restore) is copied
        back into its view and re-adopted.  When the replacement no
        longer fits its stale view (a restore changed shape or dtype),
        the old buffer is dropped — salvaging its optimizer state — and
        eligibility is re-evaluated from the parameters' *current* data,
        so one incompatible restore does not disable the fast path for
        the optimizer's remaining lifetime.
        """
        flat = self._flat
        if flat is not None:
            for parameter, view in zip(self.parameters, flat.views):
                if parameter.data is view:
                    continue
                if (parameter.data.shape == view.shape
                        and parameter.data.dtype == np.float64):
                    view[...] = parameter.data
                    parameter.data = view
                    continue
                self._drop_flat_state()
                flat = None
                break
            if flat is not None:
                return flat
        if any(parameter.data.dtype != np.float64
               for parameter in self.parameters):
            return None
        flat = _FlatState(self.parameters)
        self._flat = flat
        return flat

    def _drop_flat_state(self) -> None:
        """Retire the flat buffer, handing its state back per parameter.

        Parameters still viewing the buffer keep their values (the views
        keep the buffer alive until re-adoption copies them out).
        """
        if self._flat is None:
            return
        self._export_flat_state()
        self._flat = None

    def _export_flat_state(self) -> None:
        """Hand flat-buffer optimizer state back to per-parameter dicts.

        Base optimizers keep no extra state; ``SGD``/``Adam`` override.
        """

    def _gather_grads(self, flat: _FlatState) -> bool:
        """Copy all parameter grads into ``flat.grad``; False if any is missing."""
        if any(parameter.grad is None for parameter in self.parameters):
            return False
        buffer = flat.grad
        for parameter, (start, end) in zip(self.parameters, flat.slices):
            buffer[start:end] = parameter.grad.reshape(-1)
        return True


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Tensor], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive; got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1); got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        if _record.ACTIVE:
            _record.note_step(self)
        if _perf_config.inplace_optim and self._flat_step():
            return
        self._export_flat_state()
        for index, parameter, grad in self._grads():
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(index)
                if velocity is None or velocity.shape != parameter.data.shape:
                    # Shape changed under a restore: momentum restarts.
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + grad
                self._velocity[index] = velocity
                grad = velocity
            parameter.data = parameter.data - self.lr * grad

    def _flat_step(self) -> bool:
        """One whole-buffer in-place update; per-element ops match the loop."""
        flat = self._flat_state()
        if flat is None or not self._gather_grads(flat):
            # Missing grads (or mixed dtypes) keep legacy subset semantics.
            return False
        grad = flat.grad
        if self.weight_decay:
            np.multiply(flat.flat, self.weight_decay, out=flat.scratch_a)
            grad += flat.scratch_a
        if self.momentum:
            velocity = flat.extra.get("velocity")
            if velocity is None:
                velocity = np.zeros_like(flat.flat)
                if self._velocity:  # migrate state from earlier legacy steps
                    for index, (start, end) in enumerate(flat.slices):
                        legacy = self._velocity.get(index)
                        if legacy is not None and legacy.size == end - start:
                            velocity[start:end] = legacy.reshape(-1)
                    self._velocity.clear()
                flat.extra["velocity"] = velocity
            velocity *= self.momentum
            velocity += grad
            grad = velocity
        np.multiply(grad, self.lr, out=flat.scratch_b)
        flat.flat -= flat.scratch_b
        return True

    def _export_flat_state(self) -> None:
        """Hand flat-buffer momentum back to the per-parameter dict."""
        flat = self._flat
        if flat is None:
            return
        velocity = flat.extra.pop("velocity", None)
        if velocity is not None:
            # The buffer's own layout (view shapes) is the state's true
            # shape — parameter.data may have been replaced with a
            # different shape since the last step.
            for index, ((start, end), view) in enumerate(
                    zip(flat.slices, flat.views)):
                self._velocity[index] = (
                    velocity[start:end].reshape(view.shape).copy())


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive; got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}

    def step(self) -> None:
        if _record.ACTIVE:
            _record.note_step(self)
        self._step_count += 1
        if _perf_config.inplace_optim and self._flat_step():
            return
        self._export_flat_state()
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for index, parameter, grad in self._grads():
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m = self._m.get(index)
            v = self._v.get(index)
            if m is None or m.shape != parameter.data.shape:
                # Absent — or stale after a shape-changing restore.
                m = np.zeros_like(parameter.data)
                v = np.zeros_like(parameter.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[index] = m
            self._v[index] = v
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _flat_step(self) -> bool:
        """Whole-buffer Adam update, bitwise-equal to the per-parameter loop."""
        flat = self._flat_state()
        if flat is None or not self._gather_grads(flat):
            return False
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        grad = flat.grad
        if self.weight_decay:
            np.multiply(flat.flat, self.weight_decay, out=flat.scratch_a)
            grad += flat.scratch_a
        m = flat.extra.get("m")
        v = flat.extra.get("v")
        if m is None:
            m = np.zeros_like(flat.flat)
            v = np.zeros_like(flat.flat)
            if self._m:  # migrate state from earlier legacy steps
                for index, (start, end) in enumerate(flat.slices):
                    legacy_m = self._m.get(index)
                    legacy_v = self._v.get(index)
                    if legacy_m is not None and legacy_m.size == end - start:
                        m[start:end] = legacy_m.reshape(-1)
                    if legacy_v is not None and legacy_v.size == end - start:
                        v[start:end] = legacy_v.reshape(-1)
                self._m.clear()
                self._v.clear()
            flat.extra["m"] = m
            flat.extra["v"] = v
        # Each line replays one elementwise op of the legacy expressions,
        # in the same order, so every float result is identical.
        m *= self.beta1
        np.multiply(grad, 1.0 - self.beta1, out=flat.scratch_a)
        m += flat.scratch_a
        v *= self.beta2
        np.multiply(grad, 1.0 - self.beta2, out=flat.scratch_a)
        flat.scratch_a *= grad
        v += flat.scratch_a
        np.divide(m, bias1, out=flat.scratch_a)          # m_hat
        np.divide(v, bias2, out=flat.scratch_b)          # v_hat
        np.sqrt(flat.scratch_b, out=flat.scratch_b)
        flat.scratch_b += self.eps
        flat.scratch_a *= self.lr
        flat.scratch_a /= flat.scratch_b
        flat.flat -= flat.scratch_a
        return True

    def _export_flat_state(self) -> None:
        """Hand flat-buffer moments back to the per-parameter dicts."""
        flat = self._flat
        if flat is None:
            return
        m = flat.extra.pop("m", None)
        v = flat.extra.pop("v", None)
        if m is None:
            return
        # Export at the buffer's own layout (view shapes): a replaced
        # parameter.data may no longer match the state's true shape.
        for index, ((start, end), view) in enumerate(
                zip(flat.slices, flat.views)):
            shape = view.shape
            self._m[index] = m[start:end].reshape(shape).copy()
            self._v[index] = v[start:end].reshape(shape).copy()


def _soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Elementwise soft-thresholding operator for L1 proximal steps."""
    return np.sign(values) * np.maximum(np.abs(values) - threshold, 0.0)


class FOBOS(Optimizer):
    """Forward-Backward Splitting (Duchi & Singer, 2009) with L1 penalty.

    Each step takes an SGD step followed by the proximal (soft-threshold)
    step, yielding sparse, stable weights for streaming logistic regression
    — the behaviour the paper attributes to Alink.
    """

    def __init__(self, parameters: Iterable[Tensor], lr: float,
                 l1: float = 1e-5):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive; got {lr}")
        if l1 < 0:
            raise ValueError(f"l1 strength must be non-negative; got {l1}")
        self.lr = lr
        self.l1 = l1
        self._step_count = 0

    def step(self) -> None:
        self._step_count += 1
        # Decaying step size eta_t = lr / sqrt(t), standard for FOBOS.
        eta = self.lr / np.sqrt(self._step_count)
        for _, parameter, grad in self._grads():
            updated = parameter.data - eta * grad
            parameter.data = _soft_threshold(updated, eta * self.l1)


class RDA(Optimizer):
    """Regularized Dual Averaging (Xiao, 2010) with L1 regularization.

    Maintains the running average gradient and solves the regularized
    proximal problem in closed form each step.
    """

    def __init__(self, parameters: Iterable[Tensor], l1: float = 1e-5,
                 gamma: float = 1.0):
        super().__init__(parameters)
        if l1 < 0:
            raise ValueError(f"l1 strength must be non-negative; got {l1}")
        if gamma <= 0:
            raise ValueError(f"gamma must be positive; got {gamma}")
        self.l1 = l1
        self.gamma = gamma
        self._step_count = 0
        self._grad_sum: dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        scale = np.sqrt(t) / self.gamma
        for index, parameter, grad in self._grads():
            total = self._grad_sum.get(index)
            if total is None:
                total = np.zeros_like(parameter.data)
            total = total + grad
            self._grad_sum[index] = total
            mean_grad = total / t
            # w_{t+1} = -sqrt(t)/gamma * soft_threshold(mean_grad, l1)
            parameter.data = -scale * _soft_threshold(mean_grad, self.l1)
