"""Stacked multi-model execution: N same-architecture models, one program.

Most tenants of the serving layer run the *same architecture* (LR / MLP)
with different parameters, so executing them one at a time pays the
Python/autograd overhead N times for tiny tensors.  :func:`stack_models`
stacks N models' parameters along a leading model axis — the canonical
per-model layout is exactly what ``state_spec``/``flatten_state`` in
:mod:`repro.distributed.backends` flatten, here extended with a model
axis — and :class:`ModelStack` runs one batched forward/backward for all
N at once.  :class:`StackedSGD` / :class:`StackedAdam` extend the PR-5
preflattened in-place optimizers over the stacked parameters and
import/export per-model optimizer state, so a group of mid-training
models can be stacked, stepped, and unstacked at any point.

**Equivalence contract.**  Every stacked operation replays, per model
slice, the exact float operations of the serial per-model path: batched
``np.matmul`` over a leading axis computes each slice with the same gemm
as the 2-D call, elementwise ufuncs and per-row reductions are
slice-identical, and Dropout draws each model's mask from that model's
own generator in the serial order.  Predictions, losses, updated
parameters, and optimizer state after :func:`unstack_models` are
therefore **bitwise-identical** to running each model alone (asserted in
``tests/test_stacked.py`` and gated in ``benchmarks/bench_hotpath.py
--stacked``).

Only architectures built from ``Linear``, the fusable activations,
``Dropout``, ``Flatten``, and ``Sequential`` can stack; anything else
(e.g. ``Conv2d``) raises :class:`StackedModelError` and callers fall
back to the serial loop.
"""

from __future__ import annotations

import numpy as np

from ..perf.config import config as _perf_config
from . import functional as F
from . import plan as _plan
from . import record as _record
from .modules import (
    Dropout,
    Flatten,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .optim import SGD, Adam
from .tensor import Tensor

__all__ = [
    "StackedModelError",
    "ModelStack",
    "stack_models",
    "unstack_models",
    "architecture_key",
    "stacked_cross_entropy",
    "stacked_fit",
    "StackedSGD",
    "StackedAdam",
    "make_stacked_optimizer",
]


class StackedModelError(ValueError):
    """A model set cannot be stacked (heterogeneous, unsupported, …)."""


_ACTIVATION_NAMES = {ReLU: "relu", Tanh: "tanh", Sigmoid: "sigmoid"}


def _flatten_layers(module: Module) -> list[Module]:
    """The module tree as a flat layer sequence (Sequential unrolled)."""
    if type(module) is Sequential:
        return [leaf for layer in module.layers
                for leaf in _flatten_layers(layer)]
    return [module]


def architecture_key(module: Module) -> tuple:
    """Hashable fingerprint of a module's stackable architecture.

    Two modules share a key iff they can stack together: same layer
    sequence (types + Linear dimensions + Dropout rates) and same
    per-parameter shapes/dtypes.  Raises :class:`StackedModelError` for
    architectures the stacked engine does not support.
    """
    ops = []
    for layer in _flatten_layers(module):
        kind = type(layer)
        if kind is Linear:
            ops.append(("linear", layer.in_features, layer.out_features,
                        layer.bias is not None))
        elif kind in _ACTIVATION_NAMES:
            ops.append((_ACTIVATION_NAMES[kind],))
        elif kind is Dropout:
            ops.append(("dropout", layer.p))
        elif kind is Flatten:
            ops.append(("flatten",))
        else:
            raise StackedModelError(
                f"cannot stack {kind.__name__} layers (supported: Linear, "
                f"ReLU/Tanh/Sigmoid, Dropout, Flatten, Sequential)")
    spec = tuple((name, parameter.data.shape, parameter.data.dtype.str)
                 for name, parameter in module.named_parameters())
    return (tuple(ops), spec)


# -- fused stacked autograd nodes -------------------------------------------


def _stacked_linear(x: Tensor, weight: Parameter, bias: Parameter | None,
                    activation: str | None) -> Tensor:
    """Batched affine map over ``(models, batch, features)`` input.

    Mirrors :func:`repro.nn.functional.fused_linear` with a leading model
    axis: batched gemms compute each model slice with the same float
    operations as the per-model 2-D call, so values (and gradients) are
    bitwise-identical per slice.
    """
    rec = _record.current() if _record.ACTIVE else None
    if rec is not None:
        rec.begin()
    xd = x.data
    wd = weight.data  # (models, out, in)
    out = np.matmul(xd, np.swapaxes(wd, -1, -2))
    if bias is not None:
        np.add(out, bias.data[:, None, :], out=out)
    act_state = None
    if activation == "relu":
        act_state = out > 0
        out = np.maximum(out, 0.0)
    elif activation == "tanh":
        out = np.tanh(out)
        act_state = out
    elif activation == "sigmoid":
        out = 1.0 / (1.0 + np.exp(-np.clip(out, -60.0, 60.0)))
        act_state = out

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray):
        if activation == "relu":
            g = g * act_state
        elif activation == "tanh":
            g = g * (1.0 - act_state * act_state)
        elif activation == "sigmoid":
            g = g * act_state * (1.0 - act_state)
        grad_x = np.matmul(g, wd)
        grad_weight = np.swapaxes(
            np.matmul(np.swapaxes(xd, -1, -2), g), -1, -2)
        if bias is None:
            return grad_x, grad_weight
        return grad_x, grad_weight, g.sum(axis=1)

    out_t = Tensor._make(out, parents, backward)
    if rec is not None:
        rec.end(("slinear", x, weight, bias, activation, out_t))
    return out_t


def _stacked_dropout(x: Tensor, p: float,
                     layers: list[Dropout]) -> Tensor:
    """Inverted dropout drawing each model's mask from its own generator.

    Model ``m``'s mask consumes exactly the draw the serial per-model
    forward would have made from ``layers[m].rng``, so each model's RNG
    stream advances identically whether it runs stacked or alone.
    """
    rec = _record.current() if _record.ACTIVE else None
    if rec is not None:
        rec.begin()
    data = x.data
    mask = np.empty(data.shape, dtype=data.dtype)
    for index, layer in enumerate(layers):
        mask[index] = (layer.rng.random(data.shape[1:]) >= p).astype(
            data.dtype)
    mask /= (1.0 - p)
    out = x * Tensor(mask)
    if rec is not None:
        rec.end(("sdropout", p, layers, x, out))
    return out


def stacked_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Per-model softmax cross-entropy: ``(models,)`` losses in one node.

    Replays :func:`repro.nn.functional._fused_cross_entropy`'s exact
    ufunc sequence with a leading model axis — each model slice of the
    forward and backward is bitwise-identical to the per-model fused (or
    unfused) loss.  Seed ``backward`` with ``np.ones(models)`` to mirror
    N independent scalar ``loss.backward()`` calls.
    """
    rec = _record.current() if _record.ACTIVE else None
    if rec is not None:
        rec.begin()
    x = logits.data
    if x.ndim != 3:
        raise StackedModelError(
            f"stacked_cross_entropy expects (models, batch, classes) "
            f"logits; got shape {x.shape}")
    models, rows, cols = x.shape
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (models, rows):
        raise ValueError(
            f"labels must have shape {(models, rows)}; got {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= cols):
        raise ValueError(
            f"labels must lie in [0, {cols}); got range "
            f"[{labels.min()}, {labels.max()}]")
    mask = np.zeros(x.shape)
    mask[np.arange(models)[:, None], np.arange(rows)[None, :], labels] = 1.0
    shifted = x - x.max(axis=-1, keepdims=True)
    exp_shifted = np.exp(shifted)
    norm = exp_shifted.sum(axis=-1, keepdims=True)
    log_probs = shifted - np.log(norm)
    picked = (log_probs * mask).sum(axis=-1)
    inv_count = 1.0 / rows
    loss = -(picked.sum(axis=-1) * inv_count)

    def backward(g: np.ndarray):
        g_picked = np.broadcast_to((-g * inv_count)[:, None], (models, rows))
        g_log_probs = np.broadcast_to(
            np.expand_dims(g_picked, -1), (models, rows, cols))
        g_masked = g_log_probs * mask
        g_log_norm = (-g_masked).sum(axis=(2,), keepdims=True)
        g_exp = np.broadcast_to(g_log_norm / norm, (models, rows, cols))
        return (g_masked + g_exp * exp_shifted,)

    out_t = Tensor._make(loss, (logits,), backward)
    if rec is not None:
        rec.end(("sce", logits, out_t))
    return out_t


# -- the stack ---------------------------------------------------------------


class ModelStack(Module):
    """N same-architecture modules executing as one batched program.

    Build with :func:`stack_models`; write parameters back with
    :func:`unstack_models`.  The stack owns *copies* of the source
    parameters stacked along a leading model axis — source modules are
    untouched until unstacking.
    """

    def __init__(self, modules: list[Module]):
        super().__init__()
        if not modules:
            raise StackedModelError("stack_models needs at least one model")
        key = architecture_key(modules[0])
        for module in modules[1:]:
            other = architecture_key(module)
            if other[0] != key[0]:
                raise StackedModelError(
                    f"architecture mismatch: {other[0]} != {key[0]}")
            if other[1] != key[1]:
                mine = [s for _n, _s, s in key[1]]
                theirs = [s for _n, _s, s in other[1]]
                if mine != theirs:
                    raise StackedModelError(
                        f"mixed parameter dtypes across models: "
                        f"{theirs} != {mine} — stacking needs a uniform "
                        f"dtype")
                raise StackedModelError(
                    f"parameter spec mismatch: {other[1]} != {key[1]}")
        self.num_models = len(modules)
        self.sources = list(modules)
        object.__setattr__(self, "key", key)
        self._source_params = [list(m.parameters()) for m in modules]
        stacked: list[Parameter] = []
        for index in range(len(self._source_params[0])):
            parameter = Parameter(np.stack(
                [params[index].data for params in self._source_params]))
            setattr(self, f"stacked{index}", parameter)
            stacked.append(parameter)
        self.stacked_params = stacked
        self._plan = self._build_plan(modules)

    def _build_plan(self, modules: list[Module]) -> list[tuple]:
        """Fold the lockstep layer sequences into stacked ops.

        A ``Linear`` directly followed by a fusable activation folds into
        one node, mirroring ``Sequential._forward_fused`` (the folded and
        unfolded forms are bitwise-identical, so the fold is safe in both
        perf modes).
        """
        index_of = {id(parameter): position for position, parameter
                    in enumerate(self._source_params[0])}
        layer_seqs = [_flatten_layers(module) for module in modules]
        plan: list[tuple] = []
        position = 0
        first = layer_seqs[0]
        while position < len(first):
            layer = first[position]
            kind = type(layer)
            if kind is Linear:
                weight = self.stacked_params[index_of[id(layer.weight)]]
                bias = (self.stacked_params[index_of[id(layer.bias)]]
                        if layer.bias is not None else None)
                activation = None
                if position + 1 < len(first):
                    activation = _ACTIVATION_NAMES.get(
                        type(first[position + 1]))
                plan.append(("linear", weight, bias, activation))
                position += 2 if activation is not None else 1
            elif kind in _ACTIVATION_NAMES:
                plan.append(("act", _ACTIVATION_NAMES[kind]))
                position += 1
            elif kind is Dropout:
                plan.append(("dropout", layer.p,
                             [seq[position] for seq in layer_seqs]))
                position += 1
            elif kind is Flatten:
                plan.append(("flatten",))
                position += 1
            else:  # architecture_key already rejected unsupported layers
                raise StackedModelError(
                    f"cannot stack {kind.__name__} layers")
        return plan

    def forward(self, x: Tensor) -> Tensor:
        x = x if isinstance(x, Tensor) else Tensor(x)
        if x.data.ndim < 2 or x.data.shape[0] != self.num_models:
            raise ValueError(
                f"stacked input must lead with the model axis "
                f"({self.num_models}); got shape {x.data.shape}")
        for op in self._plan:
            kind = op[0]
            if kind == "linear":
                x = _stacked_linear(x, op[1], op[2], op[3])
            elif kind == "act":
                # The functional wrappers run the same Tensor method and
                # additionally record the op for plan capture.
                x = getattr(F, op[1])(x)
            elif kind == "dropout":
                if self.training and op[1] > 0.0:
                    x = _stacked_dropout(x, op[1], op[2])
            else:  # flatten: keep the model axis, flatten the rest per row
                rec = _record.current() if _record.ACTIVE else None
                if rec is not None:
                    rec.begin()
                out = x.reshape(self.num_models, x.data.shape[1], -1)
                if rec is not None:
                    rec.end(("flatten", x, out))
                x = out
        return x

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Per-model class probabilities for ``(models, batch, …)`` input.

        Mirrors ``NeuralStreamingModel.predict_proba`` per slice: eval
        mode, no-grad forward, then the softmax ufunc chain (max → sub →
        exp → sum → log → sub → exp) with a leading model axis.
        """
        from .tensor import no_grad

        x = np.asarray(x, dtype=float)
        x = x.reshape(self.num_models, x.shape[1], -1)
        self.eval()
        with no_grad():
            logits = self.forward(Tensor(x))
        self.train()
        data = logits.data
        shifted = data - data.max(axis=-1, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        return np.exp(shifted - log_norm)


def stack_models(modules: list[Module]) -> ModelStack:
    """Stack N same-architecture modules into one :class:`ModelStack`."""
    return ModelStack(list(modules))


def unstack_models(stack: ModelStack) -> list[Module]:
    """Write the stack's parameters back into the source modules.

    Each source parameter receives a fresh copy of its model's slice, so
    the round trip ``stack → (train) → unstack`` leaves every model
    holding exactly the values the stacked program computed for it.
    Returns the source modules.
    """
    for index, params in enumerate(stack._source_params):
        for stacked, source in zip(stack.stacked_params, params):
            source.data = stacked.data[index].copy()
    return stack.sources


def stacked_fit(stack: ModelStack, optimizer, xs: np.ndarray,
                ys: np.ndarray, sgd_steps: int = 1) -> np.ndarray:
    """``sgd_steps`` batched training steps; returns the last per-model losses.

    Mirrors ``NeuralStreamingModel.partial_fit``'s loop (zero_grad →
    forward → cross-entropy → backward → step) with the model axis in
    front; ``backward`` is seeded with ``ones(models)`` so each model's
    gradient flow equals its own scalar ``loss.backward()``.
    """
    xs = np.asarray(xs, dtype=float)
    xs = xs.reshape(stack.num_models, xs.shape[1], -1)
    ys = np.asarray(ys, dtype=np.int64).reshape(stack.num_models, -1)
    if _perf_config.plan_capture and type(optimizer) in (StackedSGD,
                                                         StackedAdam):
        losses = _plan.stacked_fit_with_plan(stack, optimizer, xs, ys,
                                             sgd_steps, _stacked_fit_steps)
        if losses is not None:
            return losses
    return _stacked_fit_steps(stack, optimizer, xs, ys, sgd_steps)


def _stacked_fit_steps(stack: ModelStack, optimizer, xs: np.ndarray,
                       ys: np.ndarray, sgd_steps: int) -> np.ndarray:
    """The reference step loop (also the trace target for plan capture)."""
    seed = np.ones(stack.num_models)
    losses = None
    for _ in range(sgd_steps):
        optimizer.zero_grad()
        logits = stack(Tensor(xs))
        loss = stacked_cross_entropy(logits, ys)
        loss.backward(seed)
        optimizer.step()
        losses = loss.data.copy()
    return losses


# -- stacked optimizers ------------------------------------------------------


def _check_uniform(optimizers, expected_type, fields, num_models):
    if len(optimizers) != num_models:
        raise StackedModelError(
            f"got {len(optimizers)} optimizers for {num_models} models")
    for optimizer in optimizers:
        if type(optimizer) is not expected_type:
            raise StackedModelError(
                f"expected {expected_type.__name__} optimizers; got "
                f"{type(optimizer).__name__}")
    first = optimizers[0]
    for name in fields:
        values = {getattr(optimizer, name) for optimizer in optimizers}
        if len(values) > 1:
            raise StackedModelError(
                f"optimizer hyperparameter {name!r} differs across models: "
                f"{sorted(values)}")
    return first


def _gather_state(optimizers, state_name, index, stacked_parameter):
    """Stack one per-model optimizer-state entry; None when all absent.

    Models that have not accumulated state yet contribute zeros — exactly
    what their next serial step would have initialized.
    """
    entries = [getattr(optimizer, state_name).get(index)
               for optimizer in optimizers]
    if all(entry is None for entry in entries):
        return None
    shape = stacked_parameter.data.shape[1:]
    return np.stack([
        entry if entry is not None else np.zeros(shape)
        for entry in entries])


class StackedSGD(SGD):
    """SGD over a :class:`ModelStack`'s stacked parameters.

    Every update is elementwise, so the stacked step (including the PR-5
    preflattened in-place fast path, which engages automatically on the
    float64 stacked buffers) is bitwise-identical per model slice to N
    independent ``SGD.step()`` calls.
    """

    def __init__(self, stack: ModelStack, lr: float, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(stack.stacked_params, lr=lr, momentum=momentum,
                         weight_decay=weight_decay)
        self.stack = stack

    @classmethod
    def from_optimizers(cls, stack: ModelStack,
                        optimizers: list[SGD]) -> "StackedSGD":
        """Build from N per-model optimizers, importing their state."""
        first = _check_uniform(optimizers, SGD,
                               ("lr", "momentum", "weight_decay"),
                               stack.num_models)
        stacked = cls(stack, lr=first.lr, momentum=first.momentum,
                      weight_decay=first.weight_decay)
        for optimizer in optimizers:
            optimizer._export_flat_state()
        for index, parameter in enumerate(stacked.parameters):
            velocity = _gather_state(optimizers, "_velocity", index,
                                     parameter)
            if velocity is not None:
                stacked._velocity[index] = velocity
        return stacked

    def export_to(self, optimizers: list[SGD]) -> None:
        """Slice accumulated state back into the per-model optimizers."""
        self._export_flat_state()
        for index, velocity in self._velocity.items():
            for model, optimizer in enumerate(optimizers):
                optimizer._velocity[index] = velocity[model].copy()


class StackedAdam(Adam):
    """Adam over a :class:`ModelStack`'s stacked parameters.

    Importing requires every per-model optimizer to sit at the same
    ``_step_count`` (the bias-correction terms are shared across the
    stack); exporting writes the advanced count back to each.
    """

    def __init__(self, stack: ModelStack, lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(stack.stacked_params, lr=lr, betas=betas, eps=eps,
                         weight_decay=weight_decay)
        self.stack = stack

    @classmethod
    def from_optimizers(cls, stack: ModelStack,
                        optimizers: list[Adam]) -> "StackedAdam":
        """Build from N per-model optimizers, importing their state."""
        first = _check_uniform(optimizers, Adam,
                               ("lr", "beta1", "beta2", "eps",
                                "weight_decay"), stack.num_models)
        counts = {optimizer._step_count for optimizer in optimizers}
        if len(counts) > 1:
            raise StackedModelError(
                f"Adam step counts differ across models: {sorted(counts)} "
                f"— bias correction cannot be shared")
        stacked = cls(stack, lr=first.lr, betas=(first.beta1, first.beta2),
                      eps=first.eps, weight_decay=first.weight_decay)
        stacked._step_count = first._step_count
        for optimizer in optimizers:
            optimizer._export_flat_state()
        for index, parameter in enumerate(stacked.parameters):
            for state_name, target in (("_m", stacked._m),
                                       ("_v", stacked._v)):
                entry = _gather_state(optimizers, state_name, index,
                                      parameter)
                if entry is not None:
                    target[index] = entry
        return stacked

    def export_to(self, optimizers: list[Adam]) -> None:
        """Slice accumulated state back into the per-model optimizers."""
        self._export_flat_state()
        for optimizer in optimizers:
            optimizer._step_count = self._step_count
        for state_name in ("_m", "_v"):
            for index, entry in getattr(self, state_name).items():
                for model, optimizer in enumerate(optimizers):
                    getattr(optimizer, state_name)[index] = (
                        entry[model].copy())


def make_stacked_optimizer(stack: ModelStack, optimizers):
    """Dispatch on the per-model optimizer type; imports their state."""
    optimizers = list(optimizers)
    if not optimizers:
        raise StackedModelError("no optimizers to stack")
    kind = type(optimizers[0])
    if kind is SGD:
        return StackedSGD.from_optimizers(stack, optimizers)
    if kind is Adam:
        return StackedAdam.from_optimizers(stack, optimizers)
    raise StackedModelError(
        f"cannot stack {kind.__name__} optimizers (supported: SGD, Adam)")
