"""Checkpoint serialization for :mod:`repro.nn` models.

Historical-knowledge reuse in FreewayML stores model parameters keyed by
data distribution (the paper's ``(d_i, k_i)`` pairs) and Table IV measures
the resulting space overhead.  This module serializes ``state_dict``
mappings to compact bytes (``numpy.savez``) so the knowledge store can both
persist checkpoints and report their exact size.
"""

from __future__ import annotations

import io
from collections import OrderedDict
from pathlib import Path

import numpy as np

__all__ = [
    "state_dict_to_bytes",
    "state_dict_from_bytes",
    "state_dict_nbytes",
    "save_state_dict",
    "load_state_dict",
]


def state_dict_to_bytes(state: dict) -> bytes:
    """Serialize a ``state_dict`` (name → array) to compressed bytes."""
    buffer = io.BytesIO()
    arrays = {name: np.asarray(value) for name, value in state.items()}
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def state_dict_from_bytes(blob: bytes) -> "OrderedDict[str, np.ndarray]":
    """Inverse of :func:`state_dict_to_bytes`."""
    buffer = io.BytesIO(blob)
    with np.load(buffer) as archive:
        return OrderedDict((name, archive[name].copy()) for name in archive.files)


def state_dict_nbytes(state: dict) -> int:
    """Raw parameter payload size in bytes (sum of array buffers).

    This is the number Table IV reports: the in-memory footprint of one
    preserved knowledge entry, excluding container framing.
    """
    return sum(np.asarray(value).nbytes for value in state.values())


def save_state_dict(state: dict, path: str | Path) -> int:
    """Write a checkpoint to ``path``; return bytes written."""
    blob = state_dict_to_bytes(state)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(blob)
    return len(blob)


def load_state_dict(path: str | Path) -> "OrderedDict[str, np.ndarray]":
    """Read a checkpoint written by :func:`save_state_dict`."""
    return state_dict_from_bytes(Path(path).read_bytes())
