"""Captured-plan execution: trace once, replay many (see docs/PERF.md).

Streaming models run the *same* op sequence every batch, yet the
define-by-run engine rebuilds Tensor wrappers, backward closures, and
intermediate arrays each time.  This module removes that fixed cost the
way CUDA graphs do: the first ``fit``/``predict_proba`` for a signature
runs the normal path under the :mod:`repro.nn.record` tracer, the trace
is compiled into a flat list of *replay kernels* — ``out=``-style numpy
calls into a preallocated buffer arena — and subsequent batches replay
the kernels with zero graph construction.

**Safety model.**  Capture is self-verifying: the reference run and a
trial replay are compared — parameters, optimizer state, Dropout RNG
states, and loss bytes must be **bitwise identical** — before a plan is
cached.  Any mismatch (or any op the compiler does not recognize) marks
the signature unsupported and the model keeps using the reference path.
Capture therefore never changes results, only speed.

**Invalidation.**  Plans are keyed by batch shape, train/eval mode, and
step count; a shape change simply misses the cache.  Replay kernels
fetch ``parameter.data`` at call time, so ``load_state_dict`` /
checkpoint restore (which replaces the data arrays — the PR-9
``_flat_state`` bug class) cannot leave a kernel holding stale buffers;
the model layer still drops its plans on restore so momentum-laden
replays re-verify from scratch.  The whole engine sits behind the
``plan_capture`` flag in :mod:`repro.perf.config`.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from time import perf_counter

import numpy as np

from ..perf.config import config as _perf_config
from . import record as _record
from .modules import Dropout
from .optim import Adam, Optimizer, SGD

__all__ = [
    "PlanUnsupported",
    "replay_kernel",
    "add_plan_hook",
    "remove_plan_hook",
    "plan_cache_stats",
    "fit_with_plan",
    "proba_with_plan",
    "stacked_fit_with_plan",
    "invalidate_plans",
    "clear_stacked_plans",
    "PLAN_CACHE_COUNTER",
]

#: Metric name for plan-cache events (capture / replay / unsupported /
#: invalidate), exported by :class:`repro.perf.HotPathProfiler`.
PLAN_CACHE_COUNTER = "freeway_plan_cache"

#: Per-model plans kept per signature before LRU eviction.
_PLAN_SET_CAP = 8

#: Global stacked-plan cache size (one entry per tenant-group signature).
_STACKED_CAP = 16


class PlanUnsupported(Exception):
    """The trace contains something the plan compiler cannot replay."""


def replay_kernel(fn):
    """Mark ``fn`` as a replay kernel: it must only write into the arena.

    The marker is what lint rule REP012 keys on — per-batch ``Tensor``
    / ``np.zeros`` / ``np.empty`` allocation inside a replay kernel
    defeats the engine's whole point, so the analyzer flags it.
    """
    fn.__replay_kernel__ = True
    return fn


# -- events ------------------------------------------------------------------

_HOOKS: list = []
_HOOKS_LOCK = threading.Lock()
_STATS: Counter = Counter()
_STATS_LOCK = threading.Lock()


def add_plan_hook(hook) -> None:
    """Register ``hook(event, seconds)`` for plan-cache events.

    Events: ``"capture"`` (a plan was compiled and verified),
    ``"replay"`` (a cached plan ran; timed only while hooks are
    registered), ``"unsupported"`` (capture fell back permanently for a
    signature), ``"invalidate"`` (a cached plan was dropped).
    """
    with _HOOKS_LOCK:
        if hook not in _HOOKS:
            _HOOKS.append(hook)


def remove_plan_hook(hook) -> None:
    """Unregister a hook added with :func:`add_plan_hook`."""
    with _HOOKS_LOCK:
        if hook in _HOOKS:
            _HOOKS.remove(hook)


def plan_cache_stats() -> dict:
    """Cumulative event counts (process-wide, monotonic)."""
    with _STATS_LOCK:
        return dict(_STATS)


def _notify(event: str, seconds: float = 0.0) -> None:
    with _STATS_LOCK:
        _STATS[event] += 1
    with _HOOKS_LOCK:
        hooks = list(_HOOKS)
    for hook in hooks:
        hook(event, seconds)


# -- state snapshot for capture-time verification ----------------------------


def _freeze(value):
    """Hashable/comparable form of an RNG-state entry (dicts, arrays)."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, np.ndarray):
        return (value.shape, value.dtype.str, value.tobytes())
    return value


class _Snapshot:
    """Copy of everything a training step mutates, for verify/rollback."""

    __slots__ = ("_optimizer", "_rngs", "_params", "_state", "_rng_states")

    def __init__(self, optimizer: Optimizer, rngs: list):
        self._optimizer = optimizer
        self._rngs = rngs
        self._params = [(p, p.data.copy()) for p in optimizer.parameters]
        self._state = self._optimizer_state()
        self._rng_states = [_freeze(rng.bit_generator.state) for rng in rngs]

    def _optimizer_state(self) -> dict:
        opt = self._optimizer
        opt._export_flat_state()  # flat.extra → per-parameter dicts
        state: dict = {}
        if isinstance(opt, SGD):
            state["velocity"] = {k: v.copy() for k, v in opt._velocity.items()}
        elif isinstance(opt, Adam):
            state["m"] = {k: v.copy() for k, v in opt._m.items()}
            state["v"] = {k: v.copy() for k, v in opt._v.items()}
            state["t"] = opt._step_count
        return state

    def restore(self) -> None:
        opt = self._optimizer
        for parameter, saved in self._params:
            parameter.data = saved.copy()
        opt._export_flat_state()
        if isinstance(opt, SGD):
            opt._velocity.clear()
            opt._velocity.update(
                {k: v.copy() for k, v in self._state["velocity"].items()})
        elif isinstance(opt, Adam):
            opt._m.clear()
            opt._v.clear()
            opt._m.update({k: v.copy() for k, v in self._state["m"].items()})
            opt._v.update({k: v.copy() for k, v in self._state["v"].items()})
            opt._step_count = self._state["t"]
        for rng, frozen in zip(self._rngs, self._rng_states):
            rng.bit_generator.state = _unfreeze_rng(frozen)

    def matches(self, other: "_Snapshot") -> bool:
        if len(self._params) != len(other._params):
            return False
        for (_, a), (_, b) in zip(self._params, other._params):
            if a.shape != b.shape or a.tobytes() != b.tobytes():
                return False
        return (_freeze_state(self._state) == _freeze_state(other._state)
                and self._rng_states == other._rng_states)


def _freeze_state(state: dict):
    return tuple(sorted((k, _freeze(v)) for k, v in state.items()))


def _unfreeze_rng(frozen):
    """Invert :func:`_freeze` for a bit-generator state dict."""
    def thaw(value):
        if isinstance(value, tuple) and value and isinstance(value[0], tuple):
            return {k: thaw(v) for k, v in value}
        if (isinstance(value, tuple) and len(value) == 3
                and isinstance(value[2], bytes)):
            return np.frombuffer(value[2], dtype=np.dtype(value[1])).reshape(
                value[0]).copy()
        return value
    return thaw(frozen)


def _buffer_like(array: np.ndarray) -> np.ndarray:
    """A fresh arena buffer for ``array``'s shape; float64 only."""
    if array.dtype != np.float64:
        raise PlanUnsupported(f"non-float64 buffer dtype {array.dtype}")
    return np.empty(array.shape)


# -- replay kernels ----------------------------------------------------------
#
# Each kernel replays one recorded op's exact float operations into
# preallocated buffers.  ``forward``/``backward``/``step`` are marked
# with @replay_kernel: they must not allocate (lint rule REP012).
# Parameter arrays are fetched via ``.data`` at call time so checkpoint
# restores and flat-state re-adoption can never leave a kernel stale.


class _LinearKernel:
    """``x @ W.T + b`` (+ fused activation) — mirrors ``fused_linear``."""

    __slots__ = ("weight", "bias", "activation", "stacked", "windex",
                 "bindex", "x", "out", "mask", "scratch", "g_out", "g_in",
                 "w_scratch", "gw", "gb", "x_t", "out_t")

    def __init__(self, x_buf, out_ref, weight, bias, activation, stacked):
        self.weight = weight
        self.bias = bias
        self.activation = activation
        self.stacked = stacked
        self.windex = -1
        self.bindex = -1
        self.x = x_buf
        self.out = _buffer_like(out_ref)
        self.mask = (np.empty(out_ref.shape, dtype=bool)
                     if activation == "relu" else None)
        self.scratch = (_buffer_like(out_ref)
                        if activation in ("tanh", "sigmoid") else None)
        self.w_scratch = np.empty(np.swapaxes(weight.data, -1, -2).shape)
        self.gw = np.empty(weight.data.shape)
        self.gb = np.empty(bias.data.shape) if bias is not None else None
        self.g_out = None   # wired by the compiler (grad w.r.t. self.out)
        self.g_in = None    # grad w.r.t. self.x; None for the first layer

    @replay_kernel
    def forward(self) -> None:
        w = self.weight.data
        np.matmul(self.x, np.swapaxes(w, -1, -2), out=self.out)
        if self.bias is not None:
            b = self.bias.data
            np.add(self.out, b[:, None, :] if self.stacked else b,
                   out=self.out)
        if self.activation == "relu":
            np.greater(self.out, 0.0, out=self.mask)
            np.maximum(self.out, 0.0, out=self.out)
        elif self.activation == "tanh":
            np.tanh(self.out, out=self.out)
        elif self.activation == "sigmoid":
            np.clip(self.out, -60.0, 60.0, out=self.scratch)
            np.negative(self.scratch, out=self.scratch)
            np.exp(self.scratch, out=self.scratch)
            np.add(self.scratch, 1.0, out=self.scratch)
            np.divide(1.0, self.scratch, out=self.out)

    @replay_kernel
    def backward(self) -> None:
        g = self.g_out
        if self.activation == "relu":
            np.multiply(g, self.mask, out=g)
        elif self.activation == "tanh":
            np.multiply(self.out, self.out, out=self.scratch)
            np.subtract(1.0, self.scratch, out=self.scratch)
            np.multiply(g, self.scratch, out=g)
        elif self.activation == "sigmoid":
            np.subtract(1.0, self.out, out=self.scratch)
            np.multiply(g, self.out, out=g)
            np.multiply(g, self.scratch, out=g)
        w = self.weight.data
        if self.g_in is not None:
            np.matmul(g, w, out=self.g_in)
        # grad_W = (x.T @ g).T — matmul with the same operand layout as
        # the reference closure, then a float-op-free transposed copy.
        np.matmul(np.swapaxes(self.x, -1, -2), g, out=self.w_scratch)
        self.gw[...] = np.swapaxes(self.w_scratch, -1, -2)
        if self.gb is not None:
            np.sum(g, axis=-2, out=self.gb)


class _ActKernel:
    """A standalone activation — mirrors the ``Tensor`` method ops."""

    __slots__ = ("name", "x", "out", "mask", "scratch", "g_out", "g_in",
                 "x_t", "out_t")

    def __init__(self, name, x_buf, out_ref):
        self.name = name
        self.x = x_buf
        self.out = _buffer_like(out_ref)
        self.mask = (np.empty(out_ref.shape, dtype=bool)
                     if name == "relu" else None)
        self.scratch = (_buffer_like(out_ref)
                        if name in ("tanh", "sigmoid") else None)
        self.g_out = None
        self.g_in = None

    @replay_kernel
    def forward(self) -> None:
        if self.name == "relu":
            # Tensor.relu uses np.where(mask, x, 0.0): a pure selection,
            # replayed as fill + masked copy (no float ops either way).
            np.greater(self.x, 0.0, out=self.mask)
            self.out.fill(0.0)
            np.copyto(self.out, self.x, where=self.mask)
        elif self.name == "tanh":
            np.tanh(self.x, out=self.out)
        elif self.name == "sigmoid":
            np.clip(self.x, -60.0, 60.0, out=self.scratch)
            np.negative(self.scratch, out=self.scratch)
            np.exp(self.scratch, out=self.scratch)
            np.add(self.scratch, 1.0, out=self.scratch)
            np.divide(1.0, self.scratch, out=self.out)

    @replay_kernel
    def backward(self) -> None:
        g = self.g_out
        if self.name == "relu":
            np.multiply(g, self.mask, out=g)
        elif self.name == "tanh":
            np.multiply(self.out, self.out, out=self.scratch)
            np.subtract(1.0, self.scratch, out=self.scratch)
            np.multiply(g, self.scratch, out=g)
        elif self.name == "sigmoid":
            np.subtract(1.0, self.out, out=self.scratch)
            np.multiply(g, self.out, out=g)
            np.multiply(g, self.scratch, out=g)
        if self.g_in is not None:
            np.copyto(self.g_in, g)


class _DropoutKernel:
    """Inverted dropout drawing from the live generator(s) each replay."""

    __slots__ = ("p", "rng", "layers", "x", "out", "rand", "maskb", "maskf",
                 "g_out", "g_in", "x_t", "out_t")

    def __init__(self, p, rng, layers, x_buf, out_ref):
        self.p = p
        self.rng = rng          # single-model capture
        self.layers = layers    # stacked capture: one Dropout per model
        self.x = x_buf
        self.out = _buffer_like(out_ref)
        self.rand = np.empty(out_ref.shape)
        self.maskb = np.empty(out_ref.shape, dtype=bool)
        self.maskf = np.empty(out_ref.shape)
        self.g_out = None
        self.g_in = None

    @replay_kernel
    def forward(self) -> None:
        if self.layers is None:
            self.rng.random(out=self.rand)
        else:
            for index, layer in enumerate(self.layers):
                layer.rng.random(out=self.rand[index])
        np.greater_equal(self.rand, self.p, out=self.maskb)
        np.copyto(self.maskf, self.maskb)
        np.divide(self.maskf, 1.0 - self.p, out=self.maskf)
        np.multiply(self.x, self.maskf, out=self.out)

    @replay_kernel
    def backward(self) -> None:
        if self.g_in is not None:
            np.multiply(self.g_out, self.maskf, out=self.g_in)


class _CrossEntropyKernel:
    """Fused softmax cross-entropy, 2-D or stacked — exact ufunc replay."""

    __slots__ = ("stacked", "logits", "rows", "cols", "models", "mask",
                 "mx", "shifted", "expb", "norm", "logp", "scratch",
                 "picked", "loss_vec", "gln", "g_logits", "row_idx",
                 "model_idx", "inv_count", "neg_inv")

    def __init__(self, logits_buf, logits_ref, stacked):
        self.stacked = stacked
        self.logits = logits_buf
        shape = logits_ref.shape
        if stacked:
            self.models, self.rows, self.cols = shape
            self.model_idx = np.arange(self.models)[:, None]
            self.row_idx = np.arange(self.rows)[None, :]
            self.picked = np.empty((self.models, self.rows))
            self.loss_vec = np.empty(self.models)
            self.gln = np.empty((self.models, self.rows, 1))
            norm_shape = (self.models, self.rows, 1)
        else:
            self.models = 1
            self.rows, self.cols = shape
            self.model_idx = None
            self.row_idx = np.arange(self.rows)
            self.picked = np.empty(self.rows)
            self.loss_vec = None
            self.gln = np.empty((self.rows, 1))
            norm_shape = (self.rows, 1)
        self.mask = np.empty(shape)
        self.mx = np.empty(norm_shape)
        self.shifted = np.empty(shape)
        self.expb = np.empty(shape)
        self.norm = np.empty(norm_shape)
        self.logp = np.empty(shape)
        self.scratch = np.empty(shape)
        self.g_logits = np.empty(shape)
        self.inv_count = 1.0 / self.rows
        # backward seed is 1.0 per model; (-1.0) * inv_count is exact.
        self.neg_inv = -self.inv_count

    @replay_kernel
    def forward(self, labels: np.ndarray):
        if self.stacked:
            if labels.shape != (self.models, self.rows):
                raise ValueError(
                    f"labels must have shape {(self.models, self.rows)}; "
                    f"got {labels.shape}")
        if labels.size and (labels.min() < 0 or labels.max() >= self.cols):
            raise ValueError(
                f"labels must lie in [0, {self.cols}); got range "
                f"[{labels.min()}, {labels.max()}]")
        self.mask.fill(0.0)
        if self.stacked:
            self.mask[self.model_idx, self.row_idx, labels] = 1.0
        else:
            self.mask[self.row_idx, labels] = 1.0
        np.max(self.logits, axis=-1, keepdims=True, out=self.mx)
        np.subtract(self.logits, self.mx, out=self.shifted)
        np.exp(self.shifted, out=self.expb)
        np.sum(self.expb, axis=-1, keepdims=True, out=self.norm)
        np.log(self.norm, out=self.mx)
        np.subtract(self.shifted, self.mx, out=self.logp)
        np.multiply(self.logp, self.mask, out=self.scratch)
        np.sum(self.scratch, axis=-1, out=self.picked)
        if self.stacked:
            np.sum(self.picked, axis=-1, out=self.loss_vec)
            np.multiply(self.loss_vec, self.inv_count, out=self.loss_vec)
            np.negative(self.loss_vec, out=self.loss_vec)
            return self.loss_vec
        return -(self.picked.sum() * self.inv_count)

    @replay_kernel
    def backward(self) -> None:
        np.multiply(self.mask, self.neg_inv, out=self.g_logits)
        np.negative(self.g_logits, out=self.scratch)
        np.sum(self.scratch, axis=-1, keepdims=True, out=self.gln)
        np.divide(self.gln, self.norm, out=self.gln)
        np.multiply(self.expb, self.gln, out=self.scratch)
        np.add(self.g_logits, self.scratch, out=self.g_logits)


class _SoftmaxKernel:
    """The inference softmax chain (max → sub → exp → sum → log → sub → exp)."""

    __slots__ = ("x", "out", "mx", "shifted", "x_t", "out_t")

    def __init__(self, x_buf, out_ref):
        self.x = x_buf
        self.out = _buffer_like(out_ref)
        self.mx = np.empty(out_ref.shape[:-1] + (1,))
        self.shifted = np.empty(out_ref.shape)

    @replay_kernel
    def forward(self) -> None:
        np.max(self.x, axis=-1, keepdims=True, out=self.mx)
        np.subtract(self.x, self.mx, out=self.shifted)
        np.exp(self.shifted, out=self.out)
        np.sum(self.out, axis=-1, keepdims=True, out=self.mx)
        np.log(self.mx, out=self.mx)
        np.subtract(self.shifted, self.mx, out=self.shifted)
        np.exp(self.shifted, out=self.out)


class _StepKernel:
    """One optimizer step from plan gradient buffers, reference-exact."""

    __slots__ = ("optimizer", "pairs", "is_adam")

    def __init__(self, optimizer, pairs):
        self.optimizer = optimizer
        self.pairs = pairs  # [(parameter, grad buffer), ...]
        self.is_adam = isinstance(optimizer, Adam)

    @replay_kernel
    def step(self) -> None:
        opt = self.optimizer
        for parameter, grad in self.pairs:
            parameter.grad = grad
        if self.is_adam:
            opt._step_count += 1
            if _perf_config.inplace_optim and opt._flat_step():
                return
            opt._step_count -= 1  # opt.step() re-bumps below
        else:
            if _perf_config.inplace_optim and opt._flat_step():
                return
        opt.step()


# -- trace compilation -------------------------------------------------------


def _op_input(op):
    kind = op[0]
    if kind in ("linear", "slinear", "flatten"):
        return op[1]
    if kind == "act":
        return op[2]
    if kind in ("dropout", "sdropout"):
        return op[3]
    if kind == "softmax":
        return op[2]
    return op[1]  # ce / sce: the logits tensor


def _op_struct(op) -> tuple:
    """Structural key: two ops with equal keys compile to the same kernel."""
    kind = op[0]
    if kind in ("linear", "slinear"):
        _, x_t, weight, bias, activation, out_t = op
        return (kind, id(weight), id(bias) if bias is not None else None,
                activation, x_t.data.shape, out_t.data.shape)
    if kind == "act":
        return (kind, op[1], op[2].data.shape)
    if kind == "dropout":
        return (kind, op[1], id(op[2]), op[3].data.shape)
    if kind == "sdropout":
        return (kind, op[1], tuple(id(layer) for layer in op[2]),
                op[3].data.shape)
    if kind == "flatten":
        return (kind, op[1].data.shape, op[2].data.shape)
    if kind in ("ce", "sce"):
        return (kind, op[1].data.shape)
    if kind == "softmax":
        return (kind, op[1], op[2].data.shape)
    if kind == "step":
        return (kind, id(op[1]))
    return ("?", kind)


def _resolve(tensor_id: int, alias: dict) -> int:
    while tensor_id in alias:
        tensor_id = alias[tensor_id]
    return tensor_id


def _compile_forward(ops, x_shape):
    """Kernels + buffer arena for a forward op chain starting at ``x_shape``."""
    if not ops:
        raise PlanUnsupported("empty forward trace")
    x_buf = np.empty(x_shape)
    first_in = _op_input(ops[0])
    if first_in.data.shape != tuple(x_shape):
        raise PlanUnsupported(
            f"entry shape {first_in.data.shape} != input {tuple(x_shape)}")
    buf_of = {id(first_in): x_buf}
    alias: dict[int, int] = {}
    kernels = []
    for op in ops:
        kind = op[0]
        x_t = _op_input(op)
        x_b = buf_of.get(id(x_t))
        if x_b is None:
            raise PlanUnsupported(f"op chain broken at {kind!r}")
        out_t = op[-1]
        if id(out_t) in buf_of:
            raise PlanUnsupported("tensor produced twice")
        if kind == "flatten":
            if out_t.data.shape != x_t.data.shape:
                raise PlanUnsupported("non-identity flatten")
            buf_of[id(out_t)] = x_b
            alias[id(out_t)] = id(x_t)
            continue
        if kind in ("linear", "slinear"):
            _, _x, weight, bias, activation, _o = op
            if activation not in (None, "relu", "tanh", "sigmoid"):
                raise PlanUnsupported(f"activation {activation!r}")
            kernel = _LinearKernel(x_b, out_t.data, weight, bias, activation,
                                   stacked=(kind == "slinear"))
        elif kind == "act":
            name = op[1]
            if name not in ("relu", "tanh", "sigmoid"):
                raise PlanUnsupported(f"activation {name!r}")
            kernel = _ActKernel(name, x_b, out_t.data)
        elif kind == "dropout":
            kernel = _DropoutKernel(op[1], op[2], None, x_b, out_t.data)
        elif kind == "sdropout":
            kernel = _DropoutKernel(op[1], None, list(op[2]), x_b, out_t.data)
        else:
            raise PlanUnsupported(f"unsupported op {kind!r}")
        kernel.x_t = x_t
        kernel.out_t = out_t
        buf_of[id(out_t)] = kernel.out
        kernels.append(kernel)
    return x_buf, kernels, buf_of, alias


def _wire_backward(kernels, x_buf, loss_kernel, logits_t, alias) -> None:
    """Connect gradient buffers in reverse order; entry grads are skipped."""
    grad_of = {_resolve(id(logits_t), alias): loss_kernel.g_logits}
    for kernel in reversed(kernels):
        g = grad_of.get(_resolve(id(kernel.out_t), alias))
        if g is None:
            raise PlanUnsupported("gradient chain broken")
        kernel.g_out = g
        if kernel.x is x_buf:
            kernel.g_in = None  # nothing consumes the input gradient
        else:
            kernel.g_in = np.empty(kernel.x.shape)
            source = _resolve(id(kernel.x_t), alias)
            if source in grad_of:
                raise PlanUnsupported("tensor consumed twice")
            grad_of[source] = kernel.g_in


class _FitPlan:
    """A compiled train step: forward, loss, backward, optimizer update."""

    __slots__ = ("x_buf", "kernels", "loss", "step", "sgd_steps",
                 "grads_in_order", "_lock")

    def __init__(self, x_buf, kernels, loss_kernel, step_kernel, sgd_steps):
        self.x_buf = x_buf
        self.kernels = kernels
        self.loss = loss_kernel
        self.step = step_kernel
        self.sgd_steps = sgd_steps
        self.grads_in_order = [grad for _, grad in step_kernel.pairs]
        self._lock = threading.Lock()

    def replay(self, xr: np.ndarray, labels: np.ndarray):
        np.copyto(self.x_buf, xr)
        loss = None
        for _ in range(self.sgd_steps):
            for kernel in self.kernels:
                kernel.forward()
            loss = self.loss.forward(labels)
            self.loss.backward()
            for kernel in reversed(self.kernels):
                kernel.backward()
            self.step.step()
        return loss

    def bind(self, stack, optimizer) -> None:
        """Point the kernels at a rebuilt stack's parameters and optimizer.

        The serving layer reconstructs each tenant group's ``ModelStack``
        (fresh ``Parameter`` objects) every scheduling round; the cached
        plan's buffers are shape-compatible by key, only the bindings
        move.
        """
        params = stack.stacked_params
        dropout_ops = [op for op in stack._plan
                       if op[0] == "dropout" and op[1] > 0.0]
        position = 0
        for kernel in self.kernels:
            if isinstance(kernel, _LinearKernel):
                kernel.weight = params[kernel.windex]
                kernel.bias = (params[kernel.bindex]
                               if kernel.bindex >= 0 else None)
            elif isinstance(kernel, _DropoutKernel):
                kernel.layers = dropout_ops[position][2]
                position += 1
        self.step.optimizer = optimizer
        self.step.is_adam = isinstance(optimizer, Adam)
        self.step.pairs = list(zip(optimizer.parameters, self.grads_in_order))


class _ProbaPlan:
    """A compiled inference pass ending in the softmax chain."""

    __slots__ = ("x_buf", "kernels", "softmax")

    def __init__(self, x_buf, kernels, softmax_kernel):
        self.x_buf = x_buf
        self.kernels = kernels
        self.softmax = softmax_kernel

    def replay(self, xr: np.ndarray) -> np.ndarray:
        np.copyto(self.x_buf, xr)
        for kernel in self.kernels:
            kernel.forward()
        self.softmax.forward()
        # Callers cache the result; the arena is rewritten next call.
        return self.softmax.out.copy()


def _compile_fit(trace, optimizer, sgd_steps: int, x_shape, stacked: bool):
    """Compile a recorded ``fit`` trace into a :class:`_FitPlan`."""
    segments: list[list] = []
    segment: list = []
    for op in trace.ops:
        if op[0] == "step":
            if op[1] is not optimizer:
                raise PlanUnsupported("step from a foreign optimizer")
            segments.append(segment)
            segment = []
        else:
            segment.append(op)
    if segment:
        raise PlanUnsupported("ops recorded after the final optimizer step")
    if len(segments) != sgd_steps:
        raise PlanUnsupported(
            f"{len(segments)} recorded steps for sgd_steps={sgd_steps}")
    structure = [_op_struct(op) for op in segments[0]]
    for other in segments[1:]:
        if [_op_struct(op) for op in other] != structure:
            raise PlanUnsupported("sgd steps differ structurally")
    first = segments[0]
    loss_kind = "sce" if stacked else "ce"
    if not first or first[-1][0] != loss_kind:
        raise PlanUnsupported("trace does not end in the expected loss")
    loss_op = first[-1]
    logits_t = loss_op[1]
    x_buf, kernels, buf_of, alias = _compile_forward(first[:-1], x_shape)
    logits_buf = buf_of.get(id(logits_t))
    if logits_buf is None:
        raise PlanUnsupported("loss input not produced by the plan")
    loss_kernel = _CrossEntropyKernel(logits_buf, logits_t.data, stacked)
    _wire_backward(kernels, x_buf, loss_kernel, logits_t, alias)

    index_of = {id(p): i for i, p in enumerate(optimizer.parameters)}
    grads: dict[int, np.ndarray] = {}
    for kernel in kernels:
        if not isinstance(kernel, _LinearKernel):
            continue
        if id(kernel.weight) in grads:
            raise PlanUnsupported("tied parameters")
        grads[id(kernel.weight)] = kernel.gw
        kernel.windex = index_of.get(id(kernel.weight), -1)
        if kernel.bias is not None:
            if id(kernel.bias) in grads:
                raise PlanUnsupported("tied parameters")
            grads[id(kernel.bias)] = kernel.gb
            kernel.bindex = index_of.get(id(kernel.bias), -1)
            if kernel.bindex < 0:
                raise PlanUnsupported("linear parameter outside the optimizer")
        if kernel.windex < 0:
            raise PlanUnsupported("linear parameter outside the optimizer")
    pairs = []
    for parameter in optimizer.parameters:
        grad = grads.pop(id(parameter), None)
        if grad is None:
            raise PlanUnsupported("optimizer parameter without a gradient")
        pairs.append((parameter, grad))
    if grads:
        raise PlanUnsupported("gradient for a non-optimizer parameter")
    step_kernel = _StepKernel(optimizer, pairs)
    return _FitPlan(x_buf, kernels, loss_kernel, step_kernel, sgd_steps)


def _compile_proba(trace, x_shape):
    """Compile a recorded inference trace into a :class:`_ProbaPlan`."""
    ops = trace.ops
    if not ops or ops[-1][0] != "softmax":
        raise PlanUnsupported("trace does not end in softmax")
    _, axis, sm_in, sm_out = ops[-1]
    if axis not in (-1, sm_in.data.ndim - 1):
        raise PlanUnsupported(f"softmax axis {axis}")
    if len(ops) == 1:
        raise PlanUnsupported("empty forward trace")
    x_buf, kernels, buf_of, _alias = _compile_forward(ops[:-1], x_shape)
    logits_buf = buf_of.get(id(sm_in))
    if logits_buf is None:
        raise PlanUnsupported("softmax input not produced by the plan")
    return _ProbaPlan(x_buf, kernels, _SoftmaxKernel(logits_buf, sm_out.data))


# -- per-model plan cache ----------------------------------------------------

_UNSUPPORTED = object()


class _PlanSet:
    """Small LRU of plans per model (one entry per signature)."""

    __slots__ = ("entries",)

    def __init__(self):
        self.entries: OrderedDict = OrderedDict()

    def get(self, key):
        entry = self.entries.get(key)
        if entry is not None:
            self.entries.move_to_end(key)
        return entry

    def put(self, key, value) -> None:
        self.entries[key] = value
        self.entries.move_to_end(key)
        while len(self.entries) > _PLAN_SET_CAP:
            self.entries.popitem(last=False)
            _notify("invalidate")

    def clear(self) -> int:
        count = len(self.entries)
        self.entries.clear()
        return count


def invalidate_plans(model) -> None:
    """Drop a model's cached plans (called on checkpoint restore)."""
    plans = getattr(model, "_plans", None)
    if plans is None:
        return
    for _ in range(plans.clear()):
        _notify("invalidate")


def _plan_set(model):
    plans = getattr(model, "_plans", None)
    if plans is None:
        if not model._plan_eligible():
            return None
        plans = _PlanSet()
        model._plans = plans
    return plans


def _model_rngs(module) -> list:
    return [m.rng for m in module.modules() if isinstance(m, Dropout)]


def _count_replay() -> None:
    with _STATS_LOCK:
        _STATS["replay"] += 1


# -- model-facing entry points ----------------------------------------------


def fit_with_plan(model, x, y):
    """Train ``model`` on ``(x, y)`` via a captured plan.

    Returns the loss, or ``None`` when the caller must run the reference
    path (ineligible model, empty batch, unsupported signature, or a
    capture already active on this thread).  ``y`` is the already
    validated int64 label vector from ``partial_fit``.
    """
    if _record.ACTIVE and _record.current() is not None:
        return None
    plans = _plan_set(model)
    if plans is None:
        return None
    n = len(x)
    if n == 0:
        return None
    xr = np.asarray(x, dtype=float)
    key = ("fit", n, xr.size // n, bool(model.module.training),
           model.sgd_steps)
    entry = plans.get(key)
    if entry is _UNSUPPORTED:
        return None
    if entry is None:
        return _capture_fit(model, plans, key, x, y)
    start = perf_counter() if _HOOKS else 0.0
    loss = entry.replay(xr.reshape(n, -1), y)
    if _HOOKS:
        _notify("replay", perf_counter() - start)
    else:
        _count_replay()
    return float(loss)


def _capture_fit(model, plans, key, x, y):
    """Trace + compile + verify; always advances state exactly once."""
    optimizer = model.optimizer
    rngs = _model_rngs(model.module)
    pre = _Snapshot(optimizer, rngs)
    trace = _record.Trace()
    start = perf_counter()
    with _record.capturing(trace):
        loss_ref = model._fit_steps(x, y)
    if not trace.ok:
        plans.put(key, _UNSUPPORTED)
        _notify("unsupported")
        return loss_ref
    post = _Snapshot(optimizer, rngs)
    xr = np.asarray(x, dtype=float).reshape(len(x), -1)
    try:
        plan = _compile_fit(trace, optimizer, model.sgd_steps, xr.shape,
                            stacked=False)
    except Exception:  # repro: noqa[REP004] — any compile failure means fall back, not crash training
        plans.put(key, _UNSUPPORTED)
        _notify("unsupported")
        return loss_ref
    # Trial replay from the pre-capture state: it must land bit-for-bit
    # on the reference run's post state before the plan may be cached.
    pre.restore()
    loss_plan = None
    try:
        loss_plan = plan.replay(xr, y)
    except Exception:  # repro: noqa[REP004] — trial replay failure → plan rejected below
        pass
    now = _Snapshot(optimizer, rngs)
    if (loss_plan is None or not now.matches(post)
            or np.float64(loss_plan).tobytes()
            != np.float64(loss_ref).tobytes()):
        post.restore()
        plans.put(key, _UNSUPPORTED)
        _notify("unsupported")
        return loss_ref
    plans.put(key, plan)
    _notify("capture", perf_counter() - start)
    return float(loss_plan)


def proba_with_plan(model, x):
    """Class probabilities via a captured plan; ``None`` → reference path."""
    if _record.ACTIVE and _record.current() is not None:
        return None
    plans = _plan_set(model)
    if plans is None:
        return None
    n = len(x)
    if n == 0:
        return None
    xr = np.asarray(x, dtype=float)
    key = ("proba", n, xr.size // n)
    entry = plans.get(key)
    if entry is _UNSUPPORTED:
        return None
    if entry is None:
        return _capture_proba(model, plans, key, x)
    start = perf_counter() if _HOOKS else 0.0
    result = entry.replay(xr.reshape(n, -1))
    # The reference path leaves the module in train mode unconditionally.
    model.module.train()
    if _HOOKS:
        _notify("replay", perf_counter() - start)
    else:
        _count_replay()
    return result


def _capture_proba(model, plans, key, x):
    trace = _record.Trace()
    start = perf_counter()
    with _record.capturing(trace):
        out_ref = model._forward_proba(x)
    if not trace.ok:
        plans.put(key, _UNSUPPORTED)
        _notify("unsupported")
        return out_ref
    xr = np.asarray(x, dtype=float).reshape(len(x), -1)
    out_plan = None
    try:
        plan = _compile_proba(trace, xr.shape)
        out_plan = plan.replay(xr)
        model.module.train()
    except Exception:  # repro: noqa[REP004] — compile/replay failure → plan rejected below
        pass
    if (out_plan is None or out_plan.shape != out_ref.shape
            or out_plan.tobytes() != out_ref.tobytes()):
        plans.put(key, _UNSUPPORTED)
        _notify("unsupported")
        return out_ref
    plans.put(key, plan)
    _notify("capture", perf_counter() - start)
    return out_plan


# -- stacked (multi-tenant) plans --------------------------------------------

_STACKED_PLANS: OrderedDict = OrderedDict()
_STACKED_LOCK = threading.Lock()


def clear_stacked_plans() -> None:
    """Drop every cached stacked plan (tests, config resets)."""
    with _STACKED_LOCK:
        count = len(_STACKED_PLANS)
        _STACKED_PLANS.clear()
    for _ in range(count):
        _notify("invalidate")


def _put_stacked(key, value) -> None:
    evicted = 0
    with _STACKED_LOCK:
        _STACKED_PLANS[key] = value
        _STACKED_PLANS.move_to_end(key)
        while len(_STACKED_PLANS) > _STACKED_CAP:
            _STACKED_PLANS.popitem(last=False)
            evicted += 1
    for _ in range(evicted):
        _notify("invalidate")


def stacked_fit_with_plan(stack, optimizer, xs, ys, sgd_steps, reference):
    """``stacked_fit`` through the plan cache; ``None`` → reference path.

    ``xs``/``ys`` arrive already reshaped to ``(models, batch, features)``
    / ``(models, batch)``; ``reference`` is the uncaptured step loop,
    passed in to keep this module import-cycle-free.  The cache is
    global and keyed by architecture + shapes, so the serving layer's
    per-round stack rebuilds hit the same plan via :meth:`_FitPlan.bind`.
    """
    if _record.ACTIVE and _record.current() is not None:
        return None
    kind = "adam" if isinstance(optimizer, Adam) else "sgd"
    key = (stack.key, stack.num_models, xs.shape, sgd_steps, kind,
           bool(stack.training))
    with _STACKED_LOCK:
        entry = _STACKED_PLANS.get(key)
        if entry is not None:
            _STACKED_PLANS.move_to_end(key)
    if entry is _UNSUPPORTED:
        return None
    if entry is None:
        return _capture_stacked(stack, optimizer, key, xs, ys, sgd_steps,
                                reference)
    if not entry._lock.acquire(blocking=False):
        return None  # another thread owns these buffers right now
    try:
        entry.bind(stack, optimizer)
        start = perf_counter() if _HOOKS else 0.0
        losses = entry.replay(xs, ys)
        if _HOOKS:
            _notify("replay", perf_counter() - start)
        else:
            _count_replay()
        return losses.copy()
    finally:
        entry._lock.release()


def _capture_stacked(stack, optimizer, key, xs, ys, sgd_steps, reference):
    rngs = [layer.rng for op in stack._plan if op[0] == "dropout"
            for layer in op[2]]
    pre = _Snapshot(optimizer, rngs)
    trace = _record.Trace()
    start = perf_counter()
    with _record.capturing(trace):
        losses_ref = reference(stack, optimizer, xs, ys, sgd_steps)
    if not trace.ok:
        _put_stacked(key, _UNSUPPORTED)
        _notify("unsupported")
        return losses_ref
    post = _Snapshot(optimizer, rngs)
    try:
        plan = _compile_fit(trace, optimizer, sgd_steps, xs.shape,
                            stacked=True)
    except Exception:  # repro: noqa[REP004] — any compile failure means fall back, not crash training
        _put_stacked(key, _UNSUPPORTED)
        _notify("unsupported")
        return losses_ref
    pre.restore()
    losses_plan = None
    try:
        losses_plan = plan.replay(xs, ys)
    except Exception:  # repro: noqa[REP004] — trial replay failure → plan rejected below
        pass
    now = _Snapshot(optimizer, rngs)
    if (losses_plan is None or not now.matches(post)
            or losses_plan.tobytes() != losses_ref.tobytes()):
        post.restore()
        _put_stacked(key, _UNSUPPORTED)
        _notify("unsupported")
        return losses_ref
    _put_stacked(key, plan)
    _notify("capture", perf_counter() - start)
    return losses_plan.copy()
