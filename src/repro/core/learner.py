"""The FreewayML ``Learner`` (paper Section V, Figure 8).

Ties the whole pipeline together: the pattern classifier assesses each
batch's shift, the strategy selector picks exactly one mechanism for
inference (multi-granularity ensemble, coherent experience clustering, or
historical knowledge reuse), and every labeled batch updates the
multi-granularity models, feeds the experience buffer, and — at each ASW
completion — preserves knowledge gated by window disorder.

The paper's constructor reads::

    SML = Learner(Model=model, ModelNum=2, MiniBatch=1024,
                  KdgBuffer=20, ExpBuffer=10, alpha=1.96)

:meth:`Learner.from_paper_config` maps those names onto the native
snake_case parameters; the native constructor uses explicit keyword-only
Python parameters.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, replace

import numpy as np

from ..analysis.checkpoint import CheckpointIncompatibleError
from ..api import BaseReport
from ..data.stream import Batch
from ..models.base import StreamingModel
from ..nn import plan as _nn_plan
from ..perf.pool import POOL
from ..obs import (
    NULL_OBS,
    CircuitOpened,
    DegradedMode,
    KnowledgeReused,
    Observability,
    ShiftAssessed,
    StrategySelected,
)
from ..resilience.degrade import CircuitBreaker
from ..shift.patterns import PatternClassifier, ShiftAssessment, ShiftPattern
from ..shift.severity import SeverityTracker
from .cec import CoherentExperienceClustering, ExperienceBuffer
from .knowledge import KnowledgeStore
from .multigranularity import MultiGranularityEnsemble
from .rate import RateAwareAdjuster
from .selector import Strategy, StrategyDecision, StrategySelector

__all__ = ["Learner", "PredictionResult", "BatchReport"]

_UNSET = object()  # sentinel distinguishing "not passed" from None


class _NullStage:
    """Zero-cost stand-in for :meth:`HotPathProfiler.stage` when profiling
    is off — entering/exiting does nothing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_STAGE = _NullStage()


@dataclass
class PredictionResult:
    """Inference output plus the routing decision that produced it."""

    labels: np.ndarray
    proba: np.ndarray
    decision: StrategyDecision
    assessment: ShiftAssessment
    reused_batch: int | None = None  # knowledge origin, if reuse fired


@dataclass(kw_only=True)
class BatchReport(BaseReport):
    """Per-batch record emitted by :meth:`Learner.process`.

    Extends :class:`~repro.api.BaseReport` (``batch_index``, ``num_items``,
    ``strategy``, ``accuracy``, ``latency_s``) with the single-learner
    pipeline detail; ``latency_s`` defaults to predict + update time.
    """

    kind = "batch"

    pattern: str = "unknown"
    fallback: bool = False
    loss: float | None = None
    predict_seconds: float = 0.0
    update_seconds: float = 0.0
    reused_batch: int | None = None
    skipped_inference: bool = False

    def __post_init__(self):
        if not self.latency_s:
            self.latency_s = self.predict_seconds + self.update_seconds


class Learner:
    """Adaptive, stable streaming learner — the FreewayML public API.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.models.base.StreamingModel`; one copy is created per
        granularity level (they must share an architecture so checkpoints
        are interchangeable).
    num_models:
        Number of granularity levels (the paper's ``ModelNum``); sizes
        follow the ladder ``1, window_batches, 4*window_batches, ...``.
    window_batches:
        ASW capacity (in batches) of the first long-granularity level.
    alpha:
        Severity threshold for the pattern classifier (paper default 1.96).
    beta:
        Disorder threshold gating knowledge preservation.
    knowledge_capacity:
        ``KdgBuffer`` — max knowledge entries held in memory.
    experience_expiration:
        ``ExpBuffer`` — labeled experience older than this many batches
        expires.
    experience_per_batch / experience_capacity / cec_points:
        Experience-buffer sizing and the ``m`` points mixed into each CEC
        call.
    featurizer:
        Optional frozen encoder (images → features).  The paper's appendix
        uses it in front of coherent experience clustering; here it also
        feeds the shift PCA, so detection, knowledge matching, and window
        embeddings all live in feature space rather than pixel space —
        raw-pixel embeddings make distribution matching unreliable.
    warm_start_on_reuse:
        When knowledge reuse fires, also load the matched parameters into
        the short-granularity model so training continues from the
        restored state (this is what makes reuse pay off beyond the single
        batch).
    warmup_points:
        Points before the shift PCA fits; the default fits on the first
        batch so every embedding lives in one space.
    use_confidence_channel:
        The paper's detector is purely distribution-based (Eqs. 2–10) and
        therefore blind to *concept-only* drift, where ``P(x)`` is constant
        but ``P(y|x)`` changes (Hyperplane, SEA).  This label-free channel
        tracks the short model's predictive confidence and escalates a
        slight-looking batch to a sudden shift when confidence craters
        (z-score above ``alpha``).  Documented deviation — disable to get
        the paper's literal detector.
    use_precompute:
        Enable the pre-computing window (paper Section V-B): long-level
        batch gradients are banked on arrival so the window-completion
        update only aggregates, minimizing completion latency at the cost
        of the multi-epoch decayed-window training.
    adjuster:
        Optional :class:`~repro.core.rate.RateAwareAdjuster`; absent means
        never throttle.
    degrade:
        Graceful degradation: a mechanism that raises during inference or
        training downgrades along the fixed fallback chain (knowledge
        reuse → CEC → multi-granularity → short model) with a
        :class:`~repro.obs.DegradedMode` event instead of propagating,
        and non-finite input features are sanitized on entry.  A
        per-mechanism :class:`~repro.resilience.CircuitBreaker` stops
        retrying a mechanism after ``breaker_threshold`` consecutive
        failures until ``breaker_cooldown`` batches elapse.  Off by
        default: fail-fast is the right posture for development.
    breaker_threshold / breaker_cooldown:
        Circuit-breaker tuning (only meaningful with ``degrade=True``).
    spill_dir:
        Directory for knowledge spilled out of memory.
    seed:
        Seeds window subsampling and clustering.
    obs:
        Optional :class:`~repro.obs.Observability` facade threaded through
        every component: prediction and update run inside spans, routing
        decisions emit :class:`~repro.obs.ShiftAssessed` /
        :class:`~repro.obs.StrategySelected` /
        :class:`~repro.obs.KnowledgeReused` events, and the registry
        accumulates per-strategy latency histograms.  The default is the
        shared disabled facade, whose cost on the hot path is one attribute
        check per instrumentation site.
    profiler:
        Optional :class:`~repro.perf.HotPathProfiler`.  When set, the
        serving loop's stages (``assess``, ``select``, ``infer``,
        ``train``, ``experience``, ``preserve``) are timed individually;
        ``python -m repro run --profile`` prints the breakdown, and with
        an enabled ``obs`` each sample also feeds the
        ``freeway_hot_path_seconds{stage}`` histogram.  ``None`` (the
        default) costs one attribute check per stage.
    """

    def __init__(self, model_factory, *, num_models: int = 2,
                 window_batches: int = 8, alpha: float = 1.96,
                 beta: float = 0.35, knowledge_capacity: int = 20,
                 experience_expiration: int = 10,
                 experience_per_batch: int = 128,
                 experience_capacity: int = 2048, cec_points: int = 64,
                 featurizer=None, warm_start_on_reuse: bool = True,
                 warmup_points: int = 2, pca_components: int = 2,
                 representation: str = "mean",
                 use_confidence_channel: bool = True,
                 confidence_margin: float = 0.25,
                 use_precompute: bool = False,
                 adjuster: RateAwareAdjuster | None = None,
                 degrade: bool = False, breaker_threshold: int = 3,
                 breaker_cooldown: int = 10,
                 spill_dir=None, seed: int = 0,
                 obs: Observability | None = None,
                 profiler=None):
        if num_models < 1:
            raise ValueError(f"num_models must be >= 1; got {num_models}")
        template = model_factory()
        if not isinstance(template, StreamingModel):
            raise TypeError(
                f"model_factory must produce a StreamingModel; got "
                f"{type(template).__name__}"
            )
        self.num_classes = template.num_classes
        self.obs = obs if obs is not None else NULL_OBS
        self.profiler = profiler
        if profiler is not None:
            # Plan-cache events (capture/replay spans, the
            # freeway_plan_cache counter) flow through the profiler for
            # the lifetime of this learner; close() unhooks.
            _nn_plan.add_plan_hook(profiler.observe_plan_event)

        sizes = [1] + [window_batches * (4 ** i) for i in range(num_models - 1)]
        self.ensemble = MultiGranularityEnsemble(
            model_factory, window_sizes=tuple(sizes),
            precompute=use_precompute, seed=seed, obs=self.obs,
        )
        self.classifier = PatternClassifier(
            alpha=alpha, num_components=pca_components,
            warmup_points=warmup_points, representation=representation,
            obs=self.obs,
        )
        self.selector = StrategySelector(obs=self.obs)
        self.experience = ExperienceBuffer(
            capacity=experience_capacity, per_batch=experience_per_batch,
            expiration=experience_expiration,
        )
        self.cec = CoherentExperienceClustering(
            self.num_classes, experience_points=cec_points,
            featurizer=featurizer, seed=seed, obs=self.obs,
        )
        self.knowledge = KnowledgeStore(capacity=knowledge_capacity,
                                        beta=beta, spill_dir=spill_dir,
                                        obs=self.obs)
        self.adjuster = adjuster
        self.degrade = bool(degrade)
        # Remembered so set_degrade(True) can build the breaker lazily
        # (pre-emptive degrade from the SLO engine mid-run).
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self.breaker = (CircuitBreaker(threshold=breaker_threshold,
                                       cooldown=breaker_cooldown)
                        if degrade else None)
        self.featurizer = featurizer
        self.warm_start_on_reuse = warm_start_on_reuse
        self.use_confidence_channel = use_confidence_channel
        self.confidence_margin = confidence_margin
        self.alpha = alpha
        self._confidence = SeverityTracker(window=20, decay=0.9)
        self._errors = SeverityTracker(window=20, decay=0.9)
        self._concept_alert = False
        self._pending_reuse = None
        self._scratch = model_factory()  # restoration target for reuse
        self._batch_counter = 0
        self._processed = 0
        self._strategy_counts: Counter = Counter()
        self._current_index: int | None = None  # stream position, if known

    # -- constructor matching the paper's interface ------------------------------

    @classmethod
    def from_paper_config(cls, model=_UNSET, *, num_models=_UNSET,
                          mini_batch=_UNSET, knowledge_capacity=_UNSET,
                          experience_expiration=_UNSET, alpha: float = 1.96,
                          **kwargs) -> "Learner":
        """Construct from the paper's configuration.

        ``model`` is a template :class:`StreamingModel` (cloned per level)
        or a factory.  ``mini_batch`` is accepted for interface fidelity;
        batch size is determined by the stream itself.  Parameter names are
        the canonical snake_case spellings — the paper's CamelCase aliases
        (``Model``, ``ModelNum``, ...) were removed after their one-release
        deprecation window and now raise :class:`TypeError` like any other
        unknown keyword.
        """
        canonical = {
            "model": model,
            "num_models": num_models,
            "mini_batch": mini_batch,
            "knowledge_capacity": knowledge_capacity,
            "experience_expiration": experience_expiration,
        }
        defaults = {"num_models": 2, "mini_batch": 1024,
                    "knowledge_capacity": 20, "experience_expiration": 10}
        for name, value in defaults.items():
            if canonical[name] is _UNSET:
                canonical[name] = value
        if canonical["model"] is _UNSET:
            raise TypeError(
                "from_paper_config requires a model (a StreamingModel "
                "template or a factory)"
            )
        template = canonical["model"]
        if isinstance(template, StreamingModel):
            factory = template.clone
        else:
            factory = template
        return cls(factory, num_models=canonical["num_models"],
                   knowledge_capacity=canonical["knowledge_capacity"],
                   experience_expiration=canonical["experience_expiration"],
                   alpha=alpha, **kwargs)

    # -- inference ----------------------------------------------------------------

    def _stage(self, name: str):
        """Profiler span for one hot-path stage (no-op without a profiler)."""
        profiler = self.profiler
        return _NULL_STAGE if profiler is None else profiler.stage(name)

    def predict(self, x: np.ndarray) -> PredictionResult:
        """Classify the shift, select one strategy, and answer with it."""
        with self.obs.tracer.span("learner.predict",
                                  batch=self._event_index()) as span:
            # A reuse match is only valid for the batch it was found on; drop
            # any leftover from a predict whose labels never arrived.
            self._pending_reuse = None
            if self.degrade:
                x = self._sanitize_input(x)
            with self._stage("assess"):
                assessment = self.classifier.assess(self._shift_view(x))
                raw_pattern = assessment.pattern
                assessment = self._apply_confidence_channel(x, assessment)
            with self._stage("select"):
                decision = self.selector.select(
                    assessment,
                    knowledge_available=len(self.knowledge) > 0,
                    experience_available=len(self.experience) > 0,
                    ensemble_trained=self.ensemble.trained,
                )
            with self._stage("infer"):
                if self.degrade:
                    result, decision = self._dispatch_degraded(
                        x, assessment, decision
                    )
                else:
                    result, decision = self._dispatch(x, assessment, decision)
            span.set(strategy=decision.strategy.value,
                     pattern=assessment.pattern.value)
        if self.obs.enabled:
            self._emit_routing_events(assessment, decision, raw_pattern)
        return result

    def _dispatch(self, x, assessment, decision):
        """Route one inference through the selected mechanism (fail-fast)."""
        result = None
        if decision.strategy is Strategy.KNOWLEDGE_REUSE:
            with self.obs.tracer.span("learner.infer.knowledge"):
                outcome = self._predict_with_knowledge(
                    x, assessment, decision
                )
            if isinstance(outcome, PredictionResult):
                result = outcome
            else:
                decision = self._downgrade_reuse(assessment, reason=outcome)
        if result is None:
            if decision.strategy is Strategy.CEC:
                result = self._predict_with_cec(x, assessment, decision)
            else:
                with self.obs.tracer.span("learner.infer.ensemble"):
                    result = self._predict_with_ensemble(
                        x, assessment, decision
                    )
        return result, decision

    # -- graceful degradation -------------------------------------------------

    def _sanitize_input(self, x: np.ndarray) -> np.ndarray:
        """Replace non-finite feature cells with zeros (degrade mode only).

        :class:`~repro.data.stream.Batch` rejects non-finite features, but
        a dirty upstream producer (or the :class:`~repro.resilience.faults.
        DirtyData` injector) can still smuggle them in; in degrade mode
        they are absorbed here rather than poisoning every mechanism.
        """
        x = np.asarray(x)
        if np.isfinite(x).all():
            return x
        dirty_cells = int(x.size - np.isfinite(x).sum())
        clean = np.nan_to_num(np.asarray(x, dtype=float),
                              nan=0.0, posinf=0.0, neginf=0.0)
        if self.obs.enabled:
            self.obs.emit(DegradedMode(
                batch=self._event_index(), mechanism="input",
                fallback="sanitize",
                reason=f"{dirty_cells} non-finite feature cells",
            ))
            self.obs.registry.counter(
                "freeway_degraded_total",
                "failures absorbed by graceful degradation",
            ).labels(mechanism="input").inc()
        return clean

    def _mechanism_failed(self, mechanism: str, exc: Exception,
                          fallback: str) -> None:
        """Record one mechanism failure: breaker count + DegradedMode."""
        opened = self.breaker.record_failure(mechanism)
        if self.obs.enabled:
            self.obs.emit(DegradedMode(
                batch=self._event_index(), mechanism=mechanism,
                fallback=fallback,
                reason=f"{type(exc).__name__}: {exc}",
            ))
            self.obs.registry.counter(
                "freeway_degraded_total",
                "failures absorbed by graceful degradation",
            ).labels(mechanism=mechanism).inc()
            if opened:
                self.obs.emit(CircuitOpened(
                    mechanism=mechanism, failures=self.breaker.threshold,
                    cooldown=self.breaker.cooldown,
                ))

    def _dispatch_degraded(self, x, assessment, decision):
        """Route one inference with every mechanism guarded.

        The fallback chain is fixed: knowledge reuse → CEC →
        multi-granularity ensemble → sanitized short model → uniform.  A
        mechanism that raises (or whose circuit is open) downgrades to the
        next link with ``fallback=True``; nothing propagates.
        """
        self.breaker.tick()
        if decision.strategy is Strategy.KNOWLEDGE_REUSE:
            if not self.breaker.allow("knowledge_reuse"):
                decision = self._downgrade_reuse(
                    assessment, reason="knowledge_reuse circuit open"
                )
            else:
                try:
                    with self.obs.tracer.span("learner.infer.knowledge"):
                        outcome = self._predict_with_knowledge(
                            x, assessment, decision
                        )
                except Exception as exc:  # repro: noqa[REP004] — degraded
                    self._pending_reuse = None
                    self._mechanism_failed("knowledge_reuse", exc,
                                           fallback="cec")
                    decision = self._downgrade_reuse(
                        assessment,
                        reason=f"knowledge_reuse raised "
                               f"{type(exc).__name__}",
                    )
                else:
                    if isinstance(outcome, PredictionResult):
                        self.breaker.record_success("knowledge_reuse")
                        return outcome, decision
                    decision = self._downgrade_reuse(assessment,
                                                     reason=outcome)
        if decision.strategy is Strategy.CEC:
            if not self.breaker.allow("cec"):
                decision = StrategyDecision(
                    Strategy.MULTI_GRANULARITY, assessment.pattern,
                    fallback=True, reason="cec circuit open",
                )
            else:
                try:
                    result = self._predict_with_cec(x, assessment, decision)
                except Exception as exc:  # repro: noqa[REP004] — degraded
                    self._mechanism_failed("cec", exc,
                                           fallback="multi_granularity")
                    decision = StrategyDecision(
                        Strategy.MULTI_GRANULARITY, assessment.pattern,
                        fallback=True,
                        reason=f"cec raised {type(exc).__name__}",
                    )
                else:
                    self.breaker.record_success("cec")
                    return result, decision
        if not self.breaker.allow("multi_granularity"):
            decision = StrategyDecision(
                Strategy.MULTI_GRANULARITY, assessment.pattern,
                fallback=True, reason="multi_granularity circuit open",
            )
            return self._predict_with_short(x, assessment, decision), decision
        try:
            with self.obs.tracer.span("learner.infer.ensemble"):
                result = self._predict_with_ensemble(x, assessment, decision)
        except Exception as exc:  # repro: noqa[REP004] — degraded
            self._mechanism_failed("multi_granularity", exc,
                                   fallback="short_model")
            decision = StrategyDecision(
                Strategy.MULTI_GRANULARITY, assessment.pattern,
                fallback=True,
                reason=f"multi_granularity raised {type(exc).__name__}",
            )
            result = self._predict_with_short(x, assessment, decision)
        else:
            self.breaker.record_success("multi_granularity")
        return result, decision

    def _predict_with_short(self, x, assessment, decision) -> PredictionResult:
        """Last link of the fallback chain: sanitized short model, then a
        uniform distribution — this method cannot raise."""
        uniform = 1.0 / self.num_classes
        try:
            short = self.ensemble.short_level
            clean = np.nan_to_num(np.asarray(x, dtype=float))
            if not short.trained:
                raise RuntimeError("short model untrained")
            proba = short.model.predict_proba(clean)
        except Exception:  # repro: noqa[REP004] — uniform is the floor
            proba = np.full((len(x), self.num_classes), uniform)
        proba = np.nan_to_num(np.asarray(proba, dtype=float), nan=uniform)
        return PredictionResult(labels=proba.argmax(axis=1), proba=proba,
                                decision=decision, assessment=assessment)

    def _event_index(self) -> int:
        """Stream position for emitted events: the index of the batch being
        processed when known, the update counter for standalone calls."""
        if self._current_index is not None:
            return self._current_index
        return self._batch_counter

    def _emit_routing_events(self, assessment: ShiftAssessment,
                             decision: StrategyDecision,
                             raw_pattern: ShiftPattern) -> None:
        index = self._event_index()
        self.obs.emit(ShiftAssessed(
            batch=index,
            pattern=assessment.pattern.value,
            distance=assessment.distance,
            severity=assessment.severity,
            historical_distance=assessment.historical_distance,
            escalated=assessment.pattern is not raw_pattern,
        ))
        self.obs.emit(StrategySelected(
            batch=index,
            strategy=decision.strategy.value,
            pattern=decision.pattern.value,
            fallback=decision.fallback,
            reason=decision.reason,
        ))

    def _shift_view(self, x: np.ndarray) -> np.ndarray:
        """The representation shift analysis runs on (features if a frozen
        encoder is configured, raw inputs otherwise)."""
        if self.featurizer is None:
            return x
        return self.featurizer(np.asarray(x))

    def _apply_confidence_channel(self, x, assessment: ShiftAssessment
                                  ) -> ShiftAssessment:
        """Escalate to SUDDEN when model confidence craters (concept drift).

        Label-free: uses only the short model's mean top-class probability.
        See the constructor docstring for why this exists.
        """
        if not self.use_confidence_channel:
            return assessment
        short = self.ensemble.short_level
        if not short.trained:
            return assessment
        # The error channel (see update()) raised a standing alert: the
        # resident model is cratering on labeled batches, so treat the
        # stream as mid-sudden-shift until it recovers.
        if (self._concept_alert
                and assessment.pattern is ShiftPattern.SLIGHT):
            return replace(assessment, pattern=ShiftPattern.SUDDEN)
        deficit = 1.0 - float(short.model.predict_proba(x).max(axis=1).mean())
        z_score = self._confidence.score(deficit)
        jump = (deficit - self._confidence.weighted_mean()
                if self._confidence.ready else 0.0)
        self._confidence.observe(deficit)
        # Escalate only on a *cratering* drop: statistically extreme AND a
        # large absolute move.  Gradual drift produces small dips that the
        # ensemble handles better than clustering would.
        if (z_score is not None and z_score > self.alpha
                and jump > self.confidence_margin
                and assessment.pattern is ShiftPattern.SLIGHT):
            return replace(assessment, pattern=ShiftPattern.SUDDEN,
                           severity=z_score)
        return assessment

    def _predict_with_ensemble(self, x, assessment, decision) -> PredictionResult:
        if assessment.embedding is not None and self.ensemble.trained:
            proba = self.ensemble.predict_proba(x, assessment.embedding)
        elif self.ensemble.trained:
            proba = self.ensemble.short_level.model.predict_proba(x)
        else:
            proba = np.full((len(x), self.num_classes), 1.0 / self.num_classes)
        return PredictionResult(labels=proba.argmax(axis=1), proba=proba,
                                decision=decision, assessment=assessment)

    def _predict_with_cec(self, x, assessment, decision) -> PredictionResult:
        result = self.cec.predict(x, self.experience,
                                  batch=self._event_index())
        return PredictionResult(labels=result.labels, proba=result.proba,
                                decision=decision, assessment=assessment)

    def _predict_with_knowledge(self, x, assessment, decision):
        # A genuine reoccurrence lands *within* a previously seen
        # distribution, so the match distance must look like an ordinary
        # slight shift — not merely be smaller than an outlier d_t.
        ceiling = assessment.distance
        severity = self.classifier.severity
        if severity.ready:
            slight_scale = severity.weighted_mean() + severity.std()
            ceiling = min(ceiling, slight_scale) if ceiling is not None else slight_scale
        match = self.knowledge.match(assessment.embedding,
                                     current_shift=ceiling)
        if match is None:
            return "no knowledge match"
        try:
            self.knowledge.restore(match.entry, self._scratch)
        except CheckpointIncompatibleError:
            # The store already emitted CheckpointRejected; the severe
            # shift falls through to CEC / the ensemble.
            return "incompatible knowledge"
        proba = self._scratch.predict_proba(x)
        # Warm-starting the resident models from this match is decided at
        # update time, when the batch's labels arrive and the matched
        # knowledge can be *verified* against the resident model — see
        # update().  Prediction itself trusts the distance match, as the
        # paper specifies.
        if self.warm_start_on_reuse:
            self._pending_reuse = match
        if self.obs.enabled:
            self.obs.emit(KnowledgeReused(
                batch=self._event_index(),
                origin_batch=match.entry.batch_index,
                match_distance=match.distance,
                model_kind=match.entry.model_kind,
            ))
            self.obs.registry.counter(
                "freeway_knowledge_reused_total",
                "batches answered from preserved knowledge",
            ).inc()
        return PredictionResult(labels=proba.argmax(axis=1), proba=proba,
                                decision=decision, assessment=assessment,
                                reused_batch=match.entry.batch_index)

    def _downgrade_reuse(self, assessment, reason: str) -> StrategyDecision:
        """No stored distribution matched — the severe shift is genuinely
        unfamiliar, so CEC is the next refuge (ensemble if no experience)."""
        if not len(self.experience):
            return StrategyDecision(Strategy.MULTI_GRANULARITY,
                                    assessment.pattern, fallback=True,
                                    reason=reason)
        return StrategyDecision(Strategy.CEC, assessment.pattern,
                                fallback=True, reason=reason)

    # -- training -------------------------------------------------------------------

    def update(self, x: np.ndarray, y: np.ndarray,
               embedding: np.ndarray | None = None) -> float | None:
        """Incrementally train on a labeled batch (the training stream).

        Returns the short-granularity training loss.  ``embedding`` can be
        supplied when the caller already assessed this batch (avoiding a
        second PCA projection); otherwise it is computed here.
        """
        with self.obs.tracer.span("learner.update",
                                  batch=self._event_index()):
            if self.degrade:
                x = self._sanitize_input(x)
            if embedding is None:
                view = self._shift_view(x)
                if not self.classifier.pca.is_fitted:
                    self.classifier.pca.observe(view)
                if self.classifier.pca.is_fitted:
                    embedding = self.classifier.pca.batch_embedding(view)
                else:  # still warming up: use the raw projected-less mean
                    embedding = np.asarray(view, dtype=float).reshape(
                        len(view), -1).mean(axis=0)

            self._verify_pending_reuse(x, y)
            self._observe_errors(x, y)
            with self._stage("train"):
                if self.degrade:
                    infos = self._update_degraded(x, y, embedding)
                else:
                    infos = self.ensemble.update(x, y, embedding)
            with self._stage("experience"):
                self.experience.add(x, y)
            self._batch_counter += 1
            if infos is None:  # degraded update skipped training
                return None
            with self._stage("preserve"):
                self._maybe_preserve(infos, embedding)
            short_info = infos[self._short_index()]
            return short_info.get("loss")

    def _update_degraded(self, x, y, embedding):
        """ASW training guarded by the breaker: ``None`` means skipped."""
        if not self.breaker.allow("asw_train"):
            return None
        try:
            infos = self.ensemble.update(x, y, embedding)
        except Exception as exc:  # repro: noqa[REP004] — degraded
            self._mechanism_failed("asw_train", exc, fallback="skip_update")
            return None
        self.breaker.record_success("asw_train")
        return infos

    def _verify_pending_reuse(self, x: np.ndarray, y: np.ndarray) -> None:
        """Labeled verification of a knowledge match (prequential labels
        arrive at training time).

        The matched parameters replace every granularity level only when
        they actually outperform the resident short model on this batch —
        this is what lets reuse pay off after a genuine reoccurrence while
        a spurious distance match (possible on streams whose feature
        shifts are pure noise) cannot poison the resident models.
        """
        match, self._pending_reuse = self._pending_reuse, None
        if match is None:
            return
        try:
            self.knowledge.restore(match.entry, self._scratch)
        except CheckpointIncompatibleError:
            return  # blocked restore: leave the resident models untouched
        scratch_accuracy = float((self._scratch.predict(x) == y).mean())
        resident = self.ensemble.short_level
        resident_accuracy = (
            float((resident.model.predict(x) == y).mean())
            if resident.trained else 0.0
        )
        if scratch_accuracy > resident_accuracy:
            for level in self.ensemble.levels:
                level.model.load_state_dict(match.entry.state)

    def _observe_errors(self, x: np.ndarray, y: np.ndarray) -> None:
        """Labeled error channel: raise/clear the concept-drift alert.

        The distribution detector (Eqs. 2–10) cannot see concept-only
        drift (``P(x)`` constant, ``P(y|x)`` changed).  The resident short
        model's error rate on each labeled batch can: a statistically
        extreme error spike raises a standing alert that escalates
        subsequent slight-looking batches to sudden (routing them to CEC)
        until the error normalizes.  Documented deviation from the paper's
        purely distribution-based detector.
        """
        if not self.use_confidence_channel:
            return
        short = self.ensemble.short_level
        if not short.trained:
            return
        error = float((short.model.predict(x) != y).mean())
        if self._concept_alert:
            if (self._errors.ready and error
                    <= self._errors.weighted_mean() + self.confidence_margin):
                self._concept_alert = False
                self._errors.observe(error)
            return  # error still elevated: keep the alert, don't pollute stats
        z_score = self._errors.score(error)
        jump = (error - self._errors.weighted_mean()
                if self._errors.ready else 0.0)
        if (z_score is not None and z_score > self.alpha
                and jump > self.confidence_margin):
            self._concept_alert = True
        else:
            self._errors.observe(error)

    def _short_index(self) -> int:
        return next(
            index for index, level in enumerate(self.ensemble.levels)
            if level.is_short
        )

    def _maybe_preserve(self, infos: list[dict], embedding: np.ndarray) -> None:
        """Disorder-gated knowledge preservation at each ASW completion."""
        short_level = self.ensemble.short_level
        for level, info in zip(self.ensemble.levels, infos):
            if level.is_short or not info.get("trained"):
                continue
            disorder = info.get("disorder", 0.0)
            long_embedding = level.reference_embedding()
            self.knowledge.preserve_at_window_end(
                disorder=disorder,
                long_embedding=(long_embedding if long_embedding is not None
                                else embedding),
                long_state=level.model.state_dict(),
                short_embedding=embedding,
                short_state=(short_level.model.state_dict()
                             if short_level.trained else None),
                batch_index=self._batch_counter,
            )

    # -- the prequential pipeline -----------------------------------------------------

    def process(self, batch: Batch) -> BatchReport:
        """Prequential step: predict on the batch, then learn from it.

        Unlabeled batches are inference-only.  When a rate adjuster is
        installed and throttling, inference is skipped for strided batches
        (``skipped_inference=True`` in the report).
        """
        window_pressure = 0.0
        long_levels = self.ensemble.long_levels
        if long_levels and long_levels[0].window is not None:
            window = long_levels[0].window
            # +1 accounts for the incoming batch: a window that resets at
            # fullness otherwise never *shows* pressure 1.0.
            window_pressure = min(
                (window.num_batches + 1) / window.max_batches, 1.0
            )
        if self.adjuster is not None:
            self.adjuster.observe(len(batch), window_pressure)
            for level in long_levels:
                if level.window is not None:
                    level.window.decay_boost = self.adjuster.decay_boost
            if not self.adjuster.should_infer(batch.index):
                return self._update_only(batch)

        self._current_index = batch.index
        try:
            if self.degrade and not np.isfinite(batch.x).all():
                # Sanitize once for the whole prequential step, so predict
                # and update see the same repaired features (and only one
                # DegradedMode event is emitted per dirty batch).
                batch = Batch(self._sanitize_input(batch.x), batch.y,
                              index=batch.index, pattern=batch.pattern)
            start = time.perf_counter()
            prediction = self.predict(batch.x)
            predict_seconds = time.perf_counter() - start

            accuracy = None
            if batch.labeled:
                accuracy = float((prediction.labels == batch.y).mean())

            loss = None
            update_seconds = 0.0
            if batch.labeled:
                start = time.perf_counter()
                loss = self.update(batch.x, batch.y,
                                   embedding=prediction.assessment.embedding)
                update_seconds = time.perf_counter() - start
        finally:
            self._current_index = None

        report = BatchReport(
            batch_index=batch.index,
            num_items=len(batch),
            pattern=prediction.assessment.pattern.value,
            strategy=prediction.decision.strategy.value,
            fallback=prediction.decision.fallback,
            accuracy=accuracy,
            loss=loss,
            predict_seconds=predict_seconds,
            update_seconds=update_seconds,
            reused_batch=prediction.reused_batch,
        )
        self._processed += 1
        self._strategy_counts[report.strategy] += 1
        if self.obs.enabled:
            self._record_batch_metrics(report)
        return report

    def _record_batch_metrics(self, report: BatchReport) -> None:
        registry = self.obs.registry
        registry.counter(
            "freeway_batches_total", "batches processed",
        ).labels(strategy=report.strategy).inc()
        registry.counter(
            "freeway_items_total", "items processed",
        ).inc(report.num_items)
        registry.histogram(
            "freeway_predict_seconds", "per-batch inference latency",
        ).labels(strategy=report.strategy).observe(report.predict_seconds)
        if report.accuracy is not None:
            registry.histogram(
                "freeway_update_seconds", "per-batch training latency",
            ).observe(report.update_seconds)
            registry.gauge(
                "freeway_last_batch_accuracy",
                "prequential accuracy of the latest labeled batch",
            ).set(report.accuracy)
        if report.fallback:
            registry.counter(
                "freeway_fallbacks_total", "degraded routing decisions",
            ).inc()
        # The pool is thread-local; this runs on the run-loop thread, which
        # is exactly the one whose scratch buffers matter.
        POOL.publish(registry)

    def _update_only(self, batch: Batch) -> BatchReport:
        loss = None
        update_seconds = 0.0
        if batch.labeled:
            self._current_index = batch.index
            try:
                start = time.perf_counter()
                loss = self.update(batch.x, batch.y)
                update_seconds = time.perf_counter() - start
            finally:
                self._current_index = None
        self._processed += 1
        return BatchReport(
            batch_index=batch.index, num_items=len(batch),
            pattern=ShiftPattern.WARMUP.value,
            strategy=Strategy.MULTI_GRANULARITY.value, fallback=False,
            accuracy=None, loss=loss, predict_seconds=0.0,
            update_seconds=update_seconds, skipped_inference=True,
        )

    def run(self, stream, max_batches: int | None = None) -> list[BatchReport]:
        """Process a stream end to end, returning all batch reports."""
        reports: list[BatchReport] = []
        for batch in stream:
            reports.append(self.process(batch))
            if max_batches is not None and len(reports) >= max_batches:
                break
        return reports

    def set_degrade(self, degrade: bool) -> None:
        """Switch graceful degradation on or off mid-run.

        Turning it on builds the circuit breaker lazily (with the
        constructor's tuning) when none exists yet; turning it off keeps
        the breaker's failure history so a later re-enable resumes where
        it left off.  The live SLO engine uses this for pre-emptive
        degrade: an active alert flips the learner into the fallback
        chain before failures force it there.
        """
        self.degrade = bool(degrade)
        if self.degrade and self.breaker is None:
            self.breaker = CircuitBreaker(threshold=self._breaker_threshold,
                                          cooldown=self._breaker_cooldown)

    # -- lifecycle (StreamingEstimator protocol) -----------------------------------

    def close(self) -> None:
        """Release estimator resources.

        A single in-process learner owns nothing that outlives it, so this
        is a no-op — it exists so the serving session registry (and any
        other holder of a :class:`~repro.api.StreamingEstimator`) can
        retire estimators uniformly; :class:`~repro.distributed.
        DistributedLearner` overrides it to shut its worker pool down.
        Closing is idempotent.
        """
        if self.profiler is not None:
            _nn_plan.remove_plan_hook(self.profiler.observe_plan_event)

    def __enter__(self) -> "Learner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def summary(self) -> dict:
        """Estimator state as a plain dict (StreamingEstimator protocol)."""
        summary = {
            "estimator": "freewayml",
            "batches_processed": self._processed,
            "updates": self._batch_counter,
            "strategies": dict(self._strategy_counts),
            "knowledge_entries": len(self.knowledge),
            "experience_size": len(self.experience),
            "num_levels": len(self.ensemble.levels),
        }
        if self.degrade:
            summary["breaker"] = self.breaker.snapshot()
        return summary
