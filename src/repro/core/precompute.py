"""Pre-computing window mechanism (paper Section V-B).

Instead of computing the gradient for an entire window of data at update
time, FreewayML computes gradients incrementally for each data subset as it
arrives and accumulates them; the update then only needs the gradient of
the final subset plus one aggregation.  This trades no accuracy (the
aggregate is the same sample-weighted mean gradient) for much lower update
latency, because the expensive work happens while waiting for data.
"""

from __future__ import annotations

import numpy as np

from ..models.base import NeuralStreamingModel

__all__ = ["PrecomputingWindow"]


class PrecomputingWindow:
    """Incremental gradient accumulator over window subsets.

    Usage: call :meth:`accumulate` for each arriving subset (this is the
    pre-computation), then :meth:`apply` once to take the aggregated
    gradient step on the model.

    Note: the accumulated gradients are all evaluated at the parameter
    vector the model had when each subset arrived; because the model is not
    updated between subsets, this equals the full-window gradient exactly.
    """

    def __init__(self, model: NeuralStreamingModel):
        self.model = model
        self._gradient_sums: list[np.ndarray] | None = None
        self._samples = 0
        self.subsets_accumulated = 0

    @property
    def pending_samples(self) -> int:
        return self._samples

    def accumulate(self, x: np.ndarray, y: np.ndarray) -> None:
        """Pre-compute and bank the gradient of one subset."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=np.int64).reshape(-1)
        if len(x) == 0:
            raise ValueError("cannot accumulate an empty subset")
        grads = self.model.gradient_on(x, y)
        weight = len(x)
        if self._gradient_sums is None:
            self._gradient_sums = [grad * weight for grad in grads]
        else:
            for total, grad in zip(self._gradient_sums, grads):
                total += grad * weight
        self._samples += weight
        self.subsets_accumulated += 1

    def apply(self, x: np.ndarray | None = None,
              y: np.ndarray | None = None) -> None:
        """Fold in the final subset (if given) and apply one update step."""
        if x is not None:
            if y is None:
                raise ValueError("final subset requires labels")
            self.accumulate(x, y)
        if self._gradient_sums is None:
            raise RuntimeError("nothing accumulated; call accumulate() first")
        mean_grads = [total / self._samples for total in self._gradient_sums]
        self.model.apply_gradient(mean_grads)
        self.reset()

    def reset(self) -> None:
        """Discard any banked gradients."""
        self._gradient_sums = None
        self._samples = 0
        self.subsets_accumulated = 0
