"""Rate-aware adjuster (paper Section V-B).

Inference and training compete for resources during bursts.  The adjuster
watches the observed data flow rate and the training-window pressure and
produces two control outputs:

- ``inference_stride`` — infer on every batch when load is low, on every
  ``n``-th batch when load is high (the *inference frequency controller*);
- ``decay_boost`` — a multiplier on the ASW decay rate, so under high flow
  the window drains faster and long-model updates become rarer (the
  *update frequency adjustment*).
"""

from __future__ import annotations

import time

__all__ = ["RateAwareAdjuster"]


class RateAwareAdjuster:
    """EMA flow-rate monitor with threshold-based frequency control.

    Parameters
    ----------
    high_rate:
        Items/second above which the stream counts as high-speed.  ``None``
        disables rate-based adjustment (useful in benchmarks where wall
        clock is meaningless).
    high_pressure:
        Window fill fraction above which inference is throttled.
    max_stride:
        Upper bound for the inference stride.
    ema:
        Smoothing factor for the flow-rate estimate.
    """

    def __init__(self, high_rate: float | None = None,
                 high_pressure: float = 0.8, max_stride: int = 4,
                 ema: float = 0.3, clock=time.monotonic):
        if max_stride < 1:
            raise ValueError(f"max_stride must be >= 1; got {max_stride}")
        if not 0.0 < ema <= 1.0:
            raise ValueError(f"ema must be in (0, 1]; got {ema}")
        self.high_rate = high_rate
        self.high_pressure = high_pressure
        self.max_stride = max_stride
        self.ema = ema
        self._clock = clock
        self._last_time: float | None = None
        self.flow_rate = 0.0
        self.inference_stride = 1
        self.decay_boost = 1.0

    def observe(self, items: int, window_pressure: float = 0.0) -> None:
        """Record a batch arrival and refresh the control outputs.

        ``window_pressure`` is the ASW fill fraction (0..1).
        """
        now = self._clock()
        if self._last_time is not None:
            elapsed = max(now - self._last_time, 1e-9)
            instant = items / elapsed
            self.flow_rate = (1.0 - self.ema) * self.flow_rate + self.ema * instant
        self._last_time = now

        if self.high_rate is None:
            return
        overloaded = self.flow_rate > self.high_rate
        pressured = window_pressure > self.high_pressure
        if overloaded and pressured:
            self.inference_stride = min(self.inference_stride + 1,
                                        self.max_stride)
        elif not overloaded and not pressured:
            self.inference_stride = max(self.inference_stride - 1, 1)
        # Update-frequency adjustment: faster decay under load.
        self.decay_boost = 2.0 if overloaded else 1.0

    def should_infer(self, batch_index: int) -> bool:
        """Whether this batch should run inference, given the stride."""
        return batch_index % self.inference_stride == 0
