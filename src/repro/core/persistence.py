"""Learner checkpointing: save and restore a running FreewayML deployment.

A streaming learner's value is its accumulated state — the granularity
models, the knowledge store, the fitted shift PCA, and the labeled
experience.  :func:`save_learner` serializes all of it into a single
``.npz`` archive; :func:`load_learner` restores it into a freshly
constructed :class:`~repro.core.learner.Learner` (built from the same
model factory), so serving can resume where it stopped.

Rolling statistics (severity histories, accuracy EMAs) are saved too, so a
restored learner classifies the next batch exactly as the original would
have.
"""

from __future__ import annotations

import io
import json
from collections import Counter
from pathlib import Path

import numpy as np

from ..analysis.checkpoint import check_state_dict
from ..obs import CheckpointRejected, CheckpointWritten
from ..resilience.degrade import CircuitBreaker
from .learner import Learner

__all__ = ["save_learner", "load_learner", "learner_state", "restore_learner_state"]

_META_KEY = "__freewayml_meta__"


def _flatten(prefix: str, state: dict, arrays: dict) -> None:
    for name, value in state.items():
        arrays[f"{prefix}{name}"] = np.asarray(value)


def _unflatten(prefix: str, arrays: dict) -> dict:
    state = {}
    for key, value in arrays.items():
        if key.startswith(prefix):
            state[key[len(prefix):]] = value
    return state


def learner_state(learner: Learner) -> tuple[dict, dict]:
    """Extract ``(arrays, meta)`` capturing a learner's full mutable state."""
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {
        "version": 1,
        "batch_counter": learner._batch_counter,
        "concept_alert": learner._concept_alert,
        "sigma": learner.ensemble.sigma,
        "levels": [],
        "knowledge": [],
        "experience": [],
        # Degrade-chain state: without these a rehydrated tenant silently
        # reset its circuit breakers (and its processed/strategy tallies).
        "processed": learner._processed,
        "strategy_counts": dict(learner._strategy_counts),
        "degrade": learner.degrade,
    }
    if learner.breaker is not None:
        meta["breaker"] = learner.breaker.state_dict()

    for index, level in enumerate(learner.ensemble.levels):
        _flatten(f"level{index}/", level.model.state_dict(), arrays)
        reference = level.reference_embedding()
        if reference is not None:
            arrays[f"level{index}/__reference__"] = reference
        level_meta = {
            "updates": level.updates,
            "accuracy_ema": level.accuracy_ema,
            "last_disorder": level.last_disorder,
        }
        if level.window is not None:
            window = level.window
            for position, entry in enumerate(window._entries):  # repro: noqa[REP007] — checkpoint serialization, off the serving path
                prefix = f"level{index}/window{position}/"
                arrays[f"{prefix}x"] = entry.x
                arrays[f"{prefix}y"] = entry.y
                arrays[f"{prefix}embedding"] = entry.embedding
            window_weights = window.entry_weights()
            level_meta["window"] = {
                "entries": [
                    {"weight": float(window_weights[position]),
                     "index": entry.index}
                    for position, entry in enumerate(window._entries)
                ],
                "arrivals": window._arrivals,
                "last_disorder": window._last_disorder,
                "rng_state": window._rng.bit_generator.state,
            }
        meta["levels"].append(level_meta)

    for index, entry in enumerate(learner.knowledge.entries):  # repro: noqa[REP007] — checkpoint serialization, off the serving path
        prefix = f"knowledge{index}/"
        _flatten(prefix, entry.state, arrays)
        arrays[f"{prefix}__embedding__"] = entry.embedding
        meta["knowledge"].append({
            "model_kind": entry.model_kind,
            "disorder": entry.disorder,
            "batch_index": entry.batch_index,
        })

    for index, (x, y, clock) in enumerate(learner.experience._entries):  # repro: noqa[REP007] — checkpoint serialization, off the serving path
        arrays[f"experience{index}/x"] = x
        arrays[f"experience{index}/y"] = y
        meta["experience"].append({"clock": clock})
    meta["experience_clock"] = learner.experience._clock
    meta["experience_size"] = learner.experience._size

    pca = learner.classifier.pca
    if pca.is_fitted:
        arrays["pca/mean"] = pca.mean
        arrays["pca/components"] = pca.components
        arrays["pca/explained_variance"] = pca.explained_variance
    previous = learner.classifier._previous_embedding
    if previous is not None:
        arrays["classifier/previous_embedding"] = previous
    history = learner.classifier.history.as_array()
    if history.size:
        arrays["classifier/history"] = history
    for name, tracker in (("severity", learner.classifier.severity),
                          ("confidence", learner._confidence),
                          ("errors", learner._errors)):
        values = np.asarray(list(tracker._distances), dtype=float)
        if values.size:
            arrays[f"tracker/{name}"] = values
    return arrays, meta


def save_learner(learner: Learner, path: str | Path) -> int:
    """Write a learner checkpoint to ``path``; returns bytes written.

    When the learner carries an enabled observability facade, a
    :class:`~repro.obs.CheckpointWritten` event records the durable write.
    """
    with learner.obs.tracer.span("persistence.save"):
        arrays, meta = learner_state(learner)
        buffer = io.BytesIO()
        arrays = dict(arrays)
        arrays[_META_KEY] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez(buffer, **arrays)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = buffer.getvalue()
        path.write_bytes(blob)
    if learner.obs.enabled:
        learner.obs.emit(CheckpointWritten(
            path=str(path), nbytes=len(blob),
            batch=learner._batch_counter,
        ))
        learner.obs.registry.counter(
            "freeway_checkpoints_total", "learner checkpoints written",
        ).inc()
    return len(blob)


def restore_learner_state(learner: Learner, arrays: dict, meta: dict) -> Learner:
    """Load ``(arrays, meta)`` produced by :func:`learner_state` in place."""
    if meta.get("version") != 1:
        raise ValueError(f"unsupported checkpoint version {meta.get('version')!r}")
    if len(meta["levels"]) != len(learner.ensemble.levels):
        raise ValueError(
            f"checkpoint has {len(meta['levels'])} granularity levels but "
            f"the learner has {len(learner.ensemble.levels)} — construct it "
            "with the same num_models/window_batches"
        )

    learner._batch_counter = int(meta["batch_counter"])
    learner._concept_alert = bool(meta["concept_alert"])
    learner.ensemble.sigma = float(meta["sigma"])

    # Optional keys: absent in pre-fix version-1 checkpoints, which stay
    # loadable (the degrade chain then starts fresh, as it always did).
    if "processed" in meta:
        learner._processed = int(meta["processed"])
    if "strategy_counts" in meta:
        learner._strategy_counts = Counter(
            {name: int(count)
             for name, count in meta["strategy_counts"].items()}
        )
    if "degrade" in meta:
        learner.set_degrade(bool(meta["degrade"]))
    if "breaker" in meta:
        if learner.breaker is None:
            learner.breaker = CircuitBreaker()
        learner.breaker.load_state_dict(meta["breaker"])

    for index, (level, level_meta) in enumerate(
            zip(learner.ensemble.levels, meta["levels"])):
        prefix = f"level{index}/"
        state = {name: value for name, value
                 in _unflatten(prefix, arrays).items()
                 if not (name.startswith("__") or name.startswith("window"))}
        report = check_state_dict(level.model.state_dict(), state)
        if not report.ok:
            if learner.obs.enabled:
                learner.obs.emit(CheckpointRejected(
                    source="learner_checkpoint",
                    reason=report.problems[0].describe(),
                    problems=len(report.problems),
                    batch=int(meta["batch_counter"]),
                    model_kind=level.name,
                ))
                learner.obs.registry.counter(
                    "freeway_checkpoints_rejected_total",
                    "checkpoint restores blocked by the compat checker",
                ).labels(source="learner_checkpoint").inc()
            report.raise_if_incompatible(
                context=f"granularity level {index} ({level.name})"
            )
        level.model.load_state_dict(state)
        level.updates = int(level_meta["updates"])
        level.accuracy_ema = level_meta["accuracy_ema"]
        level._last_disorder = float(level_meta["last_disorder"])
        reference_key = f"{prefix}__reference__"
        if reference_key in arrays:
            level._reference = np.asarray(arrays[reference_key])
        window_meta = level_meta.get("window")
        if window_meta is not None and level.window is not None:
            from .asw import WindowEntry
            window = level.window
            window._entries = [
                WindowEntry(
                    x=np.asarray(arrays[f"{prefix}window{position}/x"]),
                    y=np.asarray(arrays[f"{prefix}window{position}/y"]),
                    embedding=np.asarray(
                        arrays[f"{prefix}window{position}/embedding"]
                    ),
                    index=int(entry_meta["index"]),
                )
                for position, entry_meta
                in enumerate(window_meta["entries"])
            ]
            # Rebuild the window's parallel arrays (weights/sizes/stacked
            # embeddings) alongside the entry list.
            window._weights = np.asarray(
                [float(entry_meta["weight"])
                 for entry_meta in window_meta["entries"]], dtype=float)
            window._sizes = np.asarray(
                [len(entry.x) for entry in window._entries], dtype=np.int64)
            window._embeddings = (
                np.stack([entry.embedding for entry in window._entries])
                if window._entries else None)
            window._arrivals = int(window_meta["arrivals"])
            window._last_disorder = float(window_meta["last_disorder"])
            window._rng.bit_generator.state = window_meta["rng_state"]

    learner.knowledge._entries.clear()
    for index, entry_meta in enumerate(meta["knowledge"]):
        prefix = f"knowledge{index}/"
        state = {name: value for name, value
                 in _unflatten(prefix, arrays).items()
                 if not name.startswith("__")}
        learner.knowledge.preserve(
            arrays[f"{prefix}__embedding__"], state,
            entry_meta["model_kind"], entry_meta["disorder"],
            entry_meta["batch_index"],
        )

    learner.experience._entries.clear()
    for index, entry_meta in enumerate(meta["experience"]):
        learner.experience._entries.append((
            np.asarray(arrays[f"experience{index}/x"]),
            np.asarray(arrays[f"experience{index}/y"]),
            int(entry_meta["clock"]),
        ))
    learner.experience._clock = int(meta["experience_clock"])
    learner.experience._size = int(meta["experience_size"])

    pca = learner.classifier.pca
    if "pca/mean" in arrays:
        pca.mean = np.asarray(arrays["pca/mean"])
        pca.components = np.asarray(arrays["pca/components"])
        pca.explained_variance = np.asarray(arrays["pca/explained_variance"])
    if "classifier/previous_embedding" in arrays:
        learner.classifier._previous_embedding = np.asarray(
            arrays["classifier/previous_embedding"]
        )
    if "classifier/history" in arrays:
        for row in np.asarray(arrays["classifier/history"]):
            learner.classifier.history.append(row)
    for name, tracker in (("severity", learner.classifier.severity),
                          ("confidence", learner._confidence),
                          ("errors", learner._errors)):
        key = f"tracker/{name}"
        if key in arrays:
            tracker.restore(arrays[key])
    return learner


def load_learner(learner: Learner, path: str | Path) -> Learner:
    """Restore a checkpoint written by :func:`save_learner` into ``learner``.

    ``learner`` must be constructed with the same model factory and the
    same ``num_models``/``window_batches`` as the saved one.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        arrays = {key: archive[key] for key in archive.files}
    meta = json.loads(bytes(arrays.pop(_META_KEY)).decode("utf-8"))
    return restore_learner_state(learner, arrays, meta)
