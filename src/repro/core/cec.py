"""Coherent experience clustering (paper Section IV-C).

When a sudden shift (Pattern B) makes every pre-trained model unreliable,
FreewayML temporarily answers with unsupervised clustering.  K-means over
the current batch produces clusters but no labels; the *coherent
experience* — the most recent labeled points, held in an
:class:`ExperienceBuffer` — is clustered **together with** the batch, and
each cluster takes the majority label of its experience members.  This
rests on the paper's continuity hypothesis: data adjacent in time is
adjacent in distribution, so the tail of the previous batch already
overlaps the new distribution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..models.kmeans import KMeans
from ..obs import NULL_OBS, CecInvoked

__all__ = ["ExperienceBuffer", "CoherentExperienceClustering", "CECResult"]


class ExperienceBuffer:
    """Bounded store of recent labeled points (the paper's ``ExpBuffer``).

    Parameters
    ----------
    capacity:
        Maximum number of points retained.
    per_batch:
        How many points to keep from each labeled batch (the most recent
        rows, which under the continuity hypothesis best overlap the next
        distribution).
    expiration:
        Experiences older than this many batches are dropped — the paper's
        *expiration time* for outdated experiences.
    """

    def __init__(self, capacity: int = 1024, per_batch: int = 128,
                 expiration: int = 8):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1; got {capacity}")
        if per_batch < 1:
            raise ValueError(f"per_batch must be >= 1; got {per_batch}")
        if expiration < 1:
            raise ValueError(f"expiration must be >= 1; got {expiration}")
        self.capacity = capacity
        self.per_batch = per_batch
        self.expiration = expiration
        self._entries: deque[tuple[np.ndarray, np.ndarray, int]] = deque()
        self._size = 0
        self._clock = 0

    def __len__(self) -> int:
        return self._size

    def add(self, x: np.ndarray, y: np.ndarray) -> None:
        """Store the tail of a labeled batch and advance the clock."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=np.int64).reshape(-1)
        if len(x) != len(y):
            raise ValueError(f"{len(x)} rows but {len(y)} labels")
        self._clock += 1
        take = min(self.per_batch, len(x))
        self._entries.append((x[-take:].copy(), y[-take:].copy(), self._clock))
        self._size += take
        self._expire()
        while self._size > self.capacity and len(self._entries) > 1:
            old_x, _, _ = self._entries.popleft()
            self._size -= len(old_x)

    def _expire(self) -> None:
        while self._entries and self._clock - self._entries[0][2] >= self.expiration:
            old_x, _, _ = self._entries.popleft()
            self._size -= len(old_x)

    def recent(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``count`` most recent labeled points (newest batches first).

        Raises ``RuntimeError`` if the buffer is empty.
        """
        if not self._entries:
            raise RuntimeError("experience buffer is empty")
        xs: list[np.ndarray] = []
        ys: list[np.ndarray] = []
        remaining = count
        for x, y, _ in reversed(self._entries):  # repro: noqa[REP007] — early-exit take of newest batches, O(count) not O(k)
            if remaining <= 0:
                break
            take = min(remaining, len(x))
            xs.append(x[-take:])
            ys.append(y[-take:])
            remaining -= take
        return np.concatenate(xs, axis=0), np.concatenate(ys, axis=0)


@dataclass
class CECResult:
    """Outcome of one coherent-experience clustering call."""

    labels: np.ndarray          # per-row predicted labels for the batch
    proba: np.ndarray           # per-row label distribution (soft, from clusters)
    cluster_assignment: np.ndarray
    cluster_labels: np.ndarray  # label per cluster (last segment if segmented)
    guided_clusters: int        # clusters that contained labeled experience
    #: Per-segment ``cluster_labels`` when the batch was segmented
    #: (segments are clustered independently, so their cluster ids are not
    #: comparable); ``None`` for an unsegmented call.
    segment_labels: list | None = None


class CoherentExperienceClustering:
    """Label a batch by clustering it with recent labeled experience.

    Parameters
    ----------
    num_classes:
        Number of labels ``c``; also the number of clusters, as in the
        paper ("``c`` clusters, where ``c`` is the number of labels").
    experience_points:
        The ``m`` labeled points mixed into each clustering call.
    featurizer:
        Optional encoder applied before clustering (the appendix routes
        images through a frozen feature extractor first).
    segments:
        Data segmentation (the paper's Section VI-F future work: "using
        data segmentation to enhance accuracy under sudden shifts").  With
        ``segments > 1`` the batch is split into that many contiguous
        chunks, each clustered and labeled independently — so when the
        shift lands *inside* the batch, the pre- and post-shift portions
        are mapped separately instead of being forced into one clustering.
    seed:
        K-means seeding.
    obs:
        Optional :class:`~repro.obs.Observability`; each :meth:`predict`
        runs inside a ``cec.predict`` span and emits a
        :class:`~repro.obs.CecInvoked` event when enabled.
    """

    def __init__(self, num_classes: int, experience_points: int = 256,
                 featurizer=None, segments: int = 1, seed: int = 0,
                 obs=None):
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2; got {num_classes}")
        if experience_points < 1:
            raise ValueError(
                f"experience_points must be >= 1; got {experience_points}"
            )
        if segments < 1:
            raise ValueError(f"segments must be >= 1; got {segments}")
        self.num_classes = num_classes
        self.experience_points = experience_points
        self.featurizer = featurizer
        self.segments = segments
        self.seed = seed
        self.obs = obs if obs is not None else NULL_OBS

    def predict(self, x: np.ndarray, buffer: ExperienceBuffer,
                batch: int = -1) -> CECResult:
        """Cluster ``x`` together with coherent experience and map to labels.

        With ``segments > 1``, each contiguous chunk of the batch is
        processed independently and the results are concatenated.  ``batch``
        is only used to stamp the emitted event (callers that know the
        stream position pass it; -1 means unknown).
        """
        with self.obs.tracer.span("cec.predict", batch=batch):
            # Keep the native shape here: a convolutional featurizer needs
            # the image axes, so flattening happens *after* featurization
            # (in _predict_one), never before.
            x = np.asarray(x, dtype=float)
            if self.segments > 1 and len(x) >= 2 * self.segments:
                chunks = np.array_split(np.arange(len(x)), self.segments)
                results = [self._predict_one(x[chunk], buffer)
                           for chunk in chunks]
                result = CECResult(
                    labels=np.concatenate([r.labels for r in results]),
                    proba=np.concatenate([r.proba for r in results]),
                    cluster_assignment=np.concatenate(
                        [r.cluster_assignment for r in results]
                    ),
                    cluster_labels=results[-1].cluster_labels,
                    guided_clusters=min(r.guided_clusters for r in results),
                    segment_labels=[r.cluster_labels for r in results],
                )
            else:
                result = self._predict_one(x, buffer)
        if self.obs.enabled:
            self.obs.emit(CecInvoked(
                batch=batch,
                clusters=len(result.cluster_labels),
                labeled_points=min(self.experience_points, len(buffer)),
                guided_clusters=result.guided_clusters,
                vote_margin=float(result.proba.max(axis=1).mean()),
            ))
            self.obs.registry.counter(
                "freeway_cec_invocations_total",
                "coherent-experience-clustering calls",
            ).inc()
        return result

    def _predict_one(self, x: np.ndarray, buffer: ExperienceBuffer) -> CECResult:
        exp_x, exp_y = buffer.recent(self.experience_points)
        # Featurize on native shapes (images stay images), THEN flatten the
        # feature vectors for k-means.
        if self.featurizer is not None:
            x_feat = np.asarray(self.featurizer(x), dtype=float)
            exp_feat = np.asarray(self.featurizer(exp_x), dtype=float)
        else:
            x_feat, exp_feat = x, exp_x
        x_feat = x_feat.reshape(len(x_feat), -1)
        exp_feat = exp_feat.reshape(len(exp_feat), -1)

        combined = np.concatenate([x_feat, exp_feat], axis=0)
        clusters = min(self.num_classes, len(combined))
        kmeans = KMeans(clusters, seed=self.seed)
        assignment = kmeans.fit_predict(combined)
        batch_assignment = assignment[: len(x)]
        experience_assignment = assignment[len(x):]

        cluster_labels, guided = self._map_clusters(
            clusters, experience_assignment, exp_y, kmeans,
        )
        labels = cluster_labels[batch_assignment]
        proba = self._soft_labels(clusters, batch_assignment,
                                  experience_assignment, exp_y, cluster_labels)
        return CECResult(labels=labels, proba=proba,
                         cluster_assignment=batch_assignment,
                         cluster_labels=cluster_labels,
                         guided_clusters=guided)

    def _map_clusters(self, clusters: int, experience_assignment: np.ndarray,
                      exp_y: np.ndarray, kmeans: KMeans) -> tuple[np.ndarray, int]:
        """Majority-vote label per cluster; orphans inherit the nearest
        guided cluster's label."""
        cluster_labels = np.full(clusters, -1, dtype=np.int64)
        for cluster in range(clusters):
            members = exp_y[experience_assignment == cluster]
            if len(members):
                cluster_labels[cluster] = np.bincount(
                    members, minlength=self.num_classes
                ).argmax()
        guided = int((cluster_labels >= 0).sum())
        if guided == 0:
            # No labeled guidance at all: every cluster falls back to the
            # buffer's global majority.
            cluster_labels[:] = np.bincount(
                exp_y, minlength=self.num_classes
            ).argmax()
            return cluster_labels, 0
        if guided < clusters:
            guided_ids = np.flatnonzero(cluster_labels >= 0)
            for cluster in np.flatnonzero(cluster_labels < 0):
                gaps = np.linalg.norm(
                    kmeans.centroids[guided_ids] - kmeans.centroids[cluster],
                    axis=1,
                )
                cluster_labels[cluster] = cluster_labels[
                    guided_ids[int(gaps.argmin())]
                ]
        return cluster_labels, guided

    def _soft_labels(self, clusters: int, batch_assignment: np.ndarray,
                     experience_assignment: np.ndarray, exp_y: np.ndarray,
                     cluster_labels: np.ndarray) -> np.ndarray:
        """Per-row label distribution from each cluster's experience mix."""
        distributions = np.zeros((clusters, self.num_classes))
        for cluster in range(clusters):
            members = exp_y[experience_assignment == cluster]
            if len(members):
                counts = np.bincount(members, minlength=self.num_classes)
                distributions[cluster] = counts / counts.sum()
            else:
                distributions[cluster, cluster_labels[cluster]] = 1.0
        return distributions[batch_assignment]
