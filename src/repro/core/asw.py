"""Adaptive Streaming Window (paper Section IV-B, Algorithm 1, Eq. 11).

The ASW manages the training data of the long-time-granularity model.  When
a new batch arrives, every stored batch is *decayed* by an amount that
depends on (a) its shift distance from the new batch — closer batches decay
less, so the window tracks the current distribution — and (b) the window's
*disorder*, the inversion count of the distance ranking taken in
chronological order (Eq. 11):

- **low disorder** means distances fall off monotonically with age — a
  directional shift (Pattern A1) — so decay stays gentle and the window
  turns over in an orderly way toward the new distribution;
- **high disorder** means distances are shuffled with respect to time — a
  localized shift (Pattern A2) — so decay accelerates, trimming redundant
  data and avoiding unnecessary update work.

Rank convention: ``tau_i`` is the rank of batch ``i``'s distance with the
*farthest* batch ranked 0.  Under a directional shift the oldest batch is
farthest, so the chronological rank sequence is ascending and the inversion
count is zero; a localized shift shuffles the ranks and pushes the count
toward its maximum ``k·(k−1)/2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import NULL_OBS, AswDecayApplied

__all__ = ["WindowEntry", "AdaptiveStreamingWindow", "inversion_count"]


def _inversion_count_naive(sequence: np.ndarray) -> int:
    """Reference O(k²) pair count — kept for property tests against the fast path."""
    sequence = np.asarray(sequence)
    count = 0
    for i in range(len(sequence) - 1):  # repro: noqa[REP007] — reference implementation for fuzz tests
        count += int((sequence[i] > sequence[i + 1:]).sum())
    return count


def _merge_count(sequence: list) -> tuple[list, int]:
    """Merge-sort ``sequence`` ascending, returning (sorted, inversions)."""
    n = len(sequence)
    if n < 2:
        return sequence, 0
    mid = n // 2
    left, inv_left = _merge_count(sequence[:mid])
    right, inv_right = _merge_count(sequence[mid:])
    merged = []
    inversions = inv_left + inv_right
    i = j = 0
    len_left = len(left)
    while i < len_left and j < len(right):
        if left[i] <= right[j]:  # ties are not inversions (strict >)
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            # right[j] jumps ahead of every remaining left element.
            inversions += len_left - i
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged, inversions


def inversion_count(sequence: np.ndarray) -> int:
    """Number of out-of-order pairs, ``|{(i, j): i < j and s_i > s_j}|`` (Eq. 11).

    Counted during an O(k log k) merge sort; being integer arithmetic the
    result is exactly the naive pair count (property-tested against
    :func:`_inversion_count_naive` in ``tests/test_asw.py``).
    """
    values = np.asarray(sequence).tolist()
    if len(values) < 2:
        return 0
    return _merge_count(values)[1]


@dataclass
class WindowEntry:
    """One batch held by the window.

    Decay weights live on the owning window as one array (vectorized
    decay, see :meth:`AdaptiveStreamingWindow.entry_weights`), not on the
    entry.
    """

    x: np.ndarray
    y: np.ndarray
    embedding: np.ndarray
    index: int


class AdaptiveStreamingWindow:
    """Shift-aware decaying window over recent training batches.

    Parameters
    ----------
    max_batches / max_items:
        Fullness thresholds; when either is reached the owner should train
        the long-granularity model on :meth:`training_data` and call
        :meth:`reset` (Algorithm 1, line 3).  ``max_items`` counts
        *effective* rows, i.e. rows scaled by decay weights.
    base_decay:
        Baseline per-arrival decay rate.  The effective rate for entry ``i``
        is ``base_decay * (0.5 + disorder) * (0.5 + rank_i) * boost``, where
        ``disorder`` is the normalized inversion count and ``rank_i`` the
        normalized distance rank (closest 0, farthest 1).
    min_weight:
        Entries whose weight falls below this are evicted outright.
    seed:
        RNG seed for weighted row subsampling in :meth:`training_data`.
    name / obs:
        Identifier used in emitted events and the
        :class:`~repro.obs.Observability` facade; every decay pass emits an
        :class:`~repro.obs.AswDecayApplied` event when enabled.
    """

    def __init__(self, max_batches: int = 16, max_items: int = 16384,
                 base_decay: float = 0.12, min_weight: float = 0.05,
                 seed: int = 0, name: str = "asw", obs=None):
        if max_batches < 1:
            raise ValueError(f"max_batches must be >= 1; got {max_batches}")
        if max_items < 1:
            raise ValueError(f"max_items must be >= 1; got {max_items}")
        if not 0.0 <= base_decay < 1.0:
            raise ValueError(f"base_decay must be in [0, 1); got {base_decay}")
        self.max_batches = max_batches
        self.max_items = max_items
        self.base_decay = base_decay
        self.min_weight = min_weight
        self.decay_boost = 1.0  # raised by the rate-aware adjuster under load
        self.name = name
        self.obs = obs if obs is not None else NULL_OBS
        self._rng = np.random.default_rng(seed)
        self._entries: list[WindowEntry] = []
        # Parallel arrays over ``_entries`` (oldest first): decay weights,
        # row counts, and the stacked embedding matrix.  Keeping them as
        # arrays makes the per-arrival decay one vectorized pass instead
        # of a per-entry Python loop.
        self._weights = np.empty(0)
        self._sizes = np.empty(0, dtype=np.int64)
        self._embeddings: np.ndarray | None = None
        self._last_disorder: float = 0.0
        self._arrivals = 0

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def num_batches(self) -> int:
        return len(self._entries)

    @property
    def effective_items(self) -> float:
        """Decay-weighted row count across the window."""
        return float(self._weights @ self._sizes)

    @property
    def is_full(self) -> bool:
        """Whether the window has hit a fullness threshold (Alg. 1, line 3)."""
        return (self.num_batches >= self.max_batches
                or self.effective_items >= self.max_items)

    @property
    def disorder(self) -> float:
        """Normalized disorder of the window at the last :meth:`add` (0..1)."""
        return self._last_disorder

    def mean_embedding(self) -> np.ndarray:
        """Weight-averaged embedding of the window (for ``D_Long``, Eq. 13)."""
        if not self._entries:
            raise RuntimeError("window is empty")
        weights = self._weights
        return (weights[:, None] * self._embeddings).sum(axis=0) / weights.sum()

    def entry_weights(self) -> np.ndarray:
        """Current decay weights, oldest entry first."""
        return self._weights.copy()

    # -- Algorithm 1 ------------------------------------------------------------

    def add(self, x: np.ndarray, y: np.ndarray, embedding: np.ndarray) -> None:
        """Insert a batch, decaying existing entries by shift rank and disorder."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=np.int64).reshape(-1)
        embedding = np.asarray(embedding, dtype=float).reshape(-1)
        if len(x) != len(y):
            raise ValueError(f"{len(x)} rows but {len(y)} labels")
        if self._entries:
            self._decay_against(embedding)
        self._entries.append(
            WindowEntry(x=x, y=y, embedding=embedding, index=self._arrivals)
        )
        self._weights = np.append(self._weights, 1.0)
        self._sizes = np.append(self._sizes, len(x))
        if self._embeddings is None:
            self._embeddings = embedding[None, :].copy()
        else:
            self._embeddings = np.concatenate(
                [self._embeddings, embedding[None, :]], axis=0)
        self._arrivals += 1

    def _replace_entries(self, keep: np.ndarray) -> None:
        """Compact the entry list and its parallel arrays to ``keep`` rows."""
        self._entries = [self._entries[i] for i in keep]
        self._weights = self._weights[keep]
        self._sizes = self._sizes[keep]
        if self._embeddings is not None:
            self._embeddings = (self._embeddings[keep]
                                if len(keep) else None)

    def _decay_against(self, new_embedding: np.ndarray) -> None:
        # Entries whose embedding lives in a different space (possible when
        # the owner's PCA fitted mid-stream) cannot be compared; drop them
        # rather than crash — they predate the current representation.  All
        # stored embeddings share one width (the matrix invariant), so a
        # width change drops the whole window.
        if (self._embeddings is None
                or self._embeddings.shape[1] != new_embedding.shape[0]):
            self._replace_entries(np.empty(0, dtype=np.int64))
            return
        diff = self._embeddings - new_embedding
        distances = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        k = len(distances)
        # Ascending rank: closest batch gets 0 (decays least).
        ascending = np.empty(k, dtype=int)
        ascending[np.argsort(distances)] = np.arange(k)
        inversions = 0
        if k >= 2:
            # Farthest-first ranks in chronological order; directional
            # drift makes this ascending => zero inversions => low disorder.
            farthest_first = (k - 1) - ascending
            max_pairs = k * (k - 1) // 2
            inversions = inversion_count(farthest_first)
            self._last_disorder = inversions / max_pairs
        else:
            self._last_disorder = 0.0
        rank_norm = ascending / max(k - 1, 1)
        rates = (self.base_decay * self.decay_boost
                 * (0.5 + self._last_disorder) * (0.5 + rank_norm))
        rates = np.clip(rates, 0.0, 0.95)
        # One array pass over the window: decay every weight, evict the
        # ones that fell below the floor.
        self._weights = self._weights * (1.0 - rates)
        keep = np.flatnonzero(self._weights >= self.min_weight)
        evicted = k - len(keep)
        if evicted:
            self._replace_entries(keep)
        if self.obs.enabled:
            self.obs.emit(AswDecayApplied(
                window=self.name, arrival=self._arrivals,
                mean_rate=float(rates.mean()),
                disorder=self._last_disorder, inversions=inversions,
                entries=len(self._entries), evicted=evicted,
            ))
            self.obs.registry.gauge(
                "freeway_asw_disorder",
                "window disorder at the latest decay pass",
            ).labels(window=self.name).set(self._last_disorder)

    # -- training-data extraction ---------------------------------------------------

    def training_data(self) -> tuple[np.ndarray, np.ndarray]:
        """Decay-weighted sample of the window's rows for a model update.

        Each entry contributes ``round(weight * len)`` rows, drawn without
        replacement, so heavily decayed batches fade from the training set
        exactly as the decay schedule dictates.
        """
        if not self._entries:
            raise RuntimeError("window is empty")
        xs: list[np.ndarray] = []
        ys: list[np.ndarray] = []
        weights = self._weights
        # Per-entry RNG subsampling is inherently sequential: each draw
        # advances the generator, so order is part of the contract.
        for position, entry in enumerate(self._entries):  # repro: noqa[REP007] — sequential RNG draws per entry
            take = int(round(float(weights[position]) * len(entry.x)))
            if take <= 0:
                continue
            if take >= len(entry.x):
                xs.append(entry.x)
                ys.append(entry.y)
            else:
                chosen = self._rng.choice(len(entry.x), size=take, replace=False)
                xs.append(entry.x[chosen])
                ys.append(entry.y[chosen])
        if not xs:  # every entry fully decayed between adds
            newest = self._entries[-1]
            return newest.x, newest.y
        return np.concatenate(xs, axis=0), np.concatenate(ys, axis=0)

    def reset(self) -> None:
        """Clear the window (after the long-granularity model updates)."""
        self._entries.clear()
        self._weights = np.empty(0)
        self._sizes = np.empty(0, dtype=np.int64)
        self._embeddings = None
        self._last_disorder = 0.0
