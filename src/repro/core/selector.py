"""The strategy selector (paper Section V, Figure 8).

For every inference batch exactly **one** strategy runs, chosen from the
shift pattern the classifier reports:

- slight shift (or warm-up) → multi-time granularity ensemble;
- sudden shift → coherent experience clustering;
- reoccurring shift → historical knowledge reuse.

The selector also owns the graceful fallbacks the pipeline needs in
practice: a reoccurring shift with an empty knowledge store degrades to
CEC, and a sudden shift with no labeled experience degrades to the
ensemble (each fallback is recorded so evaluations can see it happened).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..obs import NULL_OBS
from ..shift.patterns import ShiftAssessment, ShiftPattern

__all__ = ["Strategy", "StrategyDecision", "StrategySelector"]


class Strategy(str, Enum):
    """The three optimization mechanisms of FreewayML."""

    MULTI_GRANULARITY = "multi_granularity"
    CEC = "cec"
    KNOWLEDGE_REUSE = "knowledge_reuse"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class StrategyDecision:
    """What the selector chose and why."""

    strategy: Strategy
    pattern: ShiftPattern
    fallback: bool = False
    reason: str = ""


class StrategySelector:
    """Map a :class:`ShiftAssessment` to the mechanism that should answer.

    ``obs`` (optional :class:`~repro.obs.Observability`) feeds a counter of
    raw selector decisions; the :class:`~repro.core.learner.Learner` emits
    the :class:`~repro.obs.StrategySelected` event with the *final* routing
    (which may differ when a knowledge match fails and the decision is
    downgraded).
    """

    def __init__(self, obs=None):
        self.obs = obs if obs is not None else NULL_OBS

    def select(self, assessment: ShiftAssessment, *,
               knowledge_available: bool,
               experience_available: bool,
               ensemble_trained: bool) -> StrategyDecision:
        """Choose the single strategy for this inference batch.

        Parameters mirror the runtime facts the pipeline knows: whether the
        knowledge store has entries, whether the experience buffer has
        labeled points, and whether any granularity model has trained yet.
        """
        decision = self._select(assessment,
                                knowledge_available=knowledge_available,
                                experience_available=experience_available,
                                ensemble_trained=ensemble_trained)
        if self.obs.enabled:
            self.obs.registry.counter(
                "freeway_selector_decisions_total",
                "raw selector decisions (before reuse-miss downgrades)",
            ).labels(strategy=decision.strategy.value,
                     fallback=str(decision.fallback).lower()).inc()
        return decision

    def _select(self, assessment: ShiftAssessment, *,
                knowledge_available: bool,
                experience_available: bool,
                ensemble_trained: bool) -> StrategyDecision:
        pattern = assessment.pattern

        if pattern in (ShiftPattern.WARMUP, ShiftPattern.SLIGHT):
            return StrategyDecision(Strategy.MULTI_GRANULARITY, pattern)

        if pattern is ShiftPattern.REOCCURRING:
            if knowledge_available:
                return StrategyDecision(Strategy.KNOWLEDGE_REUSE, pattern)
            if experience_available:
                return StrategyDecision(
                    Strategy.CEC, pattern, fallback=True,
                    reason="knowledge store empty",
                )
            return StrategyDecision(
                Strategy.MULTI_GRANULARITY, pattern, fallback=True,
                reason="knowledge store and experience buffer empty",
            )

        # Sudden shift.
        if experience_available:
            return StrategyDecision(Strategy.CEC, pattern)
        return StrategyDecision(
            Strategy.MULTI_GRANULARITY, pattern, fallback=True,
            reason="experience buffer empty",
        )
