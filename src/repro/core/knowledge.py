"""Historical knowledge reuse (paper Section IV-D).

Knowledge is preserved as ``(d_i, k_i)`` pairs — a distribution embedding
plus reusable model parameters.  Preservation is gated by the ASW's
disorder (threshold ``beta``): a high-disorder window means the
long-granularity model is the stable one worth keeping; a low-disorder
window signals an orderly directional shift whose end state the short
model captures, so the short model is preserved as well.

When a severe shift occurs, :meth:`KnowledgeStore.match` finds the stored
distribution nearest the current batch; if it is closer than the previous
batch (``d_i < d_t``), the knowledge is reused.

The store is bounded (the paper's ``KdgBuffer``): at capacity, the older
half is spilled to local storage (if a spill directory is configured) and
dropped from memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..analysis.checkpoint import check_state_dict
from ..nn.serialization import (
    load_state_dict,
    save_state_dict,
    state_dict_nbytes,
)
from ..obs import NULL_OBS, CheckpointRejected, KnowledgeEvicted, KnowledgePreserved

__all__ = ["KnowledgeEntry", "KnowledgeMatch", "KnowledgeStore"]


@dataclass
class KnowledgeEntry:
    """One preserved ``(d_i, k_i)`` pair."""

    embedding: np.ndarray          # d_i: the distribution this knowledge fits
    state: dict                    # k_i: model parameters (a state_dict)
    model_kind: str                # which granularity model produced it
    disorder: float                # window disorder at preservation time
    batch_index: int               # stream position at preservation time
    created_at: float = field(default_factory=time.monotonic)

    @property
    def nbytes(self) -> int:
        """Parameter payload size (Table IV accounting)."""
        return state_dict_nbytes(self.state)


@dataclass
class KnowledgeMatch:
    """Result of a knowledge lookup."""

    entry: KnowledgeEntry
    distance: float


class KnowledgeStore:
    """Bounded distribution-indexed checkpoint store (the ``KdgBuffer``).

    Parameters
    ----------
    capacity:
        Maximum entries held in memory (the paper's ``KdgBuffer`` size,
        default 20 in the ``Learner`` interface).
    beta:
        Disorder threshold gating what is preserved at the end of each ASW.
    spill_dir:
        Optional directory; when the store overflows, the older half is
        written there before being evicted from memory.
    obs:
        Optional :class:`~repro.obs.Observability`; preservation and
        eviction emit :class:`~repro.obs.KnowledgePreserved` /
        :class:`~repro.obs.KnowledgeEvicted` events when enabled.
    """

    def __init__(self, capacity: int = 20, beta: float = 0.35,
                 spill_dir: str | Path | None = None, obs=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1; got {capacity}")
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1]; got {beta}")
        self.capacity = capacity
        self.beta = beta
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.obs = obs if obs is not None else NULL_OBS
        self._entries: list[KnowledgeEntry] = []
        self.preserved_total = 0
        self.spilled_total = 0
        self._spill_counter = 0  # monotonic: makes spill filenames unique

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[KnowledgeEntry]:
        return list(self._entries)

    def total_nbytes(self) -> int:
        """In-memory space overhead of all preserved knowledge (Table IV)."""
        return sum(entry.nbytes for entry in self._entries)

    # -- preservation ----------------------------------------------------------

    def preserve(self, embedding: np.ndarray, state: dict, model_kind: str,
                 disorder: float, batch_index: int) -> KnowledgeEntry:
        """Unconditionally store one ``(d_i, k_i)`` pair."""
        entry = KnowledgeEntry(
            embedding=np.asarray(embedding, dtype=float).reshape(-1),
            state={name: np.asarray(value).copy() for name, value in state.items()},
            model_kind=model_kind,
            disorder=float(disorder),
            batch_index=int(batch_index),
        )
        self._entries.append(entry)
        self.preserved_total += 1
        if self.obs.enabled:
            self.obs.emit(KnowledgePreserved(
                batch=entry.batch_index, model_kind=entry.model_kind,
                disorder=entry.disorder, nbytes=entry.nbytes,
                store_size=len(self._entries),
            ))
            self.obs.registry.counter(
                "freeway_knowledge_preserved_total",
                "knowledge entries preserved",
            ).labels(model_kind=entry.model_kind).inc()
        if len(self._entries) > self.capacity:
            self._overflow()
        if self.obs.enabled:
            self.obs.registry.gauge(
                "freeway_knowledge_entries",
                "knowledge entries currently in memory",
            ).set(len(self._entries))
        return entry

    def preserve_at_window_end(self, disorder: float, long_embedding: np.ndarray,
                               long_state: dict, short_embedding: np.ndarray,
                               short_state: dict, batch_index: int) -> list[KnowledgeEntry]:
        """Disorder-gated preservation at the end of an ASW (Section IV-D.1).

        The long-granularity model and the window's distribution are always
        preserved (it is the stable model).  When disorder is *below*
        ``beta`` — an orderly directional shift — the short model and the
        current distribution are preserved as well, because the post-shift
        state it captures is exactly what a reoccurrence will look like.
        """
        preserved = [
            self.preserve(long_embedding, long_state, "long", disorder,
                          batch_index)
        ]
        if disorder < self.beta and short_state is not None:
            preserved.append(
                self.preserve(short_embedding, short_state, "short", disorder,
                              batch_index)
            )
        return preserved

    def _overflow(self) -> None:
        """Spill/evict the older half when capacity is exceeded."""
        half = max(len(self._entries) // 2, 1)
        evicted, self._entries = self._entries[:half], self._entries[half:]
        self.spilled_total += len(evicted)
        if self.obs.enabled:
            self.obs.emit(KnowledgeEvicted(
                count=len(evicted), spilled=self.spill_dir is not None,
                store_size=len(self._entries),
            ))
            self.obs.registry.counter(
                "freeway_knowledge_evicted_total",
                "knowledge entries evicted from memory",
            ).inc(len(evicted))
        if self.spill_dir is None:
            return
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        for entry in evicted:
            # The sequence number keeps filenames unique: one window end can
            # preserve both a long and a short entry at the same batch
            # index, and re-preservation at a revisited index must not
            # overwrite the earlier spill.
            path = self.spill_dir / (
                f"knowledge-{entry.batch_index:08d}-{entry.model_kind}"
                f"-{self._spill_counter:06d}.npz"
            )
            self._spill_counter += 1
            # The full (d_i, k_i) pair goes to disk — parameters alone are
            # unreusable because matching is distribution-indexed.
            payload = {f"param/{name}": np.asarray(value)
                       for name, value in entry.state.items()}
            payload["meta/embedding"] = entry.embedding
            payload["meta/model_kind"] = np.asarray(entry.model_kind)
            payload["meta/disorder"] = np.asarray(entry.disorder)
            payload["meta/batch_index"] = np.asarray(entry.batch_index)
            payload["meta/created_at"] = np.asarray(entry.created_at)
            save_state_dict(payload, path)

    @staticmethod
    def load_spilled(path: str | Path) -> KnowledgeEntry:
        """Rehydrate one spilled entry (embedding, parameters, metadata).

        The inverse of the overflow spill: returns a full
        :class:`KnowledgeEntry` ready to be matched or restored.
        """
        archive = load_state_dict(path)
        if "meta/embedding" not in archive:
            raise ValueError(f"{path} is not a knowledge spill file")
        state = {name[len("param/"):]: value
                 for name, value in archive.items()
                 if name.startswith("param/")}
        return KnowledgeEntry(
            embedding=np.asarray(archive["meta/embedding"],
                                 dtype=float).reshape(-1),
            state=state,
            model_kind=str(archive["meta/model_kind"]),
            disorder=float(archive["meta/disorder"]),
            batch_index=int(archive["meta/batch_index"]),
            created_at=float(archive["meta/created_at"]),
        )

    def readmit(self, path: str | Path) -> KnowledgeEntry:
        """Load a spilled entry back into the in-memory store."""
        entry = self.load_spilled(path)
        self._entries.append(entry)
        if len(self._entries) > self.capacity:
            self._overflow()
        return entry

    # -- restoration -------------------------------------------------------------

    def restore(self, entry: KnowledgeEntry, model) -> None:
        """Load ``entry``'s parameters into ``model`` after a static check.

        The stored ``state_dict`` is verified against the model's resident
        parameters (names, shapes, dtype kinds) *before* anything is
        written.  An incompatible entry — preserved under a different
        architecture, truncated on disk, or re-dtyped — raises a typed
        :class:`~repro.analysis.CheckpointIncompatibleError` and emits a
        :class:`~repro.obs.CheckpointRejected` event instead of failing
        deep inside a numpy broadcast.
        """
        report = check_state_dict(model.state_dict(), entry.state)
        if not report.ok:
            if self.obs.enabled:
                self.obs.emit(CheckpointRejected(
                    source="knowledge",
                    reason=report.problems[0].describe(),
                    problems=len(report.problems),
                    batch=entry.batch_index,
                    model_kind=entry.model_kind,
                ))
                self.obs.registry.counter(
                    "freeway_checkpoints_rejected_total",
                    "checkpoint restores blocked by the compat checker",
                ).labels(source="knowledge").inc()
            report.raise_if_incompatible(
                context=f"knowledge entry from batch {entry.batch_index}"
            )
        model.load_state_dict(entry.state)

    # -- matching ----------------------------------------------------------------

    def match(self, embedding: np.ndarray,
              current_shift: float | None = None) -> KnowledgeMatch | None:
        """Nearest stored distribution to ``embedding`` (Section IV-D.2).

        If ``current_shift`` (:math:`d_t`) is given, the match is returned
        only when the stored distribution is *closer* than the previous
        batch was — the paper's reuse condition.
        """
        if not self._entries:
            return None
        embedding = np.asarray(embedding, dtype=float).reshape(-1)
        distances = np.array([
            np.linalg.norm(entry.embedding - embedding)
            for entry in self._entries
        ])
        best = int(distances.argmin())
        distance = float(distances[best])
        if current_shift is not None and distance >= current_shift:
            return None
        return KnowledgeMatch(entry=self._entries[best], distance=distance)
