"""Multi-time granularity models (paper Section IV-B, Eqs. 12–14).

FreewayML keeps several copies of the user's model, each updated at a
different time granularity:

- the **short**-granularity model updates on every labeled batch, tracking
  directional shifts (Pattern A1) quickly;
- the **long**-granularity model trains on an
  :class:`~repro.core.asw.AdaptiveStreamingWindow` and updates only when
  the window fills, giving stability under localized shifts (Pattern A2).

At inference time the models are blended by how well each one matches the
current data: the *model shift distance* ``D`` (Eq. 12 for short, Eq. 13
for long) is passed through a Gaussian kernel and used as the ensemble
weight (Eq. 14).

The paper defaults to two models (``ModelNum=2``) but allows more; here a
level with window size 1 *is* the short model, so any ladder of window
sizes works without special cases.
"""

from __future__ import annotations

import numpy as np

from ..models.base import StreamingModel
from ..obs import NULL_OBS
from .asw import AdaptiveStreamingWindow

__all__ = ["GranularityLevel", "MultiGranularityEnsemble", "gaussian_kernel"]


def gaussian_kernel(distance: float, sigma: float) -> float:
    """The ensemble weight ``K(D, sigma) = exp(-D^2 / (2 sigma^2))`` (Eq. 14)."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive; got {sigma}")
    return float(np.exp(-(distance * distance) / (2.0 * sigma * sigma)))


class GranularityLevel:
    """One model plus the window that feeds it.

    ``window_batches == 1`` makes this the short-granularity level: every
    batch triggers an immediate update and the reference embedding is the
    last trained batch (Eq. 12).  Larger windows accumulate batches in an
    ASW and update when it fills; the reference embedding is the window's
    decay-weighted mean (Eq. 13).
    """

    def __init__(self, model: StreamingModel, window_batches: int,
                 max_items: int = 1 << 20, base_decay: float = 0.12,
                 update_epochs: int | None = None, precompute: bool = False,
                 seed: int = 0, name: str | None = None, obs=None):
        if window_batches < 1:
            raise ValueError(f"window_batches must be >= 1; got {window_batches}")
        self.model = model
        self.window_batches = window_batches
        # A window level updates once per `window_batches` arrivals, so it
        # takes several passes at update time to keep its gradient-step
        # budget comparable to the short model's one-step-per-batch; the
        # cap bounds the amortized per-batch training cost.
        if update_epochs is None:
            update_epochs = max(2, min(window_batches // 2, 4))
        self.update_epochs = update_epochs
        # Pre-computing window (paper Section V-B): bank each batch's
        # gradient as it arrives, so the window-completion update only
        # aggregates — trading the multi-epoch decayed-window training for
        # minimal completion latency.
        self.precompute = precompute
        self._precompute_window = None
        if precompute:
            if window_batches == 1:
                raise ValueError(
                    "precompute applies to window levels (window_batches > 1)"
                )
            from .precompute import PrecomputingWindow
            from ..models.base import NeuralStreamingModel
            if not isinstance(model, NeuralStreamingModel):
                raise TypeError(
                    "precompute requires a NeuralStreamingModel; got "
                    f"{type(model).__name__}"
                )
            self._precompute_window = PrecomputingWindow(model)
        self.name = name or (
            "short" if window_batches == 1 else f"long-{window_batches}"
        )
        self.obs = obs if obs is not None else NULL_OBS
        if window_batches > 1:
            self.window: AdaptiveStreamingWindow | None = AdaptiveStreamingWindow(
                max_batches=window_batches, max_items=max_items,
                base_decay=base_decay, seed=seed, name=self.name,
                obs=self.obs,
            )
        else:
            self.window = None
        self._reference: np.ndarray | None = None
        self._last_disorder: float = 0.0
        self.updates = 0
        #: EMA of this model's prequential accuracy on labeled batches.
        self.accuracy_ema: float | None = None

    @property
    def is_short(self) -> bool:
        return self.window is None

    @property
    def trained(self) -> bool:
        return self.updates > 0

    @property
    def last_disorder(self) -> float:
        """Window disorder at the most recent completed update."""
        return self._last_disorder

    def reference_embedding(self) -> np.ndarray | None:
        """The distribution this model was last *trained* on.

        Note this is the window mean captured at the most recent completed
        update, not the currently refilling window: right after a shift the
        pending window tracks the new data while the model's weights still
        reflect the old data, and using the pending mean would make a stale
        model look well-matched (Eq. 13 measures model↔data match).
        """
        return self._reference

    def update(self, x: np.ndarray, y: np.ndarray,
               embedding: np.ndarray) -> dict:
        """Feed one labeled batch; train if this level's granularity says so.

        Returns an info dict with ``trained`` (bool), ``loss``, and, for
        window levels that just completed, ``disorder``.
        """
        if self.trained:
            accuracy = float((self.model.predict(x) == y).mean())
            if self.accuracy_ema is None:
                self.accuracy_ema = accuracy
            else:
                self.accuracy_ema = 0.8 * self.accuracy_ema + 0.2 * accuracy
        if self.is_short:
            with self.obs.tracer.span("level.update", level=self.name):
                loss = self.model.partial_fit(x, y)
            self._reference = np.asarray(embedding, dtype=float).reshape(-1)
            self.updates += 1
            self._count_update()
            return {"trained": True, "loss": loss}

        self.window.add(x, y, embedding)
        if self._precompute_window is not None:
            # Gradient banked while "waiting for data" (Section V-B); note
            # it is evaluated at arrival-time parameters and ignores later
            # decay, the same approximation the paper's mechanism makes.
            self._precompute_window.accumulate(x, y)
        if not self.window.is_full:
            return {"trained": False, "loss": None}
        with self.obs.tracer.span("level.update", level=self.name):
            if self._precompute_window is not None:
                self._precompute_window.apply()
                loss = None
            else:
                window_x, window_y = self.window.training_data()
                loss = 0.0
                for _ in range(self.update_epochs):
                    loss = self.model.partial_fit(window_x, window_y)
        self._reference = self.window.mean_embedding()
        self._last_disorder = self.window.disorder
        self.window.reset()
        self.updates += 1
        self._count_update()
        return {"trained": True, "loss": loss,
                "disorder": self._last_disorder}

    def _count_update(self) -> None:
        if self.obs.enabled:
            self.obs.registry.counter(
                "freeway_level_updates_total",
                "model updates per granularity level",
            ).labels(level=self.name).inc()


class MultiGranularityEnsemble:
    """Distance-weighted ensemble over granularity levels (Eqs. 12–14).

    Parameters
    ----------
    model_factory:
        Zero-argument callable producing a fresh :class:`StreamingModel`;
        one copy is created per level.
    window_sizes:
        Max-batch count per level; ``(1, 16)`` reproduces the paper's
        default short + long pair.
    sigma:
        Gaussian-kernel bandwidth for Eq. 14, or ``"auto"`` to track an
        exponential moving average of observed model distances (scale-free
        across datasets).
    exclusion_ratio:
        A level whose model distance exceeds ``exclusion_ratio`` times the
        best level's distance represents a *different* distribution (e.g. a
        long model whose window straddled a concept switch) and is dropped
        from the blend entirely rather than merely down-weighted.
    performance_weighting:
        Multiply each level's kernel weight by the square of its recent
        prequential accuracy (an EMA maintained from the labels that arrive
        at update time).  Extension beyond the paper's pure Eq. 14: on
        concept-only drift the embeddings carry no signal, and accuracy is
        the only evidence of which granularity currently fits.  Disable for
        the literal Eq. 14 blend.
    """

    def __init__(self, model_factory, window_sizes: tuple[int, ...] = (1, 16),
                 max_items: int = 1 << 20, base_decay: float = 0.12,
                 sigma: float | str = "auto", exclusion_ratio: float = 3.0,
                 performance_weighting: bool = True, precompute: bool = False,
                 seed: int = 0, obs=None):
        if exclusion_ratio <= 1.0:
            raise ValueError(
                f"exclusion_ratio must be > 1; got {exclusion_ratio}"
            )
        self.exclusion_ratio = exclusion_ratio
        self.performance_weighting = performance_weighting
        self.precompute = precompute
        if not window_sizes:
            raise ValueError("need at least one granularity level")
        if 1 not in window_sizes:
            raise ValueError(
                "one level must have window size 1 (the short-granularity model)"
            )
        self.obs = obs if obs is not None else NULL_OBS
        self.levels = [
            GranularityLevel(model_factory(), size, max_items=max_items,
                             base_decay=base_decay,
                             precompute=precompute and size > 1,
                             seed=seed + position, obs=self.obs)
            for position, size in enumerate(window_sizes)
        ]
        if isinstance(sigma, str):
            if sigma != "auto":
                raise ValueError(f"sigma must be a float or 'auto'; got {sigma!r}")
            self._auto_sigma = True
            self.sigma = 1.0
        else:
            if sigma <= 0:
                raise ValueError(f"sigma must be positive; got {sigma}")
            self._auto_sigma = False
            self.sigma = float(sigma)
        self.num_classes = self.levels[0].model.num_classes

    @property
    def short_level(self) -> GranularityLevel:
        return next(level for level in self.levels if level.is_short)

    @property
    def long_levels(self) -> list[GranularityLevel]:
        return [level for level in self.levels if not level.is_short]

    @property
    def trained(self) -> bool:
        return any(level.trained for level in self.levels)

    def update(self, x: np.ndarray, y: np.ndarray,
               embedding: np.ndarray) -> list[dict]:
        """Feed one labeled batch to every level; returns per-level info."""
        return [level.update(x, y, embedding) for level in self.levels]

    def model_distances(self, embedding: np.ndarray) -> list[float | None]:
        """Model shift distance ``D`` per level (Eqs. 12–13)."""
        embedding = np.asarray(embedding, dtype=float).reshape(-1)
        distances: list[float | None] = []
        for level in self.levels:
            reference = level.reference_embedding()
            if (reference is None or not level.trained
                    or reference.shape != embedding.shape):
                # A shape mismatch means the reference predates the current
                # embedding space (PCA fitted mid-stream); it carries no
                # usable distance.
                distances.append(None)
            else:
                distances.append(float(np.linalg.norm(embedding - reference)))
        return distances

    def predict_proba(self, x: np.ndarray, embedding: np.ndarray) -> np.ndarray:
        """Gaussian-kernel weighted blend of the levels' predictions (Eq. 14)."""
        distances = self.model_distances(embedding)
        usable = [
            (level, distance)
            for level, distance in zip(self.levels, distances)
            if distance is not None
        ]
        if not usable:
            trained = [level for level in self.levels if level.trained]
            if trained:
                return trained[0].model.predict_proba(x)
            return np.full((len(x), self.num_classes), 1.0 / self.num_classes)

        best = min(distance for _, distance in usable)
        cutoff = self.exclusion_ratio * max(best, 1e-12)
        filtered = [(level, d) for level, d in usable if d <= cutoff]
        if filtered:
            usable = filtered

        if self.performance_weighting:
            # A level persistently behind the best on labeled batches is
            # mis-fit to the current concept (e.g. under concept-only drift
            # the distances above carry no signal); drop it from the blend.
            emas = [level.accuracy_ema for level, _ in usable]
            known = [ema for ema in emas if ema is not None]
            if known:
                best_ema = max(known)
                skilled = [
                    (level, distance) for (level, distance), ema
                    in zip(usable, emas)
                    if ema is None or ema >= best_ema - 0.05
                ]
                if skilled:
                    usable = skilled

        if self._auto_sigma:
            # Track the scale of *well-matched* distances (the minimum), so
            # a model that is far from the data — e.g. a long model whose
            # window straddled a sudden shift — is strongly suppressed
            # rather than blended in at near-uniform weight.
            self.sigma = max(0.9 * self.sigma + 0.1 * max(best, 1e-6), 1e-6)

        weights = np.array(
            [gaussian_kernel(distance, self.sigma) for _, distance in usable]
        )
        if self.performance_weighting:
            skill = np.array([
                (level.accuracy_ema if level.accuracy_ema is not None
                 else 1.0 / self.num_classes) ** 2
                for level, _ in usable
            ])
            weights = weights * skill
        if weights.sum() <= 1e-300:
            # Every model is far from the data; fall back to the nearest one.
            weights = np.zeros(len(usable))
            weights[int(np.argmin([distance for _, distance in usable]))] = 1.0
        weights = weights / weights.sum()
        blended = np.zeros((len(x), self.num_classes))
        for (level, _), weight in zip(usable, weights):
            blended += weight * level.model.predict_proba(x)
        return blended

    def predict(self, x: np.ndarray, embedding: np.ndarray) -> np.ndarray:
        """Hard predictions from the blended distribution."""
        return self.predict_proba(x, embedding).argmax(axis=1)
