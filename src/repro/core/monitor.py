"""Serving monitor: rolling health of a deployed FreewayML learner.

Collects the :class:`~repro.core.learner.BatchReport` stream and maintains
what an operator dashboard needs: rolling accuracy (sliding + fading),
strategy/pattern counts, reuse events, latency percentiles, a one-line
status summary, and a plain-dict :meth:`ServingMonitor.snapshot`.

Two feeding modes:

- **report mode** (default): call :meth:`observe` with each
  :class:`BatchReport`, or wrap a learner with :meth:`track`;
- **event mode** (``consume_events=True``): the monitor acts as an event
  sink — attach it to an :class:`~repro.obs.Observability` facade (e.g.
  ``Observability.to_jsonl(path, extra_sink=monitor)``) and it derives its
  counts from the typed event stream (:class:`~repro.obs.StrategySelected`,
  :class:`~repro.obs.ShiftAssessed`, :class:`~repro.obs.KnowledgeReused`)
  and its latencies from ``learner.predict`` / ``learner.update`` span
  records.  Events are emitted at prediction time, before labels arrive,
  so accuracy is unavailable in this mode.
"""

from __future__ import annotations

from collections import Counter, deque

import numpy as np

from ..metrics.windows import FadingAccuracy, SlidingWindowAccuracy
from ..obs import (
    Event,
    KnowledgeReused,
    ShiftAssessed,
    StrategySelected,
)
from .learner import BatchReport

__all__ = ["ServingMonitor"]


class ServingMonitor:
    """Rolling statistics over a learner's batch reports or event stream.

    Parameters
    ----------
    window:
        Batches in the sliding-accuracy window and the latency reservoir.
    fading_alpha:
        Fading factor for the exponentially weighted accuracy.
    consume_events:
        Build an event-driven monitor: feed it with :meth:`emit` /
        :meth:`observe_event` (it satisfies the sink interface) instead of
        :meth:`observe`.  Guards against mixing the two feeds, which would
        double count.
    """

    def __init__(self, window: int = 50, fading_alpha: float = 0.98,
                 consume_events: bool = False):
        self.consume_events = consume_events
        self.sliding = SlidingWindowAccuracy(window=window)
        self.fading = FadingAccuracy(alpha=fading_alpha)
        self.strategy_counts: Counter = Counter()
        self.pattern_counts: Counter = Counter()
        self.reuse_events = 0
        self.fallbacks = 0
        self.batches = 0
        self.items = 0
        self._predict_seconds: deque[float] = deque(maxlen=window)
        self._update_seconds: deque[float] = deque(maxlen=window)

    def observe(self, report: BatchReport) -> None:
        """Fold one batch report into the rolling statistics."""
        if self.consume_events:
            raise RuntimeError(
                "this monitor was built with consume_events=True; feed it "
                "events via emit()/observe_event(), not BatchReports"
            )
        self.batches += 1
        self.items += report.num_items
        self.strategy_counts[report.strategy] += 1
        self.pattern_counts[report.pattern] += 1
        if report.reused_batch is not None:
            self.reuse_events += 1
        if report.fallback:
            self.fallbacks += 1
        if report.accuracy is not None:
            self.sliding.update(report.accuracy)
            self.fading.update(report.accuracy)
        self._predict_seconds.append(report.predict_seconds)
        self._update_seconds.append(report.update_seconds)

    def track(self, learner, stream):
        """Process a stream through ``learner``, observing every report.

        Yields the reports so the caller's loop is undisturbed.
        """
        for batch in stream:
            report = learner.process(batch)
            self.observe(report)
            yield report

    # -- event-stream consumption (sink interface) ------------------------------

    def emit(self, record) -> None:
        """Sink entry point: accepts typed events and raw span dicts."""
        if isinstance(record, Event):
            self.observe_event(record)
        elif isinstance(record, dict):
            if record.get("kind") == "span":
                self._observe_span(record)
            elif record.get("kind") == "event":
                from ..obs import event_from_dict
                event = event_from_dict(record)
                if event is not None:
                    self.observe_event(event)

    def observe_event(self, event: Event) -> None:
        """Fold one typed pipeline event into the rolling statistics."""
        if not self.consume_events:
            raise RuntimeError(
                "construct with consume_events=True to feed events "
                "(prevents double counting alongside BatchReports)"
            )
        if isinstance(event, StrategySelected):
            self.batches += 1
            self.strategy_counts[event.strategy] += 1
            if event.fallback:
                self.fallbacks += 1
        elif isinstance(event, ShiftAssessed):
            self.pattern_counts[event.pattern] += 1
        elif isinstance(event, KnowledgeReused):
            self.reuse_events += 1

    def _observe_span(self, record: dict) -> None:
        if record.get("name") == "learner.predict":
            self._predict_seconds.append(float(record.get("duration", 0.0)))
        elif record.get("name") == "learner.update":
            self._update_seconds.append(float(record.get("duration", 0.0)))
        # Recurse uniformly: an interesting span can sit under any parent
        # (learner.update nests under a pipeline span, for example), not
        # just under learner.predict.
        for child in record.get("children", ()):
            self._observe_span(child)

    # -- dashboard values -------------------------------------------------------

    @property
    def rolling_accuracy(self) -> float | None:
        """Sliding-window accuracy, ``None`` before any labeled batch."""
        try:
            return self.sliding.value
        except RuntimeError:
            return None

    @property
    def faded_accuracy(self) -> float | None:
        try:
            return self.fading.value
        except RuntimeError:
            return None

    def latency_percentiles(self, q=(50, 95)) -> dict:
        """Predict/update latency percentiles (seconds) over the window."""
        out = {}
        for phase, samples in (("predict", self._predict_seconds),
                               ("update", self._update_seconds)):
            if samples:
                values = np.asarray(samples)
                out[phase] = {f"p{p}": float(np.percentile(values, p))
                              for p in q}
        return out

    def snapshot(self) -> dict:
        """Plain-dict dashboard state (JSON-serializable)."""
        return {
            "batches": self.batches,
            "items": self.items,
            "rolling_accuracy": self.rolling_accuracy,
            "faded_accuracy": self.faded_accuracy,
            "strategy_counts": dict(self.strategy_counts),
            "pattern_counts": dict(self.pattern_counts),
            "reuse_events": self.reuse_events,
            "fallbacks": self.fallbacks,
            "latency": self.latency_percentiles(),
        }

    def summary(self) -> str:
        """One operator-readable status line."""
        if self.batches == 0:
            return "no batches observed"
        accuracy = self.rolling_accuracy
        accuracy_part = (f"acc(window)={accuracy * 100:.1f}%"
                         if accuracy is not None else "acc=n/a")
        strategies = ", ".join(
            f"{name}={count}" for name, count
            in self.strategy_counts.most_common()
        )
        line = (f"{self.batches} batches / {self.items} items | "
                f"{accuracy_part} | strategies: {strategies} | "
                f"reuse={self.reuse_events} fallbacks={self.fallbacks}")
        latency = self.latency_percentiles()
        parts = []
        for phase in ("predict", "update"):
            stats = latency.get(phase)
            if stats:
                parts.append(
                    f"{phase} p50={stats['p50'] * 1e3:.1f}ms "
                    f"p95={stats['p95'] * 1e3:.1f}ms"
                )
        if parts:
            line += " | " + " ".join(parts)
        return line
