"""Serving monitor: rolling health of a deployed FreewayML learner.

Collects the :class:`~repro.core.learner.BatchReport` stream and maintains
what an operator dashboard needs: rolling accuracy (sliding + fading),
strategy/pattern counts, reuse events, latency percentiles, and a one-line
status summary.  Pure bookkeeping — attach with :meth:`observe` or wrap a
learner with :meth:`track`.
"""

from __future__ import annotations

from collections import Counter, deque

import numpy as np

from ..metrics.windows import FadingAccuracy, SlidingWindowAccuracy
from .learner import BatchReport

__all__ = ["ServingMonitor"]


class ServingMonitor:
    """Rolling statistics over a learner's batch reports.

    Parameters
    ----------
    window:
        Batches in the sliding-accuracy window and the latency reservoir.
    fading_alpha:
        Fading factor for the exponentially weighted accuracy.
    """

    def __init__(self, window: int = 50, fading_alpha: float = 0.98):
        self.sliding = SlidingWindowAccuracy(window=window)
        self.fading = FadingAccuracy(alpha=fading_alpha)
        self.strategy_counts: Counter = Counter()
        self.pattern_counts: Counter = Counter()
        self.reuse_events = 0
        self.fallbacks = 0
        self.batches = 0
        self.items = 0
        self._predict_seconds: deque[float] = deque(maxlen=window)
        self._update_seconds: deque[float] = deque(maxlen=window)

    def observe(self, report: BatchReport) -> None:
        """Fold one batch report into the rolling statistics."""
        self.batches += 1
        self.items += report.num_items
        self.strategy_counts[report.strategy] += 1
        self.pattern_counts[report.pattern] += 1
        if report.reused_batch is not None:
            self.reuse_events += 1
        if report.fallback:
            self.fallbacks += 1
        if report.accuracy is not None:
            self.sliding.update(report.accuracy)
            self.fading.update(report.accuracy)
        self._predict_seconds.append(report.predict_seconds)
        self._update_seconds.append(report.update_seconds)

    def track(self, learner, stream):
        """Process a stream through ``learner``, observing every report.

        Yields the reports so the caller's loop is undisturbed.
        """
        for batch in stream:
            report = learner.process(batch)
            self.observe(report)
            yield report

    # -- dashboard values -------------------------------------------------------

    @property
    def rolling_accuracy(self) -> float | None:
        """Sliding-window accuracy, ``None`` before any labeled batch."""
        try:
            return self.sliding.value
        except RuntimeError:
            return None

    @property
    def faded_accuracy(self) -> float | None:
        try:
            return self.fading.value
        except RuntimeError:
            return None

    def latency_percentiles(self, q=(50, 95)) -> dict:
        """Predict/update latency percentiles (seconds) over the window."""
        out = {}
        for phase, samples in (("predict", self._predict_seconds),
                               ("update", self._update_seconds)):
            if samples:
                values = np.asarray(samples)
                out[phase] = {f"p{p}": float(np.percentile(values, p))
                              for p in q}
        return out

    def summary(self) -> str:
        """One operator-readable status line."""
        if self.batches == 0:
            return "no batches observed"
        accuracy = self.rolling_accuracy
        accuracy_part = (f"acc(window)={accuracy * 100:.1f}%"
                         if accuracy is not None else "acc=n/a")
        strategies = ", ".join(
            f"{name}={count}" for name, count
            in self.strategy_counts.most_common()
        )
        return (f"{self.batches} batches / {self.items} items | "
                f"{accuracy_part} | strategies: {strategies} | "
                f"reuse={self.reuse_events} fallbacks={self.fallbacks}")
