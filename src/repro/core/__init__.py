"""``repro.core`` — the FreewayML framework itself.

The paper's primary contribution: the adaptive streaming window, the
multi-time granularity ensemble, coherent experience clustering, historical
knowledge reuse, the strategy selector that routes each batch to exactly
one mechanism, and the :class:`Learner` facade gluing them together, plus
the performance optimizations (pre-computing window, rate-aware adjuster).
"""

from .asw import AdaptiveStreamingWindow, WindowEntry, inversion_count
from .cec import CECResult, CoherentExperienceClustering, ExperienceBuffer
from .knowledge import KnowledgeEntry, KnowledgeMatch, KnowledgeStore
from .learner import BatchReport, Learner, PredictionResult
from .monitor import ServingMonitor
from .multigranularity import (
    GranularityLevel,
    MultiGranularityEnsemble,
    gaussian_kernel,
)
from .persistence import load_learner, save_learner
from .precompute import PrecomputingWindow
from .rate import RateAwareAdjuster
from .selector import Strategy, StrategyDecision, StrategySelector

__all__ = [
    "AdaptiveStreamingWindow",
    "WindowEntry",
    "inversion_count",
    "MultiGranularityEnsemble",
    "GranularityLevel",
    "gaussian_kernel",
    "ExperienceBuffer",
    "CoherentExperienceClustering",
    "CECResult",
    "KnowledgeStore",
    "KnowledgeEntry",
    "KnowledgeMatch",
    "StrategySelector",
    "Strategy",
    "StrategyDecision",
    "PrecomputingWindow",
    "save_learner",
    "load_learner",
    "RateAwareAdjuster",
    "Learner",
    "PredictionResult",
    "BatchReport",
    "ServingMonitor",
]
