"""Experiment runner: frameworks × datasets × models → prequential results.

The benchmark scripts (one per paper table/figure) are thin wrappers around
this module: it knows how to build each model family at the right shape for
a dataset, wrap it in a baseline or in FreewayML, and run the prequential
protocol with matched seeds so every framework sees identical batches and
identical initial weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..api import make_learner
from ..baselines import make_baseline
from ..core.learner import Learner
from ..data import all_benchmark_datasets
from ..distributed.backends import ProcessBackend
from ..metrics.prequential import (
    PrequentialResult,
    evaluate_learner,
    evaluate_model,
)
from ..models import StreamingCNN, StreamingLR, StreamingMLP
from ..obs import Observability, SloEngine

__all__ = ["RunConfig", "model_factory_for", "run_framework", "run_matrix"]

FREEWAYML = "freewayml"
PLAIN = "plain"

#: Default learning rates per model family, chosen so the plain baseline is
#: a competent reference on the benchmark suite (same value for everyone).
DEFAULT_LR = {"lr": 0.5, "mlp": 0.3, "cnn": 0.1}


@dataclass
class RunConfig:
    """Shared knobs for one experiment run."""

    num_batches: int = 100
    batch_size: int = 1024
    model: str = "mlp"             # "lr" | "mlp" | "cnn"
    lr: float | None = None        # None = DEFAULT_LR[model]
    seed: int = 0
    skip: int = 0                  # warm-up batches excluded from G_acc/SI
    #: Replica count for the FreewayML framework; > 1 runs the
    #: data-parallel :class:`~repro.distributed.DistributedLearner`.
    num_workers: int = 1
    #: Execution backend for distributed runs: "serial" | "thread" |
    #: "process" (see :mod:`repro.distributed.backends`).
    backend: str = "serial"
    #: Batches between parameter-averaging rounds (distributed runs).
    sync_every: int = 1
    #: Supervised restarts allowed per worker (process backend only).
    max_restarts: int = 2
    #: Graceful degradation: mechanism failures downgrade along the
    #: fallback chain instead of propagating (see docs/RESILIENCE.md).
    degrade: bool = False
    learner_kwargs: dict = field(default_factory=dict)
    baseline_kwargs: dict = field(default_factory=dict)
    #: Observability facade attached to FreewayML learners, so benchmarks
    #: collect stage-level spans/events alongside the prequential result.
    obs: Observability | None = None
    #: Optional :class:`~repro.perf.HotPathProfiler` attached to the
    #: single-process FreewayML learner (``run --profile``).  Ignored for
    #: distributed runs — per-stage timings from concurrent replicas would
    #: interleave into one meaningless aggregate.
    profiler: object | None = None
    #: Optional :class:`~repro.obs.SloEngine`.  Bound to the FreewayML
    #: learner (so pre-emptive degrade can reach it) and fed one
    #: ``observe_report`` per batch; wire it into ``obs``'s sink chain
    #: separately to also feed it events (``run --serve-telemetry`` does
    #: both).
    slo_engine: SloEngine | None = None
    #: Extra per-batch report callback (after ``slo_engine``'s).
    on_report: object | None = None

    def learning_rate(self) -> float:
        return self.lr if self.lr is not None else DEFAULT_LR[self.model]


def model_factory_for(model: str, num_features: int, num_classes: int,
                      lr: float, seed: int = 0, input_shape=None):
    """Factory for one model family at a dataset's shape."""
    if model == "lr":
        return lambda: StreamingLR(num_features=num_features,
                                   num_classes=num_classes, lr=lr, seed=seed)
    if model == "mlp":
        return lambda: StreamingMLP(num_features=num_features,
                                    num_classes=num_classes, lr=lr, seed=seed)
    if model == "cnn":
        shape = input_shape if input_shape is not None else (num_features,)
        return lambda: StreamingCNN(input_shape=shape,
                                    num_classes=num_classes, lr=lr, seed=seed)
    raise ValueError(f"unknown model family {model!r}")


def _report_hook(config: RunConfig):
    """Chain the SLO engine's per-batch intake with any user callback."""
    callbacks = []
    if config.slo_engine is not None:
        callbacks.append(config.slo_engine.observe_report)
    if config.on_report is not None:
        callbacks.append(config.on_report)
    if not callbacks:
        return None
    if len(callbacks) == 1:
        return callbacks[0]

    def hook(report):
        for callback in callbacks:
            callback(report)
    return hook


def _run_freewayml_distributed(factory, stream, config: RunConfig,
                               on_report, learner_kwargs):
    """Distributed FreewayML path: build the worker pool, then evaluate.

    Kept as its own function so the concurrency analyzer sees exactly one
    thread-pool/fork site pair here, with the invariant spelled out below.
    """
    backend = config.backend
    if backend == "process":
        # Instantiate here so the supervision budget reaches the
        # pool (make_backend takes no options for named defaults).
        backend = ProcessBackend(max_restarts=config.max_restarts)
    learner = make_learner(
        factory, num_workers=config.num_workers,
        backend=backend, sync_every=config.sync_every,
        seed=config.seed, obs=config.obs, **learner_kwargs,
    )
    if config.slo_engine is not None:
        config.slo_engine.bind(learner)
    try:
        # One run drives exactly one backend: the thread pool behind
        # make_learner exists only when backend="thread" and the fork in
        # evaluate_learner's process path only when backend="process", so
        # the thread-then-fork ordering flagged statically cannot occur
        # inside a single run.
        return evaluate_learner(learner, stream, name=FREEWAYML,  # repro: noqa[REP009]
                                skip=config.skip,
                                on_report=on_report)
    finally:
        learner.close()


def run_framework(framework: str, generator, config: RunConfig,
                  input_shape=None) -> PrequentialResult:
    """Run one framework over one dataset generator, prequentially.

    ``framework`` is ``"freewayml"``, ``"plain"`` (the unadorned streaming
    model), or any name in :data:`repro.baselines.BASELINES`.
    """
    factory = model_factory_for(
        config.model, generator.num_features, generator.num_classes,
        config.learning_rate(), seed=config.seed, input_shape=input_shape,
    )
    stream = generator.stream(config.num_batches, batch_size=config.batch_size)
    if framework == FREEWAYML:
        learner_kwargs = dict(config.learner_kwargs)
        if config.degrade:
            learner_kwargs.setdefault("degrade", True)
        on_report = _report_hook(config)
        if config.num_workers > 1 or config.backend != "serial":
            return _run_freewayml_distributed(factory, stream, config,
                                              on_report, learner_kwargs)
        if config.profiler is not None:
            learner_kwargs.setdefault("profiler", config.profiler)
        learner = Learner(factory, seed=config.seed, obs=config.obs,
                          **learner_kwargs)
        if config.slo_engine is not None:
            config.slo_engine.bind(learner)
        return evaluate_learner(learner, stream, name=FREEWAYML,
                                skip=config.skip, on_report=on_report)
    if framework == PLAIN:
        return evaluate_model(factory(), stream, name=PLAIN, skip=config.skip)
    baseline = make_baseline(framework, factory, **config.baseline_kwargs)
    return evaluate_model(baseline, stream, name=framework, skip=config.skip)


def run_matrix(frameworks, datasets: dict | None, config: RunConfig,
               ) -> dict[str, dict[str, PrequentialResult]]:
    """Run every framework over every dataset.

    Returns ``results[dataset][framework]``.  ``datasets`` maps name →
    generator; ``None`` selects the paper's six-dataset benchmark suite.
    Generators are re-seeded per run via their own ``seed``, so every
    framework sees byte-identical streams.
    """
    if datasets is None:
        datasets = all_benchmark_datasets(seed=config.seed)
    results: dict[str, dict[str, PrequentialResult]] = {}
    for dataset_name, generator in datasets.items():
        results[dataset_name] = {}
        for framework in frameworks:
            results[dataset_name][framework] = run_framework(
                framework, generator, config,
            )
    return results
