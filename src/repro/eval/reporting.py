"""Plain-text rendering of experiment results in the paper's table shapes."""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..metrics.prequential import PrequentialResult

__all__ = [
    "format_table",
    "render_accuracy_table",
    "render_series",
    "summarize_reports",
]


def summarize_reports(reports) -> dict:
    """Aggregate any :class:`~repro.api.BaseReport` sequence into one dict.

    Works identically for :class:`~repro.core.learner.BatchReport` and
    :class:`~repro.distributed.DistributedReport` — it reads only the
    unified base fields (``batch_index``, ``num_items``, ``strategy``,
    ``accuracy``, ``latency_s``), which is the point of the shared report
    base: no isinstance dispatch anywhere downstream.
    """
    reports = list(reports)
    if not reports:
        raise ValueError("no reports to summarize")
    accuracies = [r.accuracy for r in reports if r.accuracy is not None]
    latencies = np.asarray([r.latency_s for r in reports])
    items = sum(r.num_items for r in reports)
    total_latency = float(latencies.sum())
    return {
        "batches": len(reports),
        "items": items,
        "first_batch": min(r.batch_index for r in reports),
        "last_batch": max(r.batch_index for r in reports),
        "accuracy": float(np.mean(accuracies)) if accuracies else None,
        "latency_total_s": total_latency,
        "latency_mean_s": float(latencies.mean()),
        "latency_p95_s": float(np.percentile(latencies, 95)),
        "throughput": items / max(total_latency, 1e-12),
        "strategies": dict(Counter(r.strategy for r in reports)),
    }


def format_table(headers: list[str], rows: list[list[str]],
                 title: str | None = None) -> str:
    """Align a list of string rows under headers, markdown-ish."""
    widths = [len(header) for header in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_accuracy_table(results: dict[str, dict[str, PrequentialResult]],
                          title: str = "Accuracy and stability") -> str:
    """Render ``results[dataset][framework]`` as a Table-I-style block.

    One row per framework; per dataset two columns (G_acc, SI); the best
    G_acc per dataset is starred.
    """
    datasets = list(results)
    frameworks: list[str] = []
    for per_dataset in results.values():
        for framework in per_dataset:
            if framework not in frameworks:
                frameworks.append(framework)

    headers = ["framework"]
    for dataset in datasets:
        headers += [f"{dataset} G_acc", f"{dataset} SI"]

    best = {
        dataset: (max(per_dataset.values(), key=lambda r: r.g_acc).name
                  if per_dataset else None)
        for dataset, per_dataset in results.items()
    }
    rows = []
    for framework in frameworks:
        row = [framework]
        for dataset in datasets:
            result = results[dataset].get(framework)
            if result is None:
                row += ["-", "-"]
                continue
            star = "*" if best[dataset] == framework else ""
            row += [f"{result.g_acc * 100:.2f}%{star}", f"{result.si:.3f}"]
        rows.append(row)
    return format_table(headers, rows, title=title)


def render_series(name: str, values, width: int = 60) -> str:
    """Tiny ASCII sparkline of an accuracy series (for figure benches)."""
    values = list(values)
    if not values:
        return f"{name}: (empty)"
    blocks = "▁▂▃▄▅▆▇█"
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    step = max(len(values) // width, 1)
    sampled = values[::step]
    chars = "".join(
        blocks[min(int((value - low) / span * (len(blocks) - 1)),
                   len(blocks) - 1)]
        for value in sampled
    )
    return f"{name:>14s} [{low:.2f}..{high:.2f}] {chars}"
