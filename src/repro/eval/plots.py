"""Dependency-free SVG rendering of experiment results.

The evaluation environment has no matplotlib, but figures still need to be
*looked at*.  This module writes clean standalone SVG files for the two
chart shapes the paper uses: per-batch accuracy line charts (Figures 9/12)
and 2-D shift-graph traces (Figure 2).  Pure string assembly — no drawing
dependency, renders in any browser.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["line_chart_svg", "shift_graph_svg", "save_svg"]

_PALETTE = ["#2563eb", "#dc2626", "#16a34a", "#9333ea", "#ea580c",
            "#0891b2"]


def _scale(values, low, high, out_low, out_high):
    values = np.asarray(values, dtype=float)
    span = (high - low) or 1.0
    return out_low + (values - low) / span * (out_high - out_low)


def _polyline(xs, ys, color, width=2.0, dashed=False):
    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    dash = ' stroke-dasharray="6,4"' if dashed else ""
    return (f'<polyline fill="none" stroke="{color}" '
            f'stroke-width="{width}"{dash} points="{points}"/>')


def _text(x, y, content, size=12, anchor="start", color="#374151"):
    return (f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'font-family="sans-serif" text-anchor="{anchor}" '
            f'fill="{color}">{content}</text>')


def line_chart_svg(series: dict, title: str = "", width: int = 760,
                   height: int = 360, y_label: str = "accuracy",
                   dashed: set | None = None) -> str:
    """Render named series as an SVG line chart.

    ``series`` maps label → sequence of y-values (x is the index); labels
    in ``dashed`` get a dashed stroke (the paper draws baselines dashed).
    """
    if not series:
        raise ValueError("no series to plot")
    dashed = dashed or set()
    margin_left, margin_right = 60, 20
    margin_top, margin_bottom = 40, 40
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    longest = max(len(values) for values in series.values())
    if longest < 2:
        raise ValueError("series need >= 2 points")
    all_values = np.concatenate([np.asarray(v, dtype=float)
                                 for v in series.values()])
    y_low = float(min(all_values.min(), 0.0))
    y_high = float(max(all_values.max(), 1.0))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(_text(width / 2, 22, title, size=15, anchor="middle",
                           color="#111827"))
    # Axes and gridlines.
    for tick in np.linspace(y_low, y_high, 5):
        y = _scale([tick], y_low, y_high, margin_top + plot_h,
                   margin_top)[0]
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" '
            f'x2="{margin_left + plot_w}" y2="{y:.1f}" '
            f'stroke="#e5e7eb" stroke-width="1"/>'
        )
        parts.append(_text(margin_left - 8, y + 4, f"{tick:.2f}",
                           size=11, anchor="end"))
    parts.append(_text(14, margin_top + plot_h / 2, y_label, size=12,
                       anchor="middle"))
    parts.append(_text(margin_left + plot_w / 2, height - 8, "batch",
                       size=12, anchor="middle"))

    for position, (label, values) in enumerate(series.items()):
        values = np.asarray(values, dtype=float)
        xs = _scale(np.arange(len(values)), 0, longest - 1,
                    margin_left, margin_left + plot_w)
        ys = _scale(values, y_low, y_high, margin_top + plot_h, margin_top)
        color = _PALETTE[position % len(_PALETTE)]
        parts.append(_polyline(xs, ys, color, dashed=label in dashed))
        legend_y = margin_top + 16 * position
        parts.append(
            f'<line x1="{margin_left + plot_w - 150}" y1="{legend_y}" '
            f'x2="{margin_left + plot_w - 125}" y2="{legend_y}" '
            f'stroke="{color}" stroke-width="3"/>'
        )
        parts.append(_text(margin_left + plot_w - 118, legend_y + 4, label,
                           size=11))
    parts.append("</svg>")
    return "\n".join(parts)


def shift_graph_svg(points: np.ndarray, accuracies=None, title: str = "",
                    width: int = 520, height: int = 520) -> str:
    """Render a 2-D shift graph: chronological points joined by edges.

    Points are colored by accuracy when provided (red = low, green = high),
    reproducing Figure 2's visual.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2 or len(points) < 2:
        raise ValueError("points must be a (t>=2, 2) array")
    margin = 40
    xs = _scale(points[:, 0], points[:, 0].min(), points[:, 0].max(),
                margin, width - margin)
    ys = _scale(points[:, 1], points[:, 1].min(), points[:, 1].max(),
                height - margin, margin)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(_text(width / 2, 22, title, size=15, anchor="middle",
                           color="#111827"))
    parts.append(_polyline(xs, ys, "#9ca3af", width=1.0))
    for index, (x, y) in enumerate(zip(xs, ys)):
        if accuracies is not None and accuracies[index] is not None:
            level = float(np.clip(accuracies[index], 0.0, 1.0))
            red = int(220 * (1.0 - level))
            green = int(180 * level)
            color = f"rgb({red},{green},60)"
        else:
            color = "#2563eb"
        parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" '
                     f'fill="{color}"/>')
    # Mark the start and end of the trace.
    parts.append(_text(xs[0] + 6, ys[0] - 6, "start", size=11))
    parts.append(_text(xs[-1] + 6, ys[-1] - 6, "end", size=11))
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(svg: str, path: str | Path) -> Path:
    """Write an SVG document to disk, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(svg)
    return path
