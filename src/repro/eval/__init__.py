"""``repro.eval`` — experiment runner and result rendering."""

from .plots import line_chart_svg, save_svg, shift_graph_svg
from .sweeps import SweepCell, sweep_learner
from .reporting import (
    format_table,
    render_accuracy_table,
    render_series,
    summarize_reports,
)
from .runner import RunConfig, model_factory_for, run_framework, run_matrix

__all__ = [
    "RunConfig",
    "model_factory_for",
    "run_framework",
    "run_matrix",
    "format_table",
    "render_accuracy_table",
    "render_series",
    "summarize_reports",
    "line_chart_svg",
    "shift_graph_svg",
    "save_svg",
    "SweepCell",
    "sweep_learner",
]
