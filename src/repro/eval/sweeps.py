"""Hyperparameter sweep utilities.

A reproduction should show not just that the defaults work but how
sensitive the result is to the paper's knobs (alpha, the ASW size, the
disorder threshold beta...).  :func:`sweep_learner` runs a grid of Learner
configurations over identical streams and tabulates G_acc / SI per cell.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.learner import Learner
from ..metrics.prequential import PrequentialResult, evaluate_learner

__all__ = ["SweepCell", "sweep_learner"]


@dataclass
class SweepCell:
    """One grid point of a sweep."""

    params: dict
    result: PrequentialResult

    @property
    def g_acc(self) -> float:
        return self.result.g_acc

    @property
    def si(self) -> float:
        return self.result.si


def sweep_learner(model_factory, generator, grid: dict,
                  num_batches: int = 60, batch_size: int = 256,
                  base_kwargs: dict | None = None) -> list[SweepCell]:
    """Run a full factorial sweep of :class:`Learner` parameters.

    Parameters
    ----------
    model_factory:
        Forwarded to every Learner.
    generator:
        Dataset generator (its ``stream`` is re-created per cell, so every
        configuration sees identical batches).
    grid:
        Mapping of Learner keyword → list of values, e.g.
        ``{"alpha": [1.0, 1.96, 3.0], "window_batches": [4, 16]}``.
    base_kwargs:
        Fixed Learner keywords applied to every cell.

    Returns the list of :class:`SweepCell`, in grid order.
    """
    if not grid:
        raise ValueError("grid must name at least one parameter")
    base_kwargs = dict(base_kwargs or {})
    names = list(grid)
    cells: list[SweepCell] = []
    for values in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, values))
        learner = Learner(model_factory, **base_kwargs, **params)
        stream = generator.stream(num_batches, batch_size=batch_size)
        result = evaluate_learner(learner, stream,
                                  name=str(params))
        cells.append(SweepCell(params=params, result=result))
    return cells
