"""The asyncio serving front end: admission control and micro-batching.

:class:`StreamingService` multiplexes per-tenant request streams onto one
process.  Requests for a tenant coalesce into
:class:`~repro.data.stream.Batch` micro-batches (count-based flush with a
latency-bounding timeout); bounded per-tenant and global pending queues
shed load by policy (:data:`~repro.serving.config.SHED_POLICIES`); a
per-tenant circuit breaker stops admitting a tenant whose requests keep
failing; and an optional watermark couples queue pressure to the PR-4
degrade chain (resident estimators flip into graceful degradation when the
global queue saturates).

Everything runs on one event loop — submissions and the single dispatcher
task interleave cooperatively, so no locks guard service state and
per-tenant processing is serial by construction.  That serial order is
what makes serving *reproducible*: :meth:`StreamingService.grouping`
records how many requests each processed micro-batch coalesced, so a
tenant's accepted requests replayed serially through a fresh estimator
with the same groupings produce byte-identical predictions (the
``bench_serving`` equivalence assertion).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..data.stream import Batch
from ..obs import NULL_OBS, RequestShed
from ..perf.config import config as _perf_config
from ..resilience.degrade import CircuitBreaker
from .config import ServeConfig
from .registry import SessionRegistry
from .stacked import execute_stacked, plan_stacked_groups, stacking_key

__all__ = ["ServeResult", "StreamingService", "predict_and_update",
           "serve_requests"]


def predict_and_update(estimator, x, y=None) -> np.ndarray:
    """One prequential serving step; returns the predicted labels.

    Mirrors :meth:`~repro.core.learner.Learner.process` exactly — predict,
    then (for labeled requests) update with the prediction's embedding so
    the PCA projection is not recomputed — without building a report.  The
    serial replay in ``bench_serving`` uses this same helper, which is
    what makes served and serial prediction sequences comparable.
    """
    prediction = estimator.predict(x)
    labels = np.asarray(getattr(prediction, "labels", prediction))
    if y is not None:
        assessment = getattr(prediction, "assessment", None)
        if assessment is not None:
            estimator.update(x, y, embedding=assessment.embedding)
        else:
            estimator.update(x, y)
    return labels


@dataclass
class ServeResult:
    """Outcome of one submitted request."""

    tenant: str
    #: ``"ok"`` (served), ``"shed"`` (admission control refused it), or
    #: ``"failed"`` (admitted but processing raised / input was invalid).
    status: str
    reason: str = ""
    #: Predicted labels for the request's rows (``status == "ok"`` only).
    labels: np.ndarray | None = None
    #: Per-tenant index of the micro-batch that served this request.
    batch_index: int = -1
    #: Requests coalesced into that micro-batch.
    group_size: int = 0
    #: Submit-to-resolve wall time.
    latency_s: float = 0.0

    @property
    def accepted(self) -> bool:
        return self.status == "ok"


class _Request:
    __slots__ = ("x", "y", "rows", "future", "submitted_at")

    def __init__(self, x, y, future):
        self.x = x
        self.y = y
        self.rows = len(x)
        self.future = future
        self.submitted_at = time.perf_counter()


@dataclass
class _TenantState:
    """Per-tenant serving state, owned by the event loop."""

    pending: deque = field(default_factory=deque)
    pending_rows: int = 0
    #: True while the tenant sits in the dispatch work queue.
    signaled: bool = False
    #: Monotonic flush-timer generation; stale timer callbacks no-op.
    timer_generation: int = 0
    #: Micro-batches processed (the per-tenant ``Batch.index`` sequence).
    batches: int = 0
    #: Requests coalesced per processed micro-batch, in order.
    grouping: list = field(default_factory=list)
    #: Serializes same-tenant submitters (FIFO under the block policy).
    gate: asyncio.Lock = field(default_factory=asyncio.Lock)


class StreamingService:
    """Multi-tenant serving: admission → micro-batching → session registry.

    Construct with a :class:`~repro.serving.ServeConfig` and a
    :class:`~repro.serving.SessionRegistry` (whose capacity bounds
    resident estimators), then drive it from a running event loop::

        service = StreamingService(config, registry)
        await service.start()
        result = await service.submit("tenant-7", x, y)
        await service.stop()

    or use :func:`serve_requests` for a synchronous batch of requests.
    """

    def __init__(self, config: ServeConfig, registry: SessionRegistry,
                 obs=None):
        self.config = config
        self.registry = registry
        self.obs = obs if obs is not None else NULL_OBS
        self.breaker = CircuitBreaker(threshold=config.breaker_threshold,
                                      cooldown=config.breaker_cooldown)
        self._tenants: dict[str, _TenantState] = {}
        self._work: asyncio.Queue = asyncio.Queue()
        self._capacity_freed = asyncio.Event()
        self._pending_total = 0
        self._dispatcher: asyncio.Task | None = None
        self._degrading = False
        self.requests_ok = 0
        self.requests_shed = 0
        self.requests_failed = 0
        #: Micro-batches served through a stacked program / groups formed.
        self.batches_stacked = 0
        self.stacked_groups = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self._dispatcher is not None:
            raise RuntimeError("service already started")
        if self.registry.on_activate is None:
            self.registry.on_activate = self._on_activate
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop())

    async def stop(self) -> None:
        """Drain every pending request, stop dispatching, close sessions."""
        if self._dispatcher is None:
            return
        while self._pending_total and not self._dispatcher.done():
            for tenant, state in self._tenants.items():
                if state.pending and not state.signaled:
                    self._signal(tenant)
            await asyncio.sleep(0)  # let the dispatcher drain
        await self._work.put(None)
        await self._dispatcher
        self._dispatcher = None
        self.registry.close()

    async def __aenter__(self) -> "StreamingService":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -- admission -----------------------------------------------------------

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState()
        return state

    @staticmethod
    def _validate(x, y):
        """Normalize one request's payload; raises ValueError when bad."""
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2 or x.shape[0] == 0 or x.shape[1] == 0:
            raise ValueError(f"x must be a non-empty 2-D batch; got shape "
                             f"{x.shape}")
        if not np.isfinite(x).all():
            raise ValueError("x contains non-finite values")
        if y is not None:
            y = np.asarray(y).reshape(-1)
            if len(y) != len(x):
                raise ValueError(
                    f"y has {len(y)} labels for {len(x)} rows")
        return x, y

    def _shed(self, tenant: str, reason: str,
              request: _Request | None = None) -> ServeResult:
        self.requests_shed += 1
        result = ServeResult(tenant=tenant, status="shed", reason=reason)
        if request is not None:
            result.latency_s = time.perf_counter() - request.submitted_at
            if not request.future.done():
                request.future.set_result(result)
        if self.obs.enabled:
            self.obs.emit(RequestShed(tenant=tenant, reason=reason,
                                      pending=self._pending_total))
            self._count_request("shed", tenant)
        return result

    def _count_request(self, outcome: str, tenant: str) -> None:
        counter = self.obs.registry.counter(
            "freeway_serving_requests_total", "serving requests by outcome",
        )
        if self.config.tenant_metrics:
            counter.labels(outcome=outcome, tenant=tenant).inc()
        else:
            counter.labels(outcome=outcome).inc()

    async def submit(self, tenant: str, x, y=None) -> ServeResult:
        """Submit one request; resolves when served, shed, or failed.

        ``y`` labels make the request prequential (predict, then train on
        it); ``y=None`` is inference-only.  Requests of one tenant are
        served in submission order; labeled and unlabeled requests never
        share a micro-batch.
        """
        if self._dispatcher is None:
            raise RuntimeError("service is not started")
        try:
            x, y = self._validate(x, y)
        except ValueError as exc:
            self.requests_failed += 1
            if self.obs.enabled:
                self._count_request("failed", tenant)
            return ServeResult(tenant=tenant, status="failed",
                               reason=f"invalid-input: {exc}")
        state = self._state(tenant)
        async with state.gate:
            if self.breaker.is_open(tenant):
                return self._shed(tenant, "circuit-open")
            admitted = await self._admit(tenant, state)
            if not admitted:
                return self._shed(tenant, admitted.reason)
            future = asyncio.get_running_loop().create_future()
            request = _Request(x, y, future)
            state.pending.append(request)
            state.pending_rows += request.rows
            self._pending_total += 1
            self._apply_pressure()
            if state.pending_rows >= self.config.microbatch_size:
                self._signal(tenant)
            elif not state.signaled:
                self._arm_timer(tenant, state)
        return await future

    class _Admission:
        """Truthy when admitted; carries the shed reason otherwise."""

        __slots__ = ("ok", "reason")

        def __init__(self, ok: bool, reason: str = ""):
            self.ok = ok
            self.reason = reason

        def __bool__(self) -> bool:
            return self.ok

    async def _admit(self, tenant: str, state: _TenantState) -> "_Admission":
        config = self.config
        policy = config.shed_policy
        while True:
            tenant_full = len(state.pending) >= config.max_pending_per_tenant
            global_full = self._pending_total >= config.max_pending_total
            if not tenant_full and not global_full:
                return self._Admission(True)
            if policy == "reject":
                return self._Admission(
                    False, "tenant-queue-full" if tenant_full
                    else "global-queue-full")
            if policy == "oldest":
                if state.pending:
                    displaced = state.pending.popleft()
                    state.pending_rows -= displaced.rows
                    self._pending_total -= 1
                    self._shed(tenant, "displaced", displaced)
                    continue
                # Nothing of this tenant's to displace: the pressure is
                # global and belongs to other tenants' queues.
                return self._Admission(False, "global-queue-full")
            # policy == "block": wait for the dispatcher to free capacity.
            self._capacity_freed.clear()
            await self._capacity_freed.wait()

    def _signal(self, tenant: str) -> None:
        state = self._tenants[tenant]
        if not state.signaled:
            state.signaled = True
            state.timer_generation += 1  # cancel any armed flush timer
            self._work.put_nowait(tenant)

    def _arm_timer(self, tenant: str, state: _TenantState) -> None:
        state.timer_generation += 1
        generation = state.timer_generation
        asyncio.get_running_loop().call_later(
            self.config.microbatch_timeout_s,
            self._timer_fired, tenant, generation)

    def _timer_fired(self, tenant: str, generation: int) -> None:
        state = self._tenants.get(tenant)
        if (state is None or state.timer_generation != generation
                or state.signaled or not state.pending):
            return
        self._signal(tenant)

    # -- dispatch ------------------------------------------------------------

    def _stacked_enabled(self) -> bool:
        return self.config.stacked_execution and _perf_config.stacked_exec

    async def _dispatch_loop(self) -> None:
        while True:
            tenant = await self._work.get()
            if tenant is None:
                return
            ready = [tenant]
            stopping = False
            if self._stacked_enabled():
                # Drain every already-signaled tenant so same-architecture
                # micro-batches that are ready together can co-schedule.
                while True:
                    try:
                        extra = self._work.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if extra is None:
                        # stop() only enqueues the sentinel once nothing is
                        # pending; finish this round, then exit.
                        stopping = True
                        break
                    ready.append(extra)
            jobs = []
            for name in ready:
                state = self._tenants[name]
                state.signaled = False
                requests = self._take_microbatch(state)
                if requests:
                    jobs.append((name, state, requests))
            if jobs:
                if len(jobs) > 1:
                    self._process_coscheduled(jobs)
                else:
                    self._process(*jobs[0])
                self._capacity_freed.set()
                self._apply_pressure()
            for name in ready:
                state = self._tenants[name]
                if state.pending_rows >= self.config.microbatch_size:
                    self._signal(name)
                elif state.pending:
                    self._arm_timer(name, state)
            if stopping:
                return
            # Yield so queued submitters interleave with dispatch.
            await asyncio.sleep(0)

    def _take_microbatch(self, state: _TenantState) -> list[_Request]:
        """Pop whole requests until the row target is met.

        Labeled and unlabeled requests never mix (a coalesced Batch is
        labeled or not as a unit), and at least one request is always
        taken, so an oversized single request still dispatches.
        """
        taken: list[_Request] = []
        rows = 0
        labeled: bool | None = None
        while state.pending and rows < self.config.microbatch_size:
            request = state.pending[0]
            request_labeled = request.y is not None
            if labeled is not None and request_labeled != labeled:
                break
            labeled = request_labeled
            state.pending.popleft()
            taken.append(request)
            rows += request.rows
        state.pending_rows -= rows
        self._pending_total -= len(taken)
        return taken

    def _process(self, tenant: str, state: _TenantState,
                 requests: list[_Request]) -> None:
        self.breaker.tick()
        try:
            with self.registry.session(tenant) as estimator:
                self._process_with(tenant, state, requests, estimator)
        except Exception as exc:  # repro: noqa[REP004] — one tenant's failure must not kill the service; the breaker sheds repeat offenders
            self._resolve_failure(tenant, state, requests, exc)

    def _process_with(self, tenant: str, state: _TenantState,
                      requests: list[_Request], estimator) -> None:
        """Serve one coalesced micro-batch on an already-pinned estimator.

        Estimator exceptions propagate; callers resolve them through
        :meth:`_resolve_failure`.
        """
        x = np.vstack([request.x for request in requests])
        y = (np.concatenate([request.y for request in requests])
             if requests[0].y is not None else None)
        batch = Batch(x, y, index=state.batches)
        labels = predict_and_update(estimator, batch.x, batch.y)
        self._resolve_success(tenant, state, requests, labels)

    def _resolve_failure(self, tenant: str, state: _TenantState,
                         requests: list[_Request], exc: Exception) -> None:
        self.breaker.record_failure(tenant)
        self.requests_failed += len(requests)
        reason = f"{type(exc).__name__}: {exc}"
        batch_index = state.batches
        for request in requests:
            if not request.future.done():
                request.future.set_result(ServeResult(
                    tenant=tenant, status="failed", reason=reason,
                    batch_index=batch_index,
                    group_size=len(requests),
                    latency_s=(time.perf_counter()
                               - request.submitted_at),
                ))
        if self.obs.enabled:
            for _ in requests:
                self._count_request("failed", tenant)

    def _resolve_success(self, tenant: str, state: _TenantState,
                         requests: list[_Request], labels) -> None:
        self.breaker.record_success(tenant)
        batch_index = state.batches
        state.batches += 1
        state.grouping.append(len(requests))
        self.requests_ok += len(requests)
        offset = 0
        now = time.perf_counter()
        for request in requests:
            request_labels = labels[offset:offset + request.rows]
            offset += request.rows
            if not request.future.done():
                request.future.set_result(ServeResult(
                    tenant=tenant, status="ok",
                    labels=request_labels, batch_index=batch_index,
                    group_size=len(requests),
                    latency_s=now - request.submitted_at,
                ))
        if self.obs.enabled:
            histogram = self.obs.registry.histogram(
                "freeway_serving_latency_seconds",
                "submit-to-resolve request latency",
            )
            for request in requests:
                self._count_request("ok", tenant)
                histogram.observe(now - request.submitted_at)

    # -- stacked co-scheduling -----------------------------------------------

    def _process_coscheduled(self, jobs: list) -> None:
        """Serve one dispatch round of several tenants' micro-batches.

        Micro-batches sharing a :func:`~repro.serving.stacked.stacking_key`
        execute through one stacked tensor program (bitwise-equivalent per
        tenant to the serial path); everything else — and any group whose
        stacked execution fails — runs serially, per tenant.
        """
        entries = []
        pinned = []
        for tenant, state, requests in jobs:
            self.breaker.tick()
            try:
                estimator = self.registry.acquire(tenant)
            except Exception as exc:  # repro: noqa[REP004] — an activation failure is this tenant's failure, not the round's
                self._resolve_failure(tenant, state, requests, exc)
                continue
            pinned.append(tenant)
            entries.append((tenant, state, requests, estimator))
        try:
            plan = plan_stacked_groups(
                entries,
                key_of=lambda entry: stacking_key(
                    entry[3],
                    rows=sum(request.rows for request in entry[2]),
                    labeled=entry[2][0].y is not None),
                min_group=self.config.stacked_min_group)
            for group in plan.groups:
                self._run_stacked_group(group)
            for tenant, state, requests, estimator in plan.singles:
                self._run_serial_job(tenant, state, requests, estimator)
        finally:
            for tenant in pinned:
                self.registry.release(tenant)

    def _run_serial_job(self, tenant: str, state: _TenantState,
                        requests: list[_Request], estimator) -> None:
        try:
            self._process_with(tenant, state, requests, estimator)
        except Exception as exc:  # repro: noqa[REP004] — one tenant's failure must not kill the dispatch round
            self._resolve_failure(tenant, state, requests, exc)

    def _run_stacked_group(self, group: list) -> None:
        try:
            labels = execute_stacked(
                [entry[3] for entry in group],
                [np.vstack([request.x for request in entry[2]])
                 for entry in group],
                [np.concatenate([request.y for request in entry[2]])
                 if entry[2][0].y is not None else None
                 for entry in group])
        except Exception:  # repro: noqa[REP004] — a failed stacked program degrades to the serial per-tenant path (source models are only written after a full step, so serial re-execution is clean)
            for entry in group:
                self._run_serial_job(*entry)
            return
        self.stacked_groups += 1
        self.batches_stacked += len(group)
        for entry, tenant_labels in zip(group, labels):
            tenant, state, requests, _estimator = entry
            self._resolve_success(tenant, state, requests, tenant_labels)
        if self.obs.enabled:
            self.obs.registry.counter(
                "freeway_serving_stacked_batches_total",
                "micro-batches served through a stacked tensor program",
            ).inc(len(group))
            self.obs.registry.histogram(
                "freeway_serving_stacked_group_size",
                "tenants co-scheduled per stacked program",
                buckets=(2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
            ).observe(len(group))

    # -- pressure → degrade coupling ----------------------------------------

    def _apply_pressure(self) -> None:
        high = self.config.degrade_high_watermark
        if high is None:
            return
        fraction = self._pending_total / self.config.max_pending_total
        if not self._degrading and fraction >= high:
            self._set_degrade(True)
        elif self._degrading and fraction <= self.config.degrade_low_watermark:
            self._set_degrade(False)

    def _set_degrade(self, degrade: bool) -> None:
        self._degrading = degrade
        for _tenant, estimator in self.registry.resident_estimators():
            set_degrade = getattr(estimator, "set_degrade", None)
            if set_degrade is not None:
                set_degrade(degrade)

    def _on_activate(self, tenant: str, estimator) -> None:
        """Registry callback: newly resident estimators inherit the
        service's current degrade posture."""
        if self._degrading:
            set_degrade = getattr(estimator, "set_degrade", None)
            if set_degrade is not None:
                set_degrade(True)

    # -- introspection -------------------------------------------------------

    def grouping(self, tenant: str) -> list[int]:
        """Requests coalesced per processed micro-batch, in batch order."""
        state = self._tenants.get(tenant)
        return list(state.grouping) if state is not None else []

    def summary(self) -> dict:
        """Service state as a plain dict.

        The ``breaker``/``degraded`` keys follow the learner summary's
        shape, so a :class:`~repro.obs.TelemetryServer` with this summary
        as its ``health_source`` surfaces open tenant circuits and the
        degrade posture on ``/health`` unchanged.
        """
        return {
            "estimator": "serving",
            "requests_ok": self.requests_ok,
            "requests_shed": self.requests_shed,
            "requests_failed": self.requests_failed,
            "batches_stacked": self.batches_stacked,
            "stacked_groups": self.stacked_groups,
            "pending": self._pending_total,
            "tenants_seen": len(self._tenants),
            "degraded": self._degrading,
            "breaker": self.breaker.snapshot(),
            "registry": self.registry.stats(),
        }


def serve_requests(config: ServeConfig, registry: SessionRegistry,
                   requests, *, obs=None, window: int = 256):
    """Serve a finite request sequence synchronously.

    ``requests`` is an iterable of ``(tenant, x)`` or ``(tenant, x, y)``
    tuples.  Submissions run concurrently inside a bounded window (so
    micro-batching and queue bounds actually engage) but are *created* in
    input order, which preserves each tenant's submission order.  Returns
    ``(results, service)`` with ``results`` in input order; the returned
    service is stopped and exposes ``summary()``/``grouping()``.
    """
    prepared = []
    for entry in requests:
        tenant, x = entry[0], entry[1]
        y = entry[2] if len(entry) > 2 else None
        prepared.append((tenant, x, y))

    service = StreamingService(config, registry, obs=obs)

    async def _run():
        gate = asyncio.Semaphore(window)

        async def _one(tenant, x, y):
            async with gate:
                return await service.submit(tenant, x, y)

        async with service:
            tasks = [asyncio.get_running_loop().create_task(
                _one(tenant, x, y)) for tenant, x, y in prepared]
            return await asyncio.gather(*tasks)

    results = asyncio.run(_run())
    return list(results), service
