"""Tenant session registry: LRU activation over checkpointing stores.

The serving front end multiplexes thousands of tenants onto one process,
but only :attr:`capacity` of them hold a live estimator at a time.  The
:class:`SessionRegistry` keeps resident sessions in LRU order; acquiring a
cold tenant *rehydrates* it from its checkpoint (or builds it fresh), and
the displaced LRU victim checkpoints out through a :class:`CheckpointStore`
and is :meth:`closed <repro.api.StreamingEstimator.close>` — the estimator
lifecycle contract is what lets the registry retire any estimator
uniformly.

Rehydration is **single-flight**: per-tenant flight locks serialize
concurrent activations of the same tenant, so a thundering herd on a cold
tenant loads its checkpoint exactly once.  Eviction saves the victim under
the *victim's* flight lock, so a concurrent re-activation of the victim
waits for the checkpoint instead of reading a stale one.

Lock order (deadlock-free): a flight lock is always taken before the
registry lock, never the reverse, and the only nested flight-lock
acquisition is an activator (holding its own tenant's flight lock, with
that tenant pinned) evicting an *unpinned* victim — a pinned tenant is
never selected as a victim, so flight-lock wait edges cannot cycle.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..core.learner import Learner
from ..core.persistence import (
    learner_state,
    load_learner,
    restore_learner_state,
    save_learner,
)
from ..obs import NULL_OBS, TenantActivated, TenantEvicted

__all__ = [
    "CheckpointStore",
    "MemoryCheckpointStore",
    "DirCheckpointStore",
    "NullCheckpointStore",
    "SessionRegistry",
]


class CheckpointStore:
    """Where cold tenants' state lives between activations.

    ``save`` checkpoints an estimator under a tenant key and returns the
    bytes written; ``load`` restores a previously saved checkpoint into a
    freshly built estimator and returns True (False when the tenant has
    none); ``__contains__`` answers whether a checkpoint exists.  The
    bundled stores checkpoint :class:`~repro.core.learner.Learner` state
    through :mod:`repro.core.persistence`
    (:class:`MemoryCheckpointStore` additionally accepts any estimator
    exposing ``state_dict()``/``load_state_dict()``) and raise
    :class:`TypeError` for other estimator types — those need a custom
    store (or :class:`NullCheckpointStore` when losing cold state is
    acceptable).
    """

    def save(self, tenant: str, estimator) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def load(self, tenant: str, estimator) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def __contains__(self, tenant: str) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


def _require_learner(estimator, store_name: str) -> Learner:
    if not isinstance(estimator, Learner):
        raise TypeError(
            f"{store_name} checkpoints Learner state; got "
            f"{type(estimator).__name__} (use a custom CheckpointStore "
            f"or NullCheckpointStore for other estimators)"
        )
    return estimator


def _check_checkpointable(estimator, store_name: str) -> None:
    if isinstance(estimator, Learner):
        return
    if getattr(estimator, "state_dict", None) is None:
        raise TypeError(
            f"{store_name} checkpoints Learner state or estimators with "
            f"state_dict()/load_state_dict(); got "
            f"{type(estimator).__name__} (use a custom CheckpointStore "
            f"or NullCheckpointStore for other estimators)"
        )


def _checkpoint_state(estimator, store_name: str) -> tuple[dict, object]:
    """``(arrays, json-able meta)`` for any checkpointable estimator.

    ``Learner`` state goes through :mod:`repro.core.persistence`; other
    estimators must expose ``state_dict()`` returning a flat name → array
    mapping (their meta slot stays ``None``).
    """
    _check_checkpointable(estimator, store_name)
    if isinstance(estimator, Learner):
        return learner_state(estimator)
    return {name: np.asarray(value)
            for name, value in estimator.state_dict().items()}, None


def _restore_state(estimator, arrays: dict, meta) -> None:
    if isinstance(estimator, Learner):
        restore_learner_state(estimator, arrays, meta)
    else:
        estimator.load_state_dict(arrays)


class NullCheckpointStore(CheckpointStore):
    """Keeps nothing: evicted tenants restart cold on re-activation."""

    def save(self, tenant: str, estimator) -> int:
        return 0

    def load(self, tenant: str, estimator) -> bool:
        return False

    def __contains__(self, tenant: str) -> bool:
        return False


class MemoryCheckpointStore(CheckpointStore):
    """In-process store holding deep-copied checkpoint state per tenant.

    Checkpoints :class:`~repro.core.learner.Learner` state through
    :mod:`repro.core.persistence`, and any other estimator exposing
    ``state_dict()``/``load_state_dict()`` (e.g. :class:`~repro.serving.
    ModelEstimator`) as its flat array mapping.  Arrays are copied on
    save *and* load, and metadata round-trips through JSON, so a stored
    checkpoint can never alias a live estimator's buffers.  Thread-safe:
    the registry evicts from whatever thread hit capacity.
    """

    def __init__(self):
        self._checkpoints: dict[str, tuple[dict, str]] = {}
        self._lock = threading.Lock()

    def save(self, tenant: str, estimator) -> int:
        arrays, meta = _checkpoint_state(estimator, type(self).__name__)
        copied = {name: np.array(value, copy=True)
                  for name, value in arrays.items()}
        encoded = json.dumps(meta)
        with self._lock:
            self._checkpoints[tenant] = (copied, encoded)
        return (sum(value.nbytes for value in copied.values())
                + len(encoded))

    def load(self, tenant: str, estimator) -> bool:
        # Type-check before touching the map so an unsupported estimator
        # fails loudly even when the tenant has no checkpoint yet.
        _check_checkpointable(estimator, type(self).__name__)
        with self._lock:
            checkpoint = self._checkpoints.get(tenant)
        if checkpoint is None:
            return False
        arrays, encoded = checkpoint
        _restore_state(
            estimator,
            {name: np.array(value, copy=True)
             for name, value in arrays.items()},
            json.loads(encoded),
        )
        return True

    def __contains__(self, tenant: str) -> bool:
        with self._lock:
            return tenant in self._checkpoints

    def __len__(self) -> int:
        with self._lock:
            return len(self._checkpoints)


class DirCheckpointStore(CheckpointStore):
    """Durable store: one ``.npz`` checkpoint per tenant in a directory."""

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, tenant: str) -> Path:
        # Tenant names are caller-chosen; keep the filename filesystem-safe
        # and collision-free ("a/b" and "a_b" must not share a file).
        safe = re.sub(r"[^A-Za-z0-9._-]", "_", tenant)[:80]
        digest = hashlib.sha1(tenant.encode("utf-8")).hexdigest()[:10]
        return self.directory / f"{safe}-{digest}.npz"

    def save(self, tenant: str, estimator) -> int:
        learner = _require_learner(estimator, type(self).__name__)
        return save_learner(learner, self._path(tenant))

    def load(self, tenant: str, estimator) -> bool:
        learner = _require_learner(estimator, type(self).__name__)
        path = self._path(tenant)
        if not path.exists():
            return False
        load_learner(learner, path)
        return True

    def __contains__(self, tenant: str) -> bool:
        return self._path(tenant).exists()


class _Session:
    """One resident tenant: its live estimator plus a pin count."""

    __slots__ = ("estimator", "pins")

    def __init__(self, estimator):
        self.estimator = estimator
        self.pins = 0


class SessionRegistry:
    """tenant → estimator map with LRU activation and pinning.

    Parameters
    ----------
    factory:
        ``factory(tenant) -> estimator`` building a *fresh* estimator for
        a tenant seen for the first time (or as the rehydration target).
        Every tenant's factory output must be checkpoint-compatible with
        its previous incarnations (same model architecture).
    capacity:
        Resident-session bound.  When every resident session is pinned the
        registry overshoots temporarily rather than evicting in-use state;
        the overshoot drains as pins release and later activations evict.
    store:
        The :class:`CheckpointStore` cold tenants swap through; defaults
        to a fresh :class:`MemoryCheckpointStore`.
    obs:
        Optional observability facade; activation/eviction emit
        :class:`~repro.obs.TenantActivated` / :class:`~repro.obs.
        TenantEvicted` events and aggregate counters.
    on_activate:
        Optional ``on_activate(tenant, estimator)`` callback invoked after
        a session becomes resident (the serving layer uses it to apply the
        current degrade posture to newly activated estimators).
    """

    def __init__(self, factory, *, capacity: int,
                 store: CheckpointStore | None = None, obs=None,
                 on_activate=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1; got {capacity}")
        self.factory = factory
        self.capacity = capacity
        self.store = store if store is not None else MemoryCheckpointStore()
        self.obs = obs if obs is not None else NULL_OBS
        self.on_activate = on_activate
        self._lock = threading.Lock()
        self._sessions: OrderedDict[str, _Session] = OrderedDict()
        # Per-tenant flight locks (never pruned: one small lock per tenant
        # ever seen keeps single-flight correct without lifecycle races).
        self._flights: dict[str, threading.Lock] = {}
        self.activations = 0
        self.rehydrations = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def resident(self) -> list[str]:
        """Tenants currently holding a live estimator, LRU first."""
        with self._lock:
            return list(self._sessions)

    def resident_estimators(self) -> list[tuple[str, object]]:
        """Snapshot of ``(tenant, estimator)`` pairs for resident sessions.

        Estimators in the snapshot may be evicted concurrently; callers
        must tolerate acting on a just-closed estimator (both
        ``set_degrade`` and ``close`` are safe on a closed ``Learner``).
        """
        with self._lock:
            return [(tenant, session.estimator)
                    for tenant, session in self._sessions.items()]

    def stats(self) -> dict:
        with self._lock:
            return {
                "active": len(self._sessions),
                "capacity": self.capacity,
                "activations": self.activations,
                "rehydrations": self.rehydrations,
                "evictions": self.evictions,
            }

    def _flight_lock(self, tenant: str) -> threading.Lock:
        with self._lock:
            return self._flights.setdefault(tenant, threading.Lock())

    # -- acquire / release ---------------------------------------------------

    def acquire(self, tenant: str):
        """Pin and return the tenant's estimator, activating if cold.

        Must be balanced by :meth:`release`; prefer :meth:`session`.
        """
        flight_lock = self._flight_lock(tenant)
        with flight_lock:
            with self._lock:
                session = self._sessions.get(tenant)
                if session is not None:
                    session.pins += 1
                    self._sessions.move_to_end(tenant)
                    return session.estimator
            # Cold: build and (maybe) rehydrate outside the registry lock —
            # the flight lock already serializes this tenant's activation.
            estimator = self.factory(tenant)
            rehydrated = self.store.load(tenant, estimator)
            with self._lock:
                session = _Session(estimator)
                session.pins = 1
                self._sessions[tenant] = session
                self.activations += 1
                if rehydrated:
                    self.rehydrations += 1
                active = len(self._sessions)
        if self.obs.enabled:
            self.obs.emit(TenantActivated(tenant=tenant,
                                          rehydrated=rehydrated,
                                          active=active))
            self.obs.registry.counter(
                "freeway_serving_activations_total",
                "tenant sessions activated",
            ).labels(rehydrated=str(rehydrated).lower()).inc()
            self.obs.registry.gauge(
                "freeway_serving_active_tenants", "resident tenant sessions",
            ).set(active)
        if self.on_activate is not None:
            self.on_activate(tenant, estimator)
        self._shrink(exempt=tenant)
        return estimator

    def release(self, tenant: str) -> None:
        """Unpin one prior :meth:`acquire` of the tenant."""
        with self._lock:
            session = self._sessions.get(tenant)
            if session is None or session.pins < 1:
                raise RuntimeError(
                    f"release({tenant!r}) without a matching acquire"
                )
            session.pins -= 1

    class _SessionHandle:
        """Context manager pairing acquire with release."""

        __slots__ = ("_registry", "_tenant", "estimator")

        def __init__(self, registry, tenant):
            self._registry = registry
            self._tenant = tenant
            self.estimator = None

        def __enter__(self):
            self.estimator = self._registry.acquire(self._tenant)
            return self.estimator

        def __exit__(self, exc_type, exc, tb):
            self.estimator = None
            self._registry.release(self._tenant)

    def session(self, tenant: str) -> "SessionRegistry._SessionHandle":
        """``with registry.session(t) as estimator:`` — pinned while inside."""
        return self._SessionHandle(self, tenant)

    # -- eviction ------------------------------------------------------------

    def _shrink(self, exempt: str | None = None) -> None:
        """Evict LRU unpinned sessions until at or under capacity."""
        while True:
            with self._lock:
                if len(self._sessions) <= self.capacity:
                    return
                victim = next(
                    (tenant for tenant, session in self._sessions.items()
                     if session.pins == 0 and tenant != exempt), None)
            if victim is None:
                return  # everything pinned: overshoot until pins release
            self._evict(victim)

    def _evict(self, tenant: str) -> bool:
        """Checkpoint and close one unpinned resident session.

        Returns False when the tenant was not resident or was pinned by
        the time its flight lock was acquired (a racing re-activation
        wins; eviction silently stands down).
        """
        flight_lock = self._flight_lock(tenant)
        with flight_lock:
            with self._lock:
                session = self._sessions.get(tenant)
                if session is None or session.pins > 0:
                    return False
                del self._sessions[tenant]
                self.evictions += 1
                active = len(self._sessions)
            # Save under the flight lock (but outside the registry lock):
            # a concurrent acquire of this tenant waits on the flight lock
            # and then rehydrates from this — fresh — checkpoint.
            nbytes = self.store.save(tenant, session.estimator)
            session.estimator.close()
        if self.obs.enabled:
            self.obs.emit(TenantEvicted(tenant=tenant, nbytes=nbytes,
                                        active=active))
            self.obs.registry.counter(
                "freeway_serving_evictions_total",
                "tenant sessions checkpointed out by LRU pressure",
            ).inc()
            self.obs.registry.gauge(
                "freeway_serving_active_tenants", "resident tenant sessions",
            ).set(active)
        return True

    def evict(self, tenant: str) -> bool:
        """Explicitly retire one tenant's session (False if pinned/absent)."""
        return self._evict(tenant)

    def flush(self) -> int:
        """Checkpoint every resident session in place; returns count saved.

        Sessions stay resident (and pinned sessions are checkpointed too —
        the flight lock only guards against concurrent activation, and a
        pinned estimator is quiescent between requests in the serving
        model, where each tenant's requests are processed serially).
        """
        saved = 0
        for tenant in self.resident():
            flight_lock = self._flight_lock(tenant)
            with flight_lock:
                with self._lock:
                    session = self._sessions.get(tenant)
                    if session is None:
                        continue  # evicted since the snapshot
                    estimator = session.estimator
                self.store.save(tenant, estimator)
                saved += 1
        return saved

    def close(self) -> None:
        """Checkpoint and close every session (serving shutdown)."""
        while True:
            with self._lock:
                tenant = next(
                    (tenant for tenant, session in self._sessions.items()
                     if session.pins == 0), None)
                remaining = len(self._sessions)
            if tenant is None:
                if remaining:
                    raise RuntimeError(
                        f"close() with {remaining} pinned session(s) still "
                        f"held — release them first"
                    )
                return
            self._evict(tenant)
