"""Heavy-tailed multi-tenant traffic for serving benchmarks.

Production tenant populations are Zipf-like: a few tenants dominate the
request volume while a long tail appears rarely — exactly the access
pattern that stresses an LRU session registry (hot tenants stay resident,
the tail churns through checkpoint/rehydrate).  :func:`zipf_tenants` draws
such an arrival sequence; :func:`make_requests` attaches per-tenant
feature streams whose rows are reproducible *per tenant* regardless of how
tenants interleave, which is what lets the bench replay one tenant's
requests serially and expect identical predictions.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["zipf_tenants", "make_requests", "TenantStream"]


def zipf_tenants(num_requests: int, num_tenants: int, *,
                 exponent: float = 1.1, seed: int = 0) -> list[str]:
    """An arrival sequence of tenant names with Zipf-ranked popularity.

    Tenant ``tenant-0000`` is the hottest; probability of rank ``k``
    decays as ``(k + 1) ** -exponent``.  Every tenant keeps a nonzero
    probability, so with enough requests the tail is exercised too.
    """
    if num_tenants < 1:
        raise ValueError(f"num_tenants must be >= 1; got {num_tenants}")
    rng = np.random.default_rng(seed)
    weights = (np.arange(1, num_tenants + 1, dtype=float)) ** -exponent
    weights /= weights.sum()
    width = max(4, len(str(num_tenants - 1)))
    ranks = rng.choice(num_tenants, size=num_requests, p=weights)
    return [f"tenant-{rank:0{width}d}" for rank in ranks]


class TenantStream:
    """Per-tenant reproducible feature stream.

    Each tenant's rows come from its own :func:`numpy.random.default_rng`
    seeded by ``hash(seed, tenant)``, with a tenant-specific class
    structure (a rotated pair of Gaussian blobs), so the sequence of rows
    a tenant receives depends only on the tenant and how many rows it has
    drawn — not on the global interleaving.  That per-tenant determinism
    is the foundation of the serving-equivalence assertion.
    """

    def __init__(self, tenant: str, *, num_features: int = 8,
                 num_classes: int = 2, seed: int = 0):
        # Stable per-tenant seed: Python's hash() is salted per process,
        # so derive from the name bytes instead.  CRC32 (unlike a byte
        # sum) is order-sensitive, so anagram names ("tenant-0123" vs
        # "tenant-0213") get distinct streams.
        digest = zlib.crc32(tenant.encode("utf-8"))
        tenant_seed = (digest * 100_003 + seed) % (2 ** 31)
        self._rng = np.random.default_rng(tenant_seed)
        self.num_features = num_features
        self.num_classes = num_classes
        self._centers = self._rng.normal(
            scale=2.0, size=(num_classes, num_features))
        self.rows_drawn = 0

    def draw(self, rows: int) -> tuple[np.ndarray, np.ndarray]:
        """The next ``rows`` labeled rows of this tenant's stream."""
        y = self._rng.integers(0, self.num_classes, size=rows)
        x = self._centers[y] + self._rng.normal(size=(rows,
                                                      self.num_features))
        self.rows_drawn += rows
        return x, y


def make_requests(arrivals: list[str], *, rows_per_request: int = 8,
                  num_features: int = 8, num_classes: int = 2,
                  seed: int = 0):
    """Materialize ``(tenant, x, y)`` requests for an arrival sequence.

    Rows are drawn from each tenant's :class:`TenantStream` in arrival
    order, so a tenant's concatenated request rows equal what a serial
    replay of that tenant alone would draw.
    """
    streams: dict[str, TenantStream] = {}
    requests = []
    for tenant in arrivals:
        stream = streams.get(tenant)
        if stream is None:
            stream = streams[tenant] = TenantStream(
                tenant, num_features=num_features,
                num_classes=num_classes, seed=seed)
        x, y = stream.draw(rows_per_request)
        requests.append((tenant, x, y))
    return requests
