"""Serving configuration: one dataclass, mirrored onto ``serve`` CLI flags.

:class:`ServeConfig` is to :class:`~repro.serving.StreamingService` what
:class:`~repro.eval.RunConfig` is to the experiment runner — every knob a
serving deployment tunes lives here with a documented default, and
``python -m repro serve`` maps flags onto fields one-to-one instead of
growing ad-hoc kwargs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ServeConfig", "SHED_POLICIES"]

#: Admission-control policies when a queue bound is hit (see
#: :meth:`StreamingService.submit`):
#:
#: - ``"reject"`` — shed the *incoming* request immediately;
#: - ``"oldest"`` — displace the oldest pending request of the same
#:   tenant to admit the newer one (freshness beats age on streams), and
#:   shed the incoming request only if the global bound is still hit;
#: - ``"block"`` — apply backpressure: the submitter waits for capacity
#:   (per-tenant arrival order is preserved while waiting).
SHED_POLICIES = ("reject", "oldest", "block")


@dataclass
class ServeConfig:
    """Knobs for one multi-tenant serving deployment."""

    #: Resident-session bound: at most this many tenants hold a live
    #: estimator; the LRU tail checkpoints out through the registry's
    #: store when a colder tenant must make room for a hotter one.
    max_active_tenants: int = 64
    #: Rows coalesced into one :class:`~repro.data.stream.Batch` before a
    #: tenant's pending requests dispatch (count-based flush).
    microbatch_size: int = 32
    #: Seconds a partial micro-batch may age before it dispatches anyway
    #: (latency bound for cold tenants that never fill a batch).
    microbatch_timeout_s: float = 0.05
    #: Queue-full policy: one of :data:`SHED_POLICIES`.
    shed_policy: str = "reject"
    #: Per-tenant bound on pending (queued, not yet processed) requests.
    max_pending_per_tenant: int = 64
    #: Global bound on pending requests across every tenant.
    max_pending_total: int = 4096
    #: Consecutive per-tenant processing failures that open the tenant's
    #: serving circuit (further submits shed with ``"circuit-open"``).
    breaker_threshold: int = 3
    #: Processed micro-batches an open tenant circuit blocks admission.
    breaker_cooldown: int = 50
    #: Optional load-shedding-to-degrade coupling: when the global pending
    #: fraction rises above this watermark, resident estimators flip into
    #: graceful degradation (``set_degrade(True)``); they flip back below
    #: :attr:`degrade_low_watermark`.  ``None`` disables the coupling.
    degrade_high_watermark: float | None = None
    #: Hysteresis floor for :attr:`degrade_high_watermark`.
    degrade_low_watermark: float = 0.25
    #: Label serving metrics per tenant.  Off by default: with 10k tenants
    #: per-tenant label cardinality would swamp the metrics registry, so
    #: aggregate counters + events carry the per-tenant story instead.
    tenant_metrics: bool = False
    #: Keyword arguments for each tenant's :class:`~repro.core.learner.
    #: Learner` (the registry's default estimator factory).
    learner_kwargs: dict = field(default_factory=dict)
    #: Co-schedule same-architecture tenants' ready micro-batches through
    #: one stacked tensor program (:mod:`repro.nn.stacked`).  Requires
    #: stackable estimators (e.g. :class:`~repro.serving.ModelEstimator`);
    #: everything else falls back to the serial per-tenant path.  Also
    #: gated by the ``stacked_exec`` perf flag, and bitwise-equivalent to
    #: serial execution per tenant (docs/SERVING.md, "Stacked execution").
    stacked_execution: bool = False
    #: Minimum same-key micro-batches worth stacking in one dispatch
    #: round; smaller groups run serially (stacking one model only adds
    #: overhead).
    stacked_min_group: int = 2

    def __post_init__(self):
        if self.max_active_tenants < 1:
            raise ValueError(
                f"max_active_tenants must be >= 1; got "
                f"{self.max_active_tenants}"
            )
        if self.microbatch_size < 1:
            raise ValueError(
                f"microbatch_size must be >= 1; got {self.microbatch_size}"
            )
        if self.microbatch_timeout_s <= 0:
            raise ValueError(
                f"microbatch_timeout_s must be > 0; got "
                f"{self.microbatch_timeout_s}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}; got "
                f"{self.shed_policy!r}"
            )
        if self.max_pending_per_tenant < 1:
            raise ValueError(
                f"max_pending_per_tenant must be >= 1; got "
                f"{self.max_pending_per_tenant}"
            )
        if self.max_pending_total < self.max_pending_per_tenant:
            raise ValueError(
                "max_pending_total must be >= max_pending_per_tenant; got "
                f"{self.max_pending_total} < {self.max_pending_per_tenant}"
            )
        if (self.degrade_high_watermark is not None
                and not 0.0 < self.degrade_high_watermark <= 1.0):
            raise ValueError(
                "degrade_high_watermark must be in (0, 1]; got "
                f"{self.degrade_high_watermark}"
            )
        if (self.degrade_high_watermark is not None
                and not 0.0 <= self.degrade_low_watermark
                < self.degrade_high_watermark):
            raise ValueError(
                "degrade_low_watermark must be in [0, high); got "
                f"{self.degrade_low_watermark}"
            )
        if self.stacked_min_group < 2:
            raise ValueError(
                f"stacked_min_group must be >= 2; got "
                f"{self.stacked_min_group}"
            )
