"""Stacked co-scheduling for the serving layer.

The dispatcher normally serves one tenant's micro-batch at a time.  With
:attr:`~repro.serving.ServeConfig.stacked_execution` on (and the
``stacked_exec`` perf flag), micro-batches that are ready in the same
dispatch round and share a *stacking key* — same model architecture, same
optimizer configuration, same row count, same labeledness — execute as
**one** batched tensor program through :mod:`repro.nn.stacked` instead of
N serial per-model steps.  Everything else (heterogeneous estimators,
mismatched row counts, labeled/unlabeled fences, unsupported
architectures) falls back to the serial per-tenant path.

The equivalence contract carries over unchanged from the engine: per
tenant, served labels and post-update parameters are bitwise-identical
to the serial loop, so the serving-equivalence replay gate in
``bench_serving.py`` holds with stacking on.

Co-scheduling composes with the captured-plan engine: with the
``plan_capture`` flag on, a recurring tenant-group signature runs the
stacked step through a replayed plan (:mod:`repro.nn.plan`), stacking
the amortization wins — one tensor program for N tenants, compiled once
and replayed allocation-free.

:class:`ModelEstimator` adapts a bare
:class:`~repro.models.base.NeuralStreamingModel` to the
:class:`~repro.api.StreamingEstimator` protocol — the stackable tenant
estimator for model-level serving (a full FreewayML ``Learner`` carries
per-tenant drift state the stacked program cannot batch, so Learner
tenants always take the serial path).
"""

from __future__ import annotations

import time

import numpy as np

from ..api import BaseReport
from ..nn import Adam, SGD
from ..nn.stacked import (
    StackedModelError,
    architecture_key,
    make_stacked_optimizer,
    stack_models,
    stacked_fit,
    unstack_models,
)

__all__ = ["ModelEstimator", "StackedGroupPlan", "stacking_key",
           "plan_stacked_groups", "execute_stacked"]


class ModelEstimator:
    """A single streaming model speaking the estimator protocol.

    Wraps a :class:`~repro.models.base.NeuralStreamingModel` (e.g.
    ``StreamingLR`` / ``StreamingMLP``) for serving: ``predict`` returns
    hard labels, ``update`` is one ``partial_fit``, and checkpoints
    round-trip the module parameters **and** optimizer state (momentum /
    Adam moments, as 0-d-array-safe entries), so an evicted tenant
    resumes mid-momentum exactly where it left off.
    """

    def __init__(self, model):
        self.model = model

    # -- stacking ------------------------------------------------------------

    def stacking_handle(self):
        """The wrapped model, telling the dispatcher this tenant stacks."""
        return self.model

    # -- StreamingEstimator protocol -----------------------------------------

    def predict(self, x) -> np.ndarray:
        return self.model.predict(np.asarray(x, dtype=float))

    def update(self, x, y) -> float:
        return self.model.partial_fit(x, y)

    def process(self, batch) -> BaseReport:
        started = time.perf_counter()
        labels = self.predict(batch.x)
        accuracy = None
        if batch.y is not None:
            accuracy = float(np.mean(labels == np.asarray(batch.y)))
            self.update(batch.x, batch.y)
        return BaseReport(
            batch_index=batch.index, num_items=len(batch.x),
            strategy=self.model.name, accuracy=accuracy,
            latency_s=time.perf_counter() - started)

    def summary(self) -> dict:
        return {
            "estimator": self.model.name,
            "updates": self.model.updates,
            "parameters": self.model.num_parameters(),
        }

    def close(self) -> None:
        """Nothing beyond memory to release; kept for the lifecycle."""

    def __enter__(self) -> "ModelEstimator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        model = self.model
        state = dict(model.state_dict())
        state["__meta__.updates"] = np.array(model.updates)
        optimizer = model.optimizer
        optimizer._export_flat_state()
        if isinstance(optimizer, SGD):
            for index, velocity in optimizer._velocity.items():
                state[f"__opt__.velocity.{index}"] = velocity.copy()
        elif isinstance(optimizer, Adam):
            state["__meta__.step_count"] = np.array(optimizer._step_count)
            for index, value in optimizer._m.items():
                state[f"__opt__.m.{index}"] = value.copy()
            for index, value in optimizer._v.items():
                state[f"__opt__.v.{index}"] = value.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        state = dict(state)
        meta = {key: state.pop(key) for key in list(state)
                if key.startswith("__meta__.")}
        opt_state = {key: state.pop(key) for key in list(state)
                     if key.startswith("__opt__.")}
        model = self.model
        model.load_state_dict(state)
        model.updates = int(meta.get("__meta__.updates", model.updates))
        optimizer = model.optimizer
        if isinstance(optimizer, SGD):
            optimizer._velocity = {
                int(key.rsplit(".", 1)[1]): np.array(value, copy=True)
                for key, value in opt_state.items()
                if key.startswith("__opt__.velocity.")}
        elif isinstance(optimizer, Adam):
            optimizer._step_count = int(
                meta.get("__meta__.step_count", optimizer._step_count))
            optimizer._m = {
                int(key.rsplit(".", 1)[1]): np.array(value, copy=True)
                for key, value in opt_state.items()
                if key.startswith("__opt__.m.")}
            optimizer._v = {
                int(key.rsplit(".", 1)[1]): np.array(value, copy=True)
                for key, value in opt_state.items()
                if key.startswith("__opt__.v.")}


def _optimizer_signature(optimizer) -> tuple | None:
    """Hashable optimizer configuration; None for unstackable types."""
    kind = type(optimizer)
    if kind is SGD:
        return ("sgd", optimizer.lr, optimizer.momentum,
                optimizer.weight_decay)
    if kind is Adam:
        return ("adam", optimizer.lr, optimizer.beta1, optimizer.beta2,
                optimizer.eps, optimizer.weight_decay, optimizer._step_count)
    return None


def stacking_key(estimator, rows: int, labeled: bool):
    """Group key for one dispatched micro-batch; None → serial path.

    Two micro-batches may execute stacked iff their keys are equal:
    identical model architecture (:func:`~repro.nn.stacked.
    architecture_key`), identical training configuration (``sgd_steps``
    plus the optimizer's type and hyperparameters — for Adam also its
    step count, since bias correction is shared across a stack),
    identical coalesced row count, and the same labeledness.
    """
    handle = getattr(estimator, "stacking_handle", None)
    if handle is None:
        return None
    model = handle()
    if model is None:
        return None
    signature = _optimizer_signature(model.optimizer)
    if signature is None:
        return None
    try:
        arch = architecture_key(model.module)
    except StackedModelError:
        return None
    return (arch, signature, model.sgd_steps, rows, labeled)


class StackedGroupPlan:
    """Partition of a dispatch round into stacked groups and serial jobs."""

    __slots__ = ("groups", "singles")

    def __init__(self, groups, singles):
        self.groups = groups
        self.singles = singles


def plan_stacked_groups(jobs, key_of, *, min_group: int = 2
                        ) -> StackedGroupPlan:
    """Group jobs by stacking key; undersized groups go serial.

    ``jobs`` is any sequence; ``key_of(job)`` returns the job's stacking
    key (or None for never-stackable jobs).  Grouping preserves dispatch
    order within each group and within the serial remainder.
    """
    by_key: dict = {}
    singles = []
    for job in jobs:
        key = key_of(job)
        if key is None:
            singles.append(job)
        else:
            by_key.setdefault(key, []).append(job)
    groups = []
    for grouped in by_key.values():
        if len(grouped) >= min_group:
            groups.append(grouped)
        else:
            singles.extend(grouped)
    return StackedGroupPlan(groups, singles)


def execute_stacked(estimators, xs, ys) -> np.ndarray:
    """One batched predict(+update) step for N same-key tenants.

    Mirrors :func:`~repro.serving.service.predict_and_update` per model:
    predict from the pre-update weights, then (for labeled batches) run
    ``sgd_steps`` training steps — all through one stacked program.
    Returns the ``(models, rows)`` predicted labels; each estimator's
    model ends bitwise-identical to having served its batch alone.
    """
    models = [estimator.stacking_handle() for estimator in estimators]
    stacked_x = np.stack([
        np.asarray(x, dtype=float).reshape(len(x), -1) for x in xs])
    stack = stack_models([model.module for model in models])
    labels = stack.predict_proba(stacked_x).argmax(axis=-1)
    labeled = ys[0] is not None
    if labeled:
        optimizer = make_stacked_optimizer(
            stack, [model.optimizer for model in models])
        stacked_y = np.stack([
            np.asarray(y, dtype=np.int64).reshape(-1) for y in ys])
        stacked_fit(stack, optimizer, stacked_x, stacked_y,
                    sgd_steps=models[0].sgd_steps)
        unstack_models(stack)
        optimizer.export_to([model.optimizer for model in models])
        for model in models:
            model.updates += 1
            model._weights_version += 1
    return labels
