"""``repro.serving`` — the multi-tenant streaming serving front end.

Multiplexes 1k–10k per-tenant streams onto one process (docs/SERVING.md):

- :class:`StreamingService` — asyncio ingest with admission control,
  per-tenant micro-batching, load shedding wired into the degrade chain,
  and a per-tenant circuit breaker;
- :class:`SessionRegistry` — tenant → estimator sessions with LRU
  activation, single-flight rehydration, and checkpoint-through
  eviction over a :class:`CheckpointStore`;
- :class:`ServeConfig` — the deployment's knobs, mapped one-to-one onto
  ``python -m repro serve`` flags;
- :mod:`repro.serving.stacked` — stacked co-scheduling: same-architecture
  tenants' ready micro-batches execute as one batched tensor program
  (:class:`ModelEstimator` is the stackable tenant estimator);
- :mod:`repro.serving.traffic` — Zipf tenant arrivals and per-tenant
  reproducible streams for the serving bench.
"""

from .config import SHED_POLICIES, ServeConfig
from .registry import (
    CheckpointStore,
    DirCheckpointStore,
    MemoryCheckpointStore,
    NullCheckpointStore,
    SessionRegistry,
)
from .service import (
    ServeResult,
    StreamingService,
    predict_and_update,
    serve_requests,
)
from .stacked import (
    ModelEstimator,
    execute_stacked,
    plan_stacked_groups,
    stacking_key,
)
from .traffic import TenantStream, make_requests, zipf_tenants

__all__ = [
    "ServeConfig",
    "SHED_POLICIES",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "DirCheckpointStore",
    "NullCheckpointStore",
    "SessionRegistry",
    "StreamingService",
    "ServeResult",
    "predict_and_update",
    "serve_requests",
    "ModelEstimator",
    "execute_stacked",
    "plan_stacked_groups",
    "stacking_key",
    "TenantStream",
    "zipf_tenants",
    "make_requests",
]
