"""The unified estimator API: one protocol, one report family, one facade.

Every learner this repository ships — the FreewayML :class:`Learner`, the
:class:`DistributedLearner` that shards batches across execution backends,
and the baseline frameworks in :mod:`repro.baselines` — speaks the same
four-method :class:`StreamingEstimator` protocol, so evaluation harnesses,
serving loops, and benchmarks can swap estimators (and backends behind
them) without touching call sites.  This is the single-pipeline-API lesson
FlinkML/Alink draw for streaming ML runtimes.

The reports those estimators emit share :class:`BaseReport`: consistent
field names (``batch_index``, ``strategy``, ``latency_s``) and symmetric
``to_dict``/``from_dict`` serialization, which is also how worker processes
ship their per-shard reports back to the coordinator.

Facade::

    from repro import FreewayML, make_learner

    learner = FreewayML(model_factory)                       # == Learner
    cluster = make_learner(model_factory, num_workers=4,
                           backend="process")                # distributed
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Protocol, runtime_checkable

__all__ = [
    "StreamingEstimator",
    "BaseReport",
    "report_from_dict",
    "make_learner",
    "FreewayML",
]


@runtime_checkable
class StreamingEstimator(Protocol):
    """What every estimator in this repository implements.

    ``predict`` answers a feature batch — FreewayML-class estimators return
    a :class:`~repro.core.learner.PredictionResult` carrying the routing
    decision alongside the labels.  ``update`` consumes one labeled batch
    and returns the training loss (or ``None``).  ``process`` runs the full
    prequential test-then-train step on a :class:`~repro.data.stream.Batch`
    and returns a :class:`BaseReport` subclass.  ``summary`` reports
    estimator state as a plain dict (counts, sizes, configuration).

    ``close`` releases whatever the estimator owns beyond its own memory —
    worker pools, sockets, spill files.  It must be idempotent and must
    leave ``summary()`` callable; after ``close`` the estimator may refuse
    further ``predict``/``update``/``process`` calls.  Estimators are also
    context managers (``__exit__`` calls ``close``), which is how the
    serving session registry retires any estimator uniformly on eviction.
    """

    def predict(self, x) -> Any:
        ...

    def update(self, x, y) -> float | None:
        ...

    def process(self, batch) -> "BaseReport":
        ...

    def summary(self) -> dict:
        ...

    def close(self) -> None:
        ...


#: ``kind`` → report class, populated by ``BaseReport.__init_subclass__``.
_REPORT_KINDS: dict[str, type] = {}


@dataclass(kw_only=True)
class BaseReport:
    """Shared shape of every per-batch report.

    Subclasses add their own fields but agree on the canonical trio the
    harnesses consume: ``batch_index`` (stream position), ``strategy``
    (which mechanism/runtime answered), and ``latency_s`` (wall-clock
    seconds for the whole step).
    """

    kind: ClassVar[str] = "base"

    batch_index: int
    num_items: int
    strategy: str
    accuracy: float | None = None
    latency_s: float = 0.0

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        _REPORT_KINDS[cls.kind] = cls

    def to_dict(self) -> dict:
        """Flat, JSON-friendly payload (round-trips via ``from_dict``)."""
        payload = {"kind": self.kind}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, (list, tuple)):
                value = [float(v) for v in value]
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "BaseReport":
        """Rebuild a report from a ``to_dict`` payload.

        Called on the base class, dispatches on ``payload["kind"]``; called
        on a subclass, requires a matching (or absent) kind.  An unknown
        ``kind`` raises :class:`ValueError` naming the registered kinds —
        silently downgrading a newer producer's report to ``BaseReport``
        would drop its fields without a trace.  Unknown *keys* are ignored
        so payloads stay forward compatible within a kind.
        """
        payload = dict(payload)
        kind = payload.pop("kind", cls.kind)
        if cls is not BaseReport and kind != cls.kind:
            raise ValueError(
                f"payload kind {kind!r} does not match {cls.__name__}"
            )
        target = _REPORT_KINDS.get(kind) if cls is BaseReport else cls
        if target is None:
            known = ", ".join(sorted(_REPORT_KINDS))
            raise ValueError(
                f"unknown report kind {kind!r}; known kinds: {known}"
            )
        known = {spec.name for spec in fields(target)}
        return target(**{key: value for key, value in payload.items()
                         if key in known})


# __init_subclass__ only fires for subclasses; the base kind registers here.
_REPORT_KINDS[BaseReport.kind] = BaseReport


def report_from_dict(payload: dict) -> BaseReport:
    """Rebuild any report family member from its ``to_dict`` payload."""
    return BaseReport.from_dict(payload)


def make_learner(model_factory, *, num_workers: int = 1,
                 backend: str = "serial", sync_every: int = 1,
                 partitioner: str = "round-robin", obs=None, **kwargs):
    """Build the right estimator for a worker count and execution backend.

    ``num_workers=1`` with the default serial backend returns a plain
    :class:`~repro.core.learner.Learner`; anything else returns a
    :class:`~repro.distributed.DistributedLearner` running its replicas on
    the named backend (``"serial"``, ``"thread"``, or ``"process"``).
    ``sync_every`` and ``partitioner`` configure the distributed
    coordinator (a single in-process learner has no shards to partition
    or average, so they are inert there); extra keyword arguments go to
    the underlying learner(s).
    """
    from .core.learner import Learner
    from .distributed.workers import DistributedLearner

    if num_workers == 1 and backend == "serial":
        return Learner(model_factory, obs=obs, **kwargs)
    return DistributedLearner(model_factory, num_workers=num_workers,
                              backend=backend, sync_every=sync_every,
                              partitioner=partitioner, obs=obs, **kwargs)


def __getattr__(name: str):
    # Lazy alias: core.learner imports this module for BaseReport, so the
    # facade class is resolved on first access instead of at import time.
    if name == "FreewayML":
        from .core.learner import Learner
        return Learner
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
