"""Throughput and latency measurement (paper Section VI-E).

Figure 10 reports items/second versus batch size; Table III reports per-
batch update and inference latency in microseconds.  These helpers time a
learner's two phases separately, with warm-up iterations excluded, the way
the paper's performance experiments are framed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyStats", "measure_latency", "measure_throughput"]


@dataclass
class LatencyStats:
    """Per-batch latency summary, in seconds."""

    mean: float
    p50: float
    p95: float
    samples: np.ndarray

    @property
    def mean_us(self) -> float:
        """Mean latency in microseconds (Table III's unit)."""
        return self.mean * 1e6


def _summarize(samples: list[float]) -> LatencyStats:
    array = np.asarray(samples)
    return LatencyStats(
        mean=float(array.mean()),
        p50=float(np.percentile(array, 50)),
        p95=float(np.percentile(array, 95)),
        samples=array,
    )


def measure_latency(predict_fn, update_fn, batches, warmup: int = 2
                    ) -> tuple[LatencyStats, LatencyStats]:
    """Time inference and update separately over a batch sequence.

    ``predict_fn(batch)`` and ``update_fn(batch)`` are called for every
    batch; the first ``warmup`` timings of each phase are discarded.
    Returns ``(infer_stats, update_stats)``.

    ``batches`` is materialized and validated up front, so a too-short
    (or lazily exhausted) stream fails before any work is timed.
    """
    batches = list(batches)
    if len(batches) <= warmup:
        raise ValueError(
            f"need more than {warmup} batches to measure latency; "
            f"got {len(batches)}"
        )
    infer_times: list[float] = []
    update_times: list[float] = []
    for batch in batches:
        start = time.perf_counter()
        predict_fn(batch)
        infer_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        update_fn(batch)
        update_times.append(time.perf_counter() - start)
    return (_summarize(infer_times[warmup:]),
            _summarize(update_times[warmup:]))


def measure_throughput(process_fn, batches, warmup: int = 2) -> float:
    """Items per second of ``process_fn`` (inference + training combined)."""
    batches = list(batches)
    if len(batches) <= warmup:
        raise ValueError(
            f"need more than {warmup} batches to measure throughput; "
            f"got {len(batches)}"
        )
    for batch in batches[:warmup]:
        process_fn(batch)
    items = sum(len(batch) for batch in batches[warmup:])
    start = time.perf_counter()
    for batch in batches[warmup:]:
        process_fn(batch)
    elapsed = time.perf_counter() - start
    return items / max(elapsed, 1e-12)
