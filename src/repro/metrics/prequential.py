"""Prequential (test-then-train) evaluation.

The standard streaming-learning protocol the paper uses throughout: each
batch is first predicted with the current model, scored against its labels,
and only then used for training.  Works for both plain
:class:`~repro.models.base.StreamingModel` learners and FreewayML
:class:`~repro.core.learner.Learner` instances (which carry their own
test-then-train logic in :meth:`process`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..core.learner import Learner
from ..models.base import StreamingModel
from .accuracy import AccuracyTracker

if TYPE_CHECKING:  # circular at runtime; used in annotations only
    from ..distributed.workers import DistributedLearner

__all__ = ["PrequentialResult", "evaluate_model", "evaluate_learner"]


@dataclass
class PrequentialResult:
    """Everything measured during one prequential run."""

    name: str
    accuracies: np.ndarray
    patterns: list  # ground-truth pattern per batch (None if unannotated)
    g_acc: float
    si: float
    predict_seconds: np.ndarray
    update_seconds: np.ndarray
    items_per_batch: np.ndarray
    extras: dict = field(default_factory=dict)

    @property
    def total_items(self) -> int:
        return int(self.items_per_batch.sum())

    @property
    def throughput(self) -> float:
        """Items processed per second of (predict + update) compute."""
        total_time = self.predict_seconds.sum() + self.update_seconds.sum()
        return self.total_items / max(total_time, 1e-12)

    def accuracy_by_pattern(self, skip: int = 0) -> dict[str, float]:
        """Mean real-time accuracy grouped by ground-truth pattern."""
        grouped: dict[str, list[float]] = {}
        for position, (pattern, accuracy) in enumerate(
                zip(self.patterns, self.accuracies)):
            if position < skip or pattern is None:
                continue
            grouped.setdefault(pattern, []).append(accuracy)
        return {pattern: float(np.mean(values))
                for pattern, values in grouped.items()}


def evaluate_model(model: StreamingModel, stream, name: str | None = None,
                   skip: int = 0) -> PrequentialResult:
    """Test-then-train a plain streaming model over a stream."""
    tracker = AccuracyTracker()
    patterns: list = []
    predict_times: list[float] = []
    update_times: list[float] = []
    items: list[int] = []
    for batch in stream:
        start = time.perf_counter()
        predictions = model.predict(batch.x)
        predict_times.append(time.perf_counter() - start)
        tracker.observe(batch.y, predictions)
        start = time.perf_counter()
        model.partial_fit(batch.x, batch.y)
        update_times.append(time.perf_counter() - start)
        patterns.append(batch.pattern)
        items.append(len(batch))
    summary = tracker.summary(skip=skip)
    return PrequentialResult(
        name=name or model.name,
        accuracies=tracker.series,
        patterns=patterns,
        g_acc=summary.g_acc,
        si=summary.si,
        predict_seconds=np.asarray(predict_times),
        update_seconds=np.asarray(update_times),
        items_per_batch=np.asarray(items),
    )


def evaluate_learner(learner: Learner | DistributedLearner, stream,
                     name: str = "freewayml",
                     skip: int = 0, on_report=None) -> PrequentialResult:
    """Run a FreewayML learner prequentially, collecting its batch reports.

    Ground-truth pattern annotations on the batches are kept alongside the
    reports so pattern-segmented analyses (Table II, Figure 11) can align
    the learner's behaviour with what actually happened in the stream.

    ``on_report`` is called with every batch report as it is produced —
    including unlabeled batches the scoring skips — which is how the live
    telemetry plane feeds per-batch latency samples to its SLO engine.
    """
    reports = []
    patterns = []
    for batch in stream:
        report = learner.process(batch)
        if on_report is not None:
            on_report(report)
        if report.accuracy is None:
            continue
        reports.append(report)
        patterns.append(batch.pattern)
    if not reports:
        raise ValueError("stream produced no labeled batches to score")
    accuracies = np.asarray([report.accuracy for report in reports])
    trimmed = accuracies[skip:]
    return PrequentialResult(
        name=name,
        accuracies=accuracies,
        patterns=patterns,
        g_acc=float(trimmed.mean()),
        si=float(np.exp(-trimmed.std() / trimmed.mean())),
        predict_seconds=np.asarray([r.predict_seconds for r in reports]),
        update_seconds=np.asarray([r.update_seconds for r in reports]),
        items_per_batch=np.asarray([r.num_items for r in reports]),
        extras={"reports": reports},
    )
