"""Accuracy and stability metrics (paper Section VI-B, Eqs. 1, 15, 16).

- **real-time accuracy** ``acc_j`` — fraction of batch ``j`` predicted
  correctly before the batch's labels are used for training (Eq. 1);
- **global average accuracy** ``G_acc`` — mean of the per-batch real-time
  accuracies (Eq. 15);
- **Stability Index** ``SI = exp(-sigma_acc / mu_acc)`` — accuracy
  fluctuation normalized to (0, 1], higher is steadier (Eq. 16).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["batch_accuracy", "global_accuracy", "stability_index",
           "class_recalls", "macro_f1", "AccuracyTracker"]


def batch_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Real-time accuracy of one batch (Eq. 1)."""
    y_true = np.asarray(y_true).reshape(-1)
    y_pred = np.asarray(y_pred).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"label shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    if len(y_true) == 0:
        raise ValueError("cannot score an empty batch")
    return float((y_true == y_pred).mean())


def global_accuracy(batch_accuracies) -> float:
    """Global average accuracy ``G_acc`` over per-batch accuracies (Eq. 15)."""
    accuracies = np.asarray(list(batch_accuracies), dtype=float)
    if len(accuracies) == 0:
        raise ValueError("no batch accuracies to average")
    return float(accuracies.mean())


def stability_index(batch_accuracies) -> float:
    """Stability Index ``SI = exp(-sigma/mu)`` of per-batch accuracies (Eq. 16)."""
    accuracies = np.asarray(list(batch_accuracies), dtype=float)
    if len(accuracies) == 0:
        raise ValueError("no batch accuracies to score")
    mean = accuracies.mean()
    if mean <= 0:
        return 0.0
    return float(np.exp(-accuracies.std() / mean))


def class_recalls(y_true, y_pred, num_classes: int) -> np.ndarray:
    """Per-class recall; ``nan`` for classes absent from ``y_true``.

    The paper's Section VI-C analysis hinges on minority classes (NSL-KDD's
    rare attack categories): overall accuracy can look fine while rare
    classes are never predicted.
    """
    y_true = np.asarray(y_true).reshape(-1)
    y_pred = np.asarray(y_pred).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"label shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    recalls = np.full(num_classes, np.nan)
    for label in range(num_classes):
        mask = y_true == label
        if mask.any():
            recalls[label] = float((y_pred[mask] == label).mean())
    return recalls


def macro_f1(y_true, y_pred, num_classes: int) -> float:
    """Unweighted mean F1 over classes present in ``y_true``."""
    y_true = np.asarray(y_true).reshape(-1)
    y_pred = np.asarray(y_pred).reshape(-1)
    scores = []
    for label in range(num_classes):
        true_mask = y_true == label
        pred_mask = y_pred == label
        if not true_mask.any():
            continue
        true_positive = float((true_mask & pred_mask).sum())
        precision_den = float(pred_mask.sum())
        recall_den = float(true_mask.sum())
        precision = true_positive / precision_den if precision_den else 0.0
        recall = true_positive / recall_den
        if precision + recall == 0.0:
            scores.append(0.0)
        else:
            scores.append(2 * precision * recall / (precision + recall))
    if not scores:
        raise ValueError("y_true contains no known classes")
    return float(np.mean(scores))


@dataclass
class AccuracySummary:
    """G_acc and SI over a run, plus the raw series."""

    g_acc: float
    si: float
    accuracies: np.ndarray


class AccuracyTracker:
    """Accumulates per-batch accuracies and summarizes them."""

    def __init__(self):
        self._accuracies: list[float] = []

    def __len__(self) -> int:
        return len(self._accuracies)

    def observe(self, y_true: np.ndarray, y_pred: np.ndarray) -> float:
        """Score one batch and record it; returns the batch accuracy."""
        accuracy = batch_accuracy(y_true, y_pred)
        self._accuracies.append(accuracy)
        return accuracy

    def observe_value(self, accuracy: float) -> None:
        """Record an already computed batch accuracy."""
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1]; got {accuracy}")
        self._accuracies.append(float(accuracy))

    @property
    def series(self) -> np.ndarray:
        return np.asarray(self._accuracies)

    def summary(self, skip: int = 0) -> AccuracySummary:
        """G_acc and SI, optionally skipping the first ``skip`` warm-up batches."""
        accuracies = self.series[skip:]
        return AccuracySummary(
            g_acc=global_accuracy(accuracies),
            si=stability_index(accuracies),
            accuracies=accuracies,
        )
