"""``repro.metrics`` — accuracy, stability, prequential evaluation, performance."""

from .accuracy import (
    AccuracyTracker,
    batch_accuracy,
    class_recalls,
    global_accuracy,
    macro_f1,
    stability_index,
)
from .perf import LatencyStats, measure_latency, measure_throughput
from .prequential import PrequentialResult, evaluate_learner, evaluate_model
from .windows import (
    FadingAccuracy,
    SlidingWindowAccuracy,
    fading_series,
    sliding_series,
)

__all__ = [
    "batch_accuracy",
    "global_accuracy",
    "stability_index",
    "class_recalls",
    "macro_f1",
    "AccuracyTracker",
    "PrequentialResult",
    "evaluate_model",
    "evaluate_learner",
    "LatencyStats",
    "measure_latency",
    "measure_throughput",
    "SlidingWindowAccuracy",
    "FadingAccuracy",
    "sliding_series",
    "fading_series",
]
