"""Windowed and fading prequential accuracy (Gama et al., 2013).

Plain prequential accuracy averages over the whole stream, so early
mistakes depress the estimate forever and drifts are smoothed away.  The
streaming-evaluation literature's standard remedies, both provided here:

- **sliding-window accuracy** — mean over the last ``w`` batches;
- **fading-factor accuracy** — exponentially weighted running estimate
  ``S_t = acc_t + alpha * S_{t-1}``, ``N_t = 1 + alpha * N_{t-1}``,
  reported as ``S_t / N_t``.

Both make the per-batch series the paper plots in Figures 9/12 readable at
stream scale.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["SlidingWindowAccuracy", "FadingAccuracy", "fading_series",
           "sliding_series"]


class SlidingWindowAccuracy:
    """Mean accuracy over the last ``window`` observations."""

    def __init__(self, window: int = 20):
        if window < 1:
            raise ValueError(f"window must be >= 1; got {window}")
        self.window = window
        self._values: deque[float] = deque(maxlen=window)

    def __len__(self) -> int:
        return len(self._values)

    def update(self, accuracy: float) -> float:
        """Record one batch accuracy; returns the current window mean."""
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1]; got {accuracy}")
        self._values.append(float(accuracy))
        return self.value

    @property
    def value(self) -> float:
        if not self._values:
            raise RuntimeError("no observations yet")
        return float(np.mean(self._values))


class FadingAccuracy:
    """Exponentially faded prequential accuracy (fading factor ``alpha``)."""

    def __init__(self, alpha: float = 0.98):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1); got {alpha}")
        self.alpha = alpha
        self._numerator = 0.0
        self._denominator = 0.0

    def update(self, accuracy: float) -> float:
        """Record one batch accuracy; returns the faded estimate."""
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1]; got {accuracy}")
        self._numerator = accuracy + self.alpha * self._numerator
        self._denominator = 1.0 + self.alpha * self._denominator
        return self.value

    @property
    def value(self) -> float:
        if self._denominator == 0.0:
            raise RuntimeError("no observations yet")
        return self._numerator / self._denominator


def sliding_series(accuracies, window: int = 20) -> np.ndarray:
    """Sliding-window smoothing of a whole accuracy series."""
    tracker = SlidingWindowAccuracy(window=window)
    return np.asarray([tracker.update(value) for value in accuracies])


def fading_series(accuracies, alpha: float = 0.98) -> np.ndarray:
    """Fading-factor smoothing of a whole accuracy series."""
    tracker = FadingAccuracy(alpha=alpha)
    return np.asarray([tracker.update(value) for value in accuracies])
