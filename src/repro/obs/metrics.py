"""Process-local metrics: counters, gauges, histograms, and a registry.

Dependency-free instruments in the Prometheus mold.  Every instrument is
created through a :class:`MetricsRegistry` (same name → same instrument),
can carry labels (``counter.labels(strategy="cec").inc()``), and the whole
registry exports both a plain-dict :meth:`~MetricsRegistry.snapshot` for
programmatic use and a Prometheus-style text exposition via
:meth:`~MetricsRegistry.render_text` for scraping or diffing.

Histograms use fixed bucket boundaries plus a running sum/count; quantiles
are estimated by linear interpolation inside the bucket containing the
target rank — the standard streaming estimate used by
``histogram_quantile`` — so no samples are retained.

Registries also speak a *wire format* for cross-process aggregation (the
live telemetry plane, see :mod:`repro.obs.live`): :meth:`MetricsRegistry.dump`
serializes every series to plain JSON-able dicts,
:meth:`MetricsRegistry.collect_delta` returns only what changed since the
previous collection (and advances the baseline), and
:meth:`MetricsRegistry.merge` folds a dump or delta into another registry —
counters add, gauges last-write-wins, histograms merge bucket-wise — with
optional extra labels (``{"worker": "2"}``) stamped on every merged series.

Thread safety: every instrument guards its mutators with an ``RLock``.
Instruments created through a registry all share the *registry's* lock
(children from :meth:`~_Instrument.labels` inherit their parent's), so a
scrape — :meth:`MetricsRegistry.snapshot`, :meth:`~MetricsRegistry.render_text`,
or the wire-format collectors — observes an atomic view even while the run
loop increments counters from another thread (the TelemetryServer case).
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram boundaries (seconds), spanning µs-scale kernel calls
#: to multi-second window completions.
DEFAULT_LATENCY_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _escape_label_value(value) -> str:
    """Prometheus text-format label-value escaping (``\\``, ``"``, newline)."""
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """Prometheus text-format HELP escaping (``\\`` and newline only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(key: tuple) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"'
                     for name, value in key)
    return "{" + inner + "}"


class _Instrument:
    """Shared plumbing: a family of label-keyed children under one name."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not name or not all(c.isalnum() or c == "_" for c in name):
            raise ValueError(
                f"metric names must be alphanumeric/underscore; got {name!r}"
            )
        self.name = name
        self.help = help
        self._children: dict[tuple, "_Instrument"] = {}
        self._labels: tuple = ()
        #: Guards every mutator.  Standalone instruments own their lock;
        #: registry-created ones are re-pointed at the registry's single
        #: lock (and children inherit it below), so whole-registry reads
        #: are atomic against concurrent writes.
        self._lock = threading.RLock()

    def labels(self, **labels) -> "_Instrument":
        """The child instrument for one label combination (created lazily)."""
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = type(self)._blank(self.name, self.help)
                child._labels = key
                child._lock = self._lock
                self._children[key] = child
        return child

    @classmethod
    def _blank(cls, name: str, help: str) -> "_Instrument":
        return cls(name, help)

    # Locks are not picklable, and instruments travel inside worker
    # checkpoints (crash recovery pickles whole learners).  Drop the lock
    # on the way out, rebuild on the way in; children re-share it.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        for child in self._children.values():
            child._lock = self._lock

    def _series(self) -> list["_Instrument"]:
        """Every concrete series: the bare instrument (if touched) plus
        each labeled child."""
        out = []
        if self._touched():
            out.append(self)
        out.extend(self._children.values())
        return out

    def _touched(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _touched(self) -> bool:
        return self._value != 0.0

    # -- wire format ----------------------------------------------------------

    def _wire(self, baseline: dict | None) -> dict | None:
        previous = baseline.get("value", 0.0) if baseline else 0.0
        delta = self._value - previous
        if baseline is not None and delta == 0.0:
            return None
        return {"value": delta if baseline is not None else self._value}

    def _wire_baseline(self) -> dict:
        return {"value": self._value}

    def _merge_wire(self, payload: dict) -> None:
        self.inc(float(payload["value"]))


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._value = 0.0
        self._set_ever = False

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._set_ever = True

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            self._set_ever = True

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def _touched(self) -> bool:
        return self._set_ever

    # -- wire format ----------------------------------------------------------

    def _wire(self, baseline: dict | None) -> dict | None:
        if baseline is not None and baseline.get("value") == self._value:
            return None
        return {"value": self._value}

    def _wire_baseline(self) -> dict:
        return {"value": self._value}

    def _merge_wire(self, payload: dict) -> None:
        # Last write wins: the incoming value is the series' current truth.
        self.set(float(payload["value"]))


class Histogram(_Instrument):
    """Fixed-boundary bucketed distribution with streaming quantiles.

    Parameters
    ----------
    buckets:
        Ascending upper boundaries; an implicit ``+Inf`` bucket is always
        appended, so every observation lands somewhere.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple = DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("need at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket boundaries must ascend; got {bounds}")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    @classmethod
    def _blank(cls, name: str, help: str) -> "Histogram":
        return cls(name, help)

    def labels(self, **labels) -> "Histogram":
        with self._lock:
            child = super().labels(**labels)
            # Children inherit the parent's boundaries, not the default.
            if child.buckets != self.buckets and child._count == 0:
                child.buckets = self.buckets
                child._counts = [0] * (len(self.buckets) + 1)
        return child

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[position] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile by interpolation inside the target
        bucket (clamped to the observed min/max so tiny samples do not
        report a bucket boundary far beyond any real observation)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1]; got {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        lower = 0.0
        for position, bound in enumerate(self.buckets):
            previous = cumulative
            cumulative += self._counts[position]
            if cumulative >= rank and self._counts[position]:
                fraction = (rank - previous) / self._counts[position]
                estimate = lower + fraction * (bound - lower)
                return min(max(estimate, self._min), self._max)
            lower = bound
        return self._max  # rank fell in the +Inf bucket

    def _touched(self) -> bool:
        return self._count > 0

    # -- wire format ----------------------------------------------------------

    def _wire(self, baseline: dict | None) -> dict | None:
        if baseline is None:
            return {
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
            }
        if self._count == baseline["count"]:
            return None
        return {
            "buckets": list(self.buckets),
            "counts": [now - then for now, then
                       in zip(self._counts, baseline["counts"])],
            "sum": self._sum - baseline["sum"],
            "count": self._count - baseline["count"],
            # min/max are monotone over a histogram's lifetime, so the
            # current extrema are always a safe (if slightly wide) bound
            # for the delta's samples.
            "min": self._min,
            "max": self._max,
        }

    def _wire_baseline(self) -> dict:
        return {"counts": list(self._counts), "sum": self._sum,
                "count": self._count}

    def _merge_wire(self, payload: dict) -> None:
        bounds = tuple(float(b) for b in payload["buckets"])
        with self._lock:
            if self._count == 0 and self.buckets != bounds:
                # Untouched target: adopt the incoming boundaries wholesale.
                self.buckets = bounds
                self._counts = [0] * (len(bounds) + 1)
            if self.buckets != bounds:
                raise ValueError(
                    f"cannot merge histogram {self.name!r}: bucket boundaries "
                    f"differ ({self.buckets} vs {bounds})"
                )
            for position, count in enumerate(payload["counts"]):
                self._counts[position] += int(count)
            self._sum += float(payload["sum"])
            self._count += int(payload["count"])
            if payload.get("min") is not None:
                self._min = min(self._min, float(payload["min"]))
            if payload.get("max") is not None:
                self._max = max(self._max, float(payload["max"]))

    def _value_dict(self) -> dict:
        bucket_counts = {}
        cumulative = 0
        for bound, count in zip(self.buckets, self._counts):
            cumulative += count
            bucket_counts[bound] = cumulative
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": bucket_counts,
        }


class MetricsRegistry:
    """Named instrument store: create-or-get, snapshot, and exposition."""

    def __init__(self):
        self._instruments: dict[str, _Instrument] = {}
        #: Per-series baselines for :meth:`collect_delta` (what was last
        #: shipped), keyed by ``(name, label_key)``.
        self._shipped: dict[tuple, dict] = {}
        #: One lock for the registry and every instrument it creates, so
        #: a scrape sees an atomic registry-wide view (re-entrant because
        #: a locked scrape calls locked instrument methods).
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        # Restore the one-lock-per-registry invariant.
        for instrument in self._instruments.values():
            instrument._lock = self._lock
            for child in instrument._children.values():
                child._lock = self._lock

    def _get(self, name: str, factory, kind: str):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                instrument._lock = self._lock
                self._instruments[name] = instrument
                return instrument
        if instrument.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"not {kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(name, help), "gauge")

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return self._get(
            name, lambda: Histogram(name, help, buckets=buckets), "histogram"
        )

    def __iter__(self):
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict:
        """Plain-dict view: ``{name: {"type", "help", "series": [...]}}``.

        Each series entry carries its ``labels`` dict and either a scalar
        ``value`` (counter/gauge) or the histogram's summary dict.
        """
        out: dict = {}
        with self._lock:
            for name, instrument in sorted(self._instruments.items()):
                series = []
                for child in instrument._series():
                    labels = dict(child._labels)
                    if isinstance(child, Histogram):
                        series.append({"labels": labels,
                                       **child._value_dict()})
                    else:
                        series.append({"labels": labels,
                                       "value": child.value})
                out[name] = {"type": instrument.kind,
                             "help": instrument.help, "series": series}
        return out

    # -- wire format: dump / delta / merge ------------------------------------

    def _collect_wire(self, *, delta: bool) -> dict:
        out: dict = {}
        with self._lock:
            for name, instrument in sorted(self._instruments.items()):
                series = []
                for child in (instrument, *instrument._children.values()):
                    key = (name, child._labels)
                    baseline = self._shipped.get(key) if delta else None
                    if baseline is None and not child._touched():
                        continue
                    payload = child._wire(baseline)
                    if delta:
                        self._shipped[key] = child._wire_baseline()
                    if payload is None:
                        continue
                    series.append({"labels": dict(child._labels), **payload})
                if series:
                    out[name] = {"kind": instrument.kind,
                                 "help": instrument.help, "series": series}
        return out

    def dump(self) -> dict:
        """Every series in the JSON-able wire format :meth:`merge` accepts.

        Counters and gauges carry ``{"value": v}``; histograms carry their
        raw (non-cumulative) bucket ``counts`` plus ``sum``/``count`` and
        observed ``min``/``max``, so a merge is bit-exact bucket-wise.
        """
        return self._collect_wire(delta=False)

    def collect_delta(self) -> dict:
        """What changed since the previous collection, then advance the
        baseline.

        The first call returns everything (a full :meth:`dump`); later
        calls return counter/histogram *increments* and the current value
        of any gauge written since — so repeatedly merging consecutive
        deltas into another registry reproduces this registry's totals
        with no double counting.  Unchanged series are omitted.
        """
        return self._collect_wire(delta=True)

    def merge(self, wire: dict, extra_labels: dict | None = None) -> None:
        """Fold a :meth:`dump`/:meth:`collect_delta` payload into this
        registry.

        Counters add, gauges last-write-wins, histograms merge bucket-wise
        (boundaries must agree unless the target series is untouched).
        ``extra_labels`` are stamped on every merged series — the
        coordinator passes ``{"worker": "<index>"}`` so replica telemetry
        stays attributable after aggregation.
        """
        with self._lock:
            for name, family in wire.items():
                kind = family.get("kind", "untyped")
                help = family.get("help", "")
                series_list = family.get("series", ())
                if kind == "counter":
                    instrument = self.counter(name, help)
                elif kind == "gauge":
                    instrument = self.gauge(name, help)
                elif kind == "histogram":
                    buckets = DEFAULT_LATENCY_BUCKETS
                    for series in series_list:
                        if series.get("buckets"):
                            buckets = tuple(series["buckets"])
                            break
                    instrument = self.histogram(name, help, buckets=buckets)
                else:
                    raise ValueError(
                        f"cannot merge metric {name!r} of unknown kind "
                        f"{kind!r}"
                    )
                if help and not instrument.help:
                    instrument.help = help
                for series in series_list:
                    labels = dict(series["labels"])
                    if extra_labels:
                        labels.update(extra_labels)
                    child = (instrument.labels(**labels) if labels
                             else instrument)
                    child._merge_wire(series)

    def render_text(self) -> str:
        """Prometheus text exposition (the format scrapers and humans diff)."""
        lines: list[str] = []
        # One HELP/TYPE pair per metric family, exactly once, before any of
        # the family's samples (the exposition-format contract scrapers
        # check).
        with self._lock:
            self._render_into(lines)
        return "\n".join(lines) + ("\n" if lines else "")

    def _render_into(self, lines: list[str]) -> None:
        for name, instrument in sorted(self._instruments.items()):
            if instrument.help:
                lines.append(f"# HELP {name} {_escape_help(instrument.help)}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            for child in instrument._series():
                labelled = _render_labels(child._labels)
                if isinstance(child, Histogram):
                    cumulative = 0
                    for bound, count in zip(child.buckets, child._counts):
                        cumulative += count
                        bucket_labels = _render_labels(
                            child._labels + (("le", f"{bound:g}"),)
                        )
                        lines.append(
                            f"{name}_bucket{bucket_labels} {cumulative}"
                        )
                    inf_labels = _render_labels(
                        child._labels + (("le", "+Inf"),)
                    )
                    lines.append(f"{name}_bucket{inf_labels} {child.count}")
                    lines.append(f"{name}_sum{labelled} {child.sum:g}")
                    lines.append(f"{name}_count{labelled} {child.count}")
                else:
                    lines.append(f"{name}{labelled} {child.value:g}")
