"""The :class:`Observability` facade: tracer + metrics + event sink.

One object threads through the whole pipeline.  Components hold a facade
that is *never* ``None`` — the module-level :data:`NULL_OBS` carries a
:class:`~repro.obs.trace.NullTracer` and a :class:`~repro.obs.events.NullSink`,
so instrumentation sites cost one ``obs.enabled`` attribute check (events,
metrics) or one shared no-op context manager (spans) when observability is
off.

Typical construction::

    obs = Observability.to_jsonl("trace.jsonl")   # spans + events → file
    learner = Learner(factory, obs=obs)
    ... run ...
    print(obs.registry.render_text())
    obs.close()
"""

from __future__ import annotations

from pathlib import Path

from .events import CompositeSink, EventSink, JsonlSink, MemorySink, NullSink
from .metrics import MetricsRegistry
from .trace import NULL_TRACER, Tracer

__all__ = ["Observability", "NULL_OBS"]


class Observability:
    """Bundle of tracer, metrics registry, and event sink.

    Parameters
    ----------
    tracer:
        A :class:`~repro.obs.trace.Tracer` (or the shared null tracer).
        ``None`` builds a real tracer wired to ``sink``.
    registry:
        Metrics registry; ``None`` builds a fresh one.
    sink:
        Event sink; ``None`` means a :class:`MemorySink`.
    enabled:
        Master switch checked by every instrumentation site.
    """

    __slots__ = ("tracer", "registry", "sink", "enabled")

    def __init__(self, tracer: Tracer | None = None,
                 registry: MetricsRegistry | None = None,
                 sink: EventSink | None = None, enabled: bool = True):
        self.enabled = enabled
        self.sink = sink if sink is not None else MemorySink()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(sink=self.sink)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def disabled(cls) -> "Observability":
        """The shared zero-cost facade (see :data:`NULL_OBS`)."""
        return NULL_OBS

    @classmethod
    def in_memory(cls) -> "Observability":
        """Everything retained in process — tests and dashboards."""
        return cls()

    @classmethod
    def to_jsonl(cls, path: str | Path,
                 extra_sink: EventSink | None = None) -> "Observability":
        """Spans and events streamed to a JSONL file (plus ``extra_sink``)."""
        jsonl = JsonlSink(path)
        sink: EventSink = (CompositeSink(jsonl, extra_sink)
                           if extra_sink is not None else jsonl)
        return cls(sink=sink)

    # -- emission -------------------------------------------------------------

    def emit(self, event) -> None:
        """Send one typed event to the sink (no-op when disabled)."""
        if self.enabled:
            self.sink.emit(event)

    def close(self) -> None:
        self.sink.close()

    def __enter__(self) -> "Observability":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _build_null() -> Observability:
    # NULL_OBS is assembled once at import time, before any worker or
    # server thread can exist, and is never mutated afterwards — so the
    # unlocked attribute writes below cannot race anything.
    obs = Observability.__new__(Observability)
    obs.enabled = False
    obs.tracer = NULL_TRACER
    obs.sink = NullSink()  # repro: noqa[REP008]
    obs.registry = MetricsRegistry()  # repro: noqa[REP008] - inert when disabled
    return obs


#: The default facade every component falls back to; permanently disabled.
NULL_OBS = _build_null()
