"""Post-hoc trace analysis: summarize a JSONL event/span log.

Backs ``python -m repro report trace.jsonl``.  Answers the questions the
paper's adaptive-routing design raises after a run: how often each
mechanism answered and at what latency, how often a claimed reoccurrence
actually produced a usable knowledge match, and how the window's decay
behaviour evolved along the stream.

Also accepts a saved ``/snapshot`` payload from the live telemetry plane
(one JSON object with ``"kind": "snapshot"``, see
:func:`repro.obs.live.build_snapshot`) — its recent-event ring feeds the
same summarizer, so live and post-hoc reporting share one renderer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .events import (
    AswDecayApplied,
    CecInvoked,
    KnowledgeEvicted,
    KnowledgePreserved,
    KnowledgeReused,
    ShiftAssessed,
    StrategySelected,
    event_from_dict,
    read_records,
)

__all__ = ["TraceSummary", "summarize_trace", "render_report"]


@dataclass
class TraceSummary:
    """Everything the ``report`` subcommand derives from one trace."""

    path: str
    num_events: int
    num_spans: int
    event_counts: dict[str, int]
    pattern_counts: dict[str, int]
    strategy_counts: dict[str, int]
    fallback_counts: dict[str, int]          # reason → count
    #: strategy → {"count", "p50", "p95", "mean"} predict latency (seconds)
    strategy_latency: dict[str, dict[str, float]]
    #: span name → {"count", "p50", "p95", "mean"} over all spans
    span_latency: dict[str, dict[str, float]]
    reuse_attempts: int
    reuse_hits: int
    #: (arrival, mean_rate, disorder) per AswDecayApplied, stream order
    decay_timeline: list[tuple[int, float, float]] = field(default_factory=list)
    preserved: int = 0
    evicted: int = 0
    cec_calls: int = 0
    cec_mean_vote_margin: float | None = None

    @property
    def reuse_hit_rate(self) -> float | None:
        """Knowledge matches found per reuse attempt (``None`` = no attempts)."""
        if self.reuse_attempts == 0:
            return None
        return self.reuse_hits / self.reuse_attempts


def _percentiles(samples: list[float]) -> dict[str, float]:
    values = np.asarray(samples, dtype=float)
    return {
        "count": int(values.size),
        "mean": float(values.mean()),
        "p50": float(np.percentile(values, 50)),
        "p95": float(np.percentile(values, 95)),
    }


def _walk_spans(record: dict):
    yield record
    for child in record.get("children", ()):
        yield from _walk_spans(child)


def _load_records(path: str | Path):
    """Events + spans from either a JSONL trace or a ``/snapshot`` dump."""
    text = Path(path).read_text(encoding="utf-8")
    if text.lstrip().startswith("{"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None  # multi-line JSONL whose first record is a dict
        if isinstance(payload, dict) and payload.get("kind") == "snapshot":
            events = []
            spans = []
            for record in payload.get("records", ()):
                if record.get("kind") == "span":
                    spans.append(record)
                elif record.get("kind") == "event":
                    event = event_from_dict(record)
                    if event is not None:
                        events.append(event)
            return events, spans
    return read_records(path)


def summarize_trace(path: str | Path) -> TraceSummary:
    """Parse and aggregate one JSONL trace (or ``/snapshot`` JSON) file."""
    events, spans = _load_records(path)

    event_counts: dict[str, int] = {}
    pattern_counts: dict[str, int] = {}
    strategy_counts: dict[str, int] = {}
    fallback_counts: dict[str, int] = {}
    decay_timeline: list[tuple[int, float, float]] = []
    reuse_hits = 0
    reuse_failures = 0
    preserved = 0
    evicted = 0
    vote_margins: list[float] = []

    for event in events:
        event_counts[event.TYPE] = event_counts.get(event.TYPE, 0) + 1
        if isinstance(event, ShiftAssessed):
            pattern_counts[event.pattern] = (
                pattern_counts.get(event.pattern, 0) + 1
            )
        elif isinstance(event, StrategySelected):
            strategy_counts[event.strategy] = (
                strategy_counts.get(event.strategy, 0) + 1
            )
            if event.fallback:
                fallback_counts[event.reason or "unspecified"] = (
                    fallback_counts.get(event.reason or "unspecified", 0) + 1
                )
                if event.reason == "no knowledge match":
                    reuse_failures += 1
        elif isinstance(event, KnowledgeReused):
            reuse_hits += 1
        elif isinstance(event, AswDecayApplied):
            decay_timeline.append(
                (event.arrival, event.mean_rate, event.disorder)
            )
        elif isinstance(event, KnowledgePreserved):
            preserved += 1
        elif isinstance(event, KnowledgeEvicted):
            evicted += event.count
        elif isinstance(event, CecInvoked):
            vote_margins.append(event.vote_margin)

    by_strategy: dict[str, list[float]] = {}
    by_name: dict[str, list[float]] = {}
    for root in spans:
        for record in _walk_spans(root):
            by_name.setdefault(record["name"], []).append(record["duration"])
            if record["name"] == "learner.predict":
                strategy = record.get("attributes", {}).get("strategy")
                if strategy:
                    by_strategy.setdefault(strategy, []).append(
                        record["duration"]
                    )

    return TraceSummary(
        path=str(path),
        num_events=len(events),
        num_spans=len(spans),
        event_counts=dict(sorted(event_counts.items())),
        pattern_counts=dict(sorted(pattern_counts.items())),
        strategy_counts=dict(sorted(strategy_counts.items())),
        fallback_counts=dict(sorted(fallback_counts.items())),
        strategy_latency={name: _percentiles(samples)
                          for name, samples in sorted(by_strategy.items())},
        span_latency={name: _percentiles(samples)
                      for name, samples in sorted(by_name.items())},
        reuse_attempts=reuse_hits + reuse_failures,
        reuse_hits=reuse_hits,
        decay_timeline=decay_timeline,
        preserved=preserved,
        evicted=evicted,
        cec_calls=len(vote_margins),
        cec_mean_vote_margin=(float(np.mean(vote_margins))
                              if vote_margins else None),
    )


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.3f}ms"


def render_report(summary: TraceSummary) -> str:
    """Human-readable report for one :class:`TraceSummary`."""
    lines = [
        f"trace    : {summary.path}",
        f"records  : {summary.num_events} events, {summary.num_spans} span trees",
    ]

    if summary.pattern_counts:
        parts = ", ".join(f"{name}={count}" for name, count
                          in summary.pattern_counts.items())
        lines.append(f"patterns : {parts}")
    if summary.strategy_counts:
        parts = ", ".join(f"{name}={count}" for name, count
                          in summary.strategy_counts.items())
        lines.append(f"strategy : {parts}")
    if summary.fallback_counts:
        parts = ", ".join(f"{reason}={count}" for reason, count
                          in summary.fallback_counts.items())
        lines.append(f"fallbacks: {parts}")

    if summary.strategy_latency:
        lines.append("")
        lines.append("predict latency by strategy (p50 / p95 / mean):")
        for name, stats in summary.strategy_latency.items():
            lines.append(
                f"  {name:18s} {_ms(stats['p50'])} {_ms(stats['p95'])} "
                f"{_ms(stats['mean'])}  (n={stats['count']})"
            )
    if summary.span_latency:
        lines.append("")
        lines.append("stage latency (p50 / p95 / mean):")
        for name, stats in summary.span_latency.items():
            lines.append(
                f"  {name:24s} {_ms(stats['p50'])} {_ms(stats['p95'])} "
                f"{_ms(stats['mean'])}  (n={stats['count']})"
            )

    lines.append("")
    hit_rate = summary.reuse_hit_rate
    if hit_rate is None:
        lines.append("knowledge reuse: no attempts")
    else:
        lines.append(
            f"knowledge reuse: {summary.reuse_hits}/{summary.reuse_attempts} "
            f"attempts matched (hit-rate {hit_rate * 100:.0f}%)"
        )
    lines.append(
        f"knowledge store: {summary.preserved} preserved, "
        f"{summary.evicted} evicted"
    )
    if summary.cec_calls:
        lines.append(
            f"cec            : {summary.cec_calls} calls, mean vote margin "
            f"{summary.cec_mean_vote_margin:.2f}"
        )

    if summary.decay_timeline:
        rates = [rate for _, rate, _ in summary.decay_timeline]
        disorders = [disorder for _, _, disorder in summary.decay_timeline]
        lines.append(
            f"asw decay      : {len(rates)} passes, rate "
            f"mean={float(np.mean(rates)):.3f} "
            f"min={min(rates):.3f} max={max(rates):.3f}, disorder "
            f"mean={float(np.mean(disorders)):.3f}"
        )
    return "\n".join(lines)
