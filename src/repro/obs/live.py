"""The live telemetry plane: aggregation, exposition, and SLO alerts.

Three connected layers turn the post-hoc observability of
:mod:`repro.obs` into something a serving run can be watched through:

1. **Cross-process aggregation** — :func:`drain_telemetry` packages a
   replica facade's metric deltas (:meth:`MetricsRegistry.collect_delta`)
   and buffered event records (:meth:`MemorySink.drain`) into one
   picklable payload; :func:`absorb_telemetry` merges it into the
   coordinator facade with a ``worker`` label.  The distributed backends
   call these at drain/sync boundaries and on worker exit, so metrics and
   events produced inside forked workers reach the root registry instead
   of dying with the child process.
2. **Exposition** — :class:`TelemetryServer`, a stdlib-only threaded
   ``http.server`` exposing ``/metrics`` (Prometheus text),
   ``/health`` (breaker + backend + alert state), and ``/snapshot``
   (JSON registry dump plus the recent-event ring).
3. **SLO/alert engine** — declarative :class:`SloRule` objects (signal +
   sliding window + aggregate + threshold) evaluated incrementally by
   :class:`SloEngine` as samples arrive, raising/resolving
   :class:`~repro.obs.events.AlertRaised` /
   :class:`~repro.obs.events.AlertResolved` events and optionally nudging
   the resilience degrade chain pre-emptively.

Everything here is standard library only; the server binds
``127.0.0.1`` by default and an ephemeral port when ``port=0``.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .events import (
    AlertRaised,
    AlertResolved,
    CompositeSink,
    Event,
    EventSink,
    MemorySink,
    event_from_dict,
)
from .facade import Observability

__all__ = [
    "drain_telemetry",
    "absorb_telemetry",
    "find_ring",
    "SloRule",
    "SloEngine",
    "default_slo_rules",
    "TelemetryServer",
    "build_snapshot",
    "parse_prometheus_text",
]


# -- layer 1: cross-process aggregation ----------------------------------------


def drain_telemetry(obs: Observability) -> tuple[dict, list[dict]]:
    """Package a replica facade's pending telemetry for shipping.

    Returns ``(metric_delta, event_records)`` where the delta is the
    registry's :meth:`~repro.obs.metrics.MetricsRegistry.collect_delta`
    payload (baseline advances, so draining twice never double-counts)
    and the records are the sink ring's contents as plain dicts.  Both
    halves are picklable/JSON-able, so they travel over the
    ProcessBackend reply pipe unchanged.
    """
    if not obs.enabled:
        return {}, []
    delta = obs.registry.collect_delta()
    records: list[dict] = []
    if isinstance(obs.sink, MemorySink):
        records = [EventSink._as_dict(record) for record in obs.sink.drain()]
    return delta, records


def absorb_telemetry(obs: Observability, delta: dict, records: list[dict],
                     worker: int | None = None) -> None:
    """Merge one shipped telemetry payload into the coordinator facade.

    Metric series gain a ``worker`` label (when ``worker`` is given) so
    replica activity stays attributable after aggregation; typed events
    are rebuilt through :func:`~repro.obs.events.event_from_dict` and
    re-emitted on the coordinator sink, span dicts gain a ``worker``
    attribute and pass through as-is.
    """
    if not obs.enabled:
        return
    extra = {"worker": str(worker)} if worker is not None else None
    if delta:
        obs.registry.merge(delta, extra_labels=extra)
    for record in records:
        if record.get("kind") == "event":
            event = event_from_dict(record)
            if event is not None:
                obs.sink.emit(event)
                continue
        if worker is not None and record.get("kind") == "span":
            record = dict(record)
            attributes = dict(record.get("attributes") or {})
            attributes.setdefault("worker", worker)
            record["attributes"] = attributes
        obs.sink.emit(record)


# -- layer 3: the SLO/alert engine ---------------------------------------------
# (defined before the server because /health surfaces engine state)

_AGGREGATES = ("p50", "p95", "p99", "mean", "max", "rate", "count")
_COMPARISONS = (">", "<", ">=", "<=")
_QUANTILES = {"p50": 0.50, "p95": 0.95, "p99": 0.99}


@dataclass(frozen=True)
class SloRule:
    """One declarative service-level objective.

    Watches a named sample *signal* — every event type is a signal whose
    samples are ``1.0`` occurrences (``"degraded_mode"``,
    ``"worker_restarted"``, ...), and callers can feed numeric signals
    directly via :meth:`SloEngine.observe` (the evaluation harness feeds
    ``"process_latency"`` per batch).  The rule aggregates the samples
    that fell inside the last ``window`` engine ticks and alerts while
    ``aggregate(samples) <comparison> threshold`` holds.

    Aggregates: ``p50``/``p95``/``p99``/``mean``/``max`` over sample
    values, ``count`` (samples in window), ``rate`` (samples per tick).
    """

    name: str
    signal: str
    threshold: float
    window: int = 50
    aggregate: str = "p99"
    comparison: str = ">"
    #: Samples required in-window before the rule may *raise* (value
    #: aggregates only; ``rate``/``count`` are well defined on empty
    #: windows).
    min_samples: int = 1

    def __post_init__(self):
        if not self.name:
            raise ValueError("SloRule needs a non-empty name")
        if self.aggregate not in _AGGREGATES:
            raise ValueError(
                f"unknown aggregate {self.aggregate!r}; "
                f"expected one of {_AGGREGATES}"
            )
        if self.comparison not in _COMPARISONS:
            raise ValueError(
                f"unknown comparison {self.comparison!r}; "
                f"expected one of {_COMPARISONS}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1; got {self.window}")
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1; got {self.min_samples}"
            )

    def describe(self) -> dict:
        """JSON-able summary used by ``/health``."""
        return {"name": self.name, "signal": self.signal,
                "aggregate": self.aggregate, "comparison": self.comparison,
                "threshold": self.threshold, "window": self.window}


def default_slo_rules() -> list[SloRule]:
    """The stock rule set ``run --serve-telemetry`` starts with."""
    return [
        SloRule("process-latency-p99", signal="process_latency",
                aggregate="p99", threshold=1.0, window=50, min_samples=5),
        SloRule("degraded-rate", signal="degraded_mode",
                aggregate="rate", threshold=0.25, window=40),
        SloRule("worker-restart-rate", signal="worker_restarted",
                aggregate="rate", threshold=0.15, window=40),
        SloRule("shift-assess-backlog", signal="shift_assessed",
                aggregate="rate", comparison="<", threshold=0.05, window=200),
    ]


@dataclass
class _AlertState:
    rule: SloRule
    raised_at: int
    value: float

    def to_dict(self) -> dict:
        return {"rule": self.rule.name, "signal": self.rule.signal,
                "aggregate": self.rule.aggregate,
                "comparison": self.rule.comparison,
                "threshold": self.rule.threshold,
                "value": self.value, "raised_at": self.raised_at}


def _compare(value: float, comparison: str, threshold: float) -> bool:
    if comparison == ">":
        return value > threshold
    if comparison == "<":
        return value < threshold
    if comparison == ">=":
        return value >= threshold
    return value <= threshold


class SloEngine(EventSink):
    """Evaluates :class:`SloRule` windows incrementally as samples arrive.

    The engine doubles as an event sink: wire it into the run's sink
    chain (``CompositeSink(original, engine)``) and every pipeline event
    becomes a ``1.0`` sample on the signal named by its ``TYPE``.
    Numeric signals are fed via :meth:`observe`; the evaluation harness
    calls :meth:`observe_report` once per batch, which also advances the
    engine's clock (one *tick* per batch — windows are measured in
    batches, not wall time, so replays evaluate identically).

    Breaches emit :class:`AlertRaised` on the facade passed at
    construction (and bump ``freeway_alerts_total{rule=...}``); recovery
    emits :class:`AlertResolved`.  With ``pre_emptive_degrade=True`` and
    a bound target (:meth:`bind`), the first active alert switches the
    target learner into degraded mode and the last resolution restores
    its previous setting.
    """

    def __init__(self, rules: list[SloRule] | None = None,
                 obs: Observability | None = None, *,
                 pre_emptive_degrade: bool = False):
        self.rules = list(rules) if rules is not None else default_slo_rules()
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {sorted(names)}")
        self._obs = obs
        self.pre_emptive_degrade = bool(pre_emptive_degrade)
        self._target = None
        self._target_was_degrading: bool | None = None
        self._tick = 0
        self._by_signal: dict[str, list[SloRule]] = {}
        for rule in self.rules:
            self._by_signal.setdefault(rule.signal, []).append(rule)
        #: Per-signal ``(tick, value)`` samples still inside some window.
        self._samples: dict[str, deque] = {
            signal: deque() for signal in self._by_signal
        }
        self._horizon: dict[str, int] = {
            signal: max(rule.window for rule in rules)
            for signal, rules in self._by_signal.items()
        }
        #: Active alerts by rule name.
        self.active: dict[str, _AlertState] = {}
        self.raised_total = 0
        self.resolved_total = 0
        #: Guards sample intake and alert state: the run loop ticks while
        #: a TelemetryServer thread reads ``status``/``summary``.
        #: Re-entrant because ``_evaluate`` → ``_publish`` → ``obs.emit``
        #: can come straight back through a composite sink into ``emit``.
        self._lock = threading.RLock()

    # An engine can ride inside a pickled checkpoint via a learner's obs
    # sink chain; locks do not pickle.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -- wiring ----------------------------------------------------------------

    def bind(self, target) -> None:
        """Attach the learner/estimator under observation.

        Used for pre-emptive degrade (``target.set_degrade``) — harmless
        for targets without that method.
        """
        self._target = target

    @property
    def target(self):
        """The estimator bound via :meth:`bind` (``None`` before binding)."""
        return self._target

    # -- sample intake ---------------------------------------------------------

    def emit(self, record) -> None:
        """EventSink duty: every pipeline event is an occurrence sample."""
        if isinstance(record, (AlertRaised, AlertResolved)):
            return  # our own output, fed back through a composite sink
        if isinstance(record, Event):
            self.observe(record.TYPE, 1.0)
        elif isinstance(record, dict) and record.get("kind") == "event":
            self.observe(record.get("type", ""), 1.0)

    def observe(self, signal: str, value: float = 1.0) -> None:
        """Record one sample on ``signal`` and re-evaluate its rules."""
        rules = self._by_signal.get(signal)
        if not rules:
            return
        with self._lock:
            self._samples[signal].append((self._tick, float(value)))
            for rule in rules:
                self._evaluate(rule)

    def observe_report(self, report) -> None:
        """Feed one per-batch report: a latency sample plus one tick."""
        latency = float(getattr(report, "latency_s", 0.0) or 0.0)
        if not latency:
            latency = (float(getattr(report, "predict_seconds", 0.0) or 0.0)
                       + float(getattr(report, "update_seconds", 0.0) or 0.0))
        self.observe("process_latency", latency)
        self.tick()

    def tick(self) -> None:
        """Advance the engine clock one batch and age out old samples."""
        with self._lock:
            self._tick += 1
            for signal, samples in self._samples.items():
                horizon = self._tick - self._horizon[signal]
                while samples and samples[0][0] <= horizon:
                    samples.popleft()
            for rule in self.rules:
                self._evaluate(rule)

    # -- evaluation ------------------------------------------------------------

    def _window_values(self, rule: SloRule) -> list[float]:
        horizon = self._tick - rule.window
        return [value for tick, value in self._samples[rule.signal]
                if tick > horizon]

    def _aggregate(self, rule: SloRule, values: list[float]) -> float | None:
        if rule.aggregate == "count":
            return float(len(values))
        if rule.aggregate == "rate":
            # Samples per tick over the full window, even before `window`
            # ticks have elapsed: a partial-window denominator would let a
            # single early sample read as a full-rate breach and flap.
            return len(values) / rule.window
        if len(values) < rule.min_samples:
            return None
        if rule.aggregate == "mean":
            return sum(values) / len(values)
        if rule.aggregate == "max":
            return max(values)
        ordered = sorted(values)
        rank = _QUANTILES[rule.aggregate] * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction

    def _evaluate(self, rule: SloRule) -> None:
        # Callers (observe/tick) already hold the lock; re-acquiring the
        # RLock is cheap and keeps this safe if ever called standalone.
        with self._lock:
            values = self._window_values(rule)
            value = self._aggregate(rule, values)
            breached = (value is not None
                        and _compare(value, rule.comparison, rule.threshold))
            if breached and rule.comparison in ("<", "<="):
                # Starvation rules ("too little activity") cannot be judged
                # on a partial window: a fresh engine is always under-rate.
                breached = self._tick >= rule.window
            name = rule.name
            if breached and name not in self.active:
                self.active[name] = _AlertState(rule, self._tick, value)
                self.raised_total += 1
                self._publish(AlertRaised(
                    rule=name, signal=rule.signal, value=float(value),
                    threshold=rule.threshold, batch=self._tick,
                ), count=True)
                self._nudge_degrade()
            elif not breached and name in self.active:
                state = self.active.pop(name)
                self.resolved_total += 1
                self._publish(AlertResolved(
                    rule=name,
                    value=float(value) if value is not None else state.value,
                    threshold=rule.threshold,
                    batches_active=self._tick - state.raised_at,
                    batch=self._tick,
                ), count=False)
                self._nudge_degrade()

    def _publish(self, event: Event, *, count: bool) -> None:
        obs = self._obs
        if obs is None or not obs.enabled:
            return
        obs.emit(event)  # re-entry through a composite sink is ignored above
        if count:
            obs.registry.counter(
                "freeway_alerts_total", "SLO alerts raised, by rule",
            ).labels(rule=event.rule).inc()

    def _nudge_degrade(self) -> None:
        if not self.pre_emptive_degrade or self._target is None:
            return
        target = self._target
        set_degrade = getattr(target, "set_degrade", None)
        if set_degrade is None:
            return
        if self.active:
            if self._target_was_degrading is None:
                self._target_was_degrading = bool(
                    getattr(target, "degrade", False)
                )
                set_degrade(True)
        elif self._target_was_degrading is not None:
            set_degrade(self._target_was_degrading)
            self._target_was_degrading = None

    # -- inspection ------------------------------------------------------------

    def status(self) -> list[dict]:
        """The active alerts, JSON-able, ordered by rule name."""
        with self._lock:
            return [self.active[name].to_dict()
                    for name in sorted(self.active)]

    def summary(self) -> dict:
        """Engine state for ``/health`` and ``/snapshot``."""
        with self._lock:
            return {
                "tick": self._tick,
                "rules": [rule.describe() for rule in self.rules],
                "active": self.status(),
                "raised_total": self.raised_total,
                "resolved_total": self.resolved_total,
                "pre_emptive_degrade": self.pre_emptive_degrade,
            }


# -- layer 2: HTTP exposition --------------------------------------------------


def find_ring(sink) -> MemorySink | None:
    """The first in-memory ring inside a (possibly composite) sink."""
    if isinstance(sink, MemorySink):
        return sink
    if isinstance(sink, CompositeSink):
        for inner in sink.sinks:
            ring = find_ring(inner)
            if ring is not None:
                return ring
    return None


def build_snapshot(obs: Observability, engine: SloEngine | None = None,
                   ring: MemorySink | None = None) -> dict:
    """The ``/snapshot`` payload: registry dump + recent-event ring.

    The same schema ``python -m repro report`` accepts, so live and
    post-hoc reporting share one renderer.
    """
    if ring is None:
        ring = find_ring(obs.sink)
    if ring is not None:
        # Locked copy: a concurrent emit cannot shift the list mid-read.
        ring_records, ring_dropped = ring.snapshot()
    else:
        ring_records, ring_dropped = [], 0
    return {
        "kind": "snapshot",
        "metrics": obs.registry.snapshot(),
        "records": [EventSink._as_dict(record) for record in ring_records],
        "dropped_records": ring_dropped,
        "alerts": engine.summary() if engine is not None else None,
    }


class TelemetryServer:
    """Stdlib-only HTTP exposition for a live run.

    Serves three endpoints from daemon threads
    (``http.server.ThreadingHTTPServer``):

    - ``/metrics`` — Prometheus text exposition of ``obs.registry``;
    - ``/health`` — JSON: overall status (``ok`` / ``degraded`` /
      ``alerting``), active alerts, open circuit breakers, and the
      learner's :meth:`summary` when a health source is bound;
    - ``/snapshot`` — :func:`build_snapshot` JSON.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`
    after :meth:`start`).  Rendering happens on scrape threads while the
    run mutates the registry; renders retry a few times on the rare
    ``RuntimeError`` from a dict mutating mid-iteration.
    """

    def __init__(self, obs: Observability, engine: SloEngine | None = None,
                 health_source=None, *, host: str = "127.0.0.1",
                 port: int = 0, ring: MemorySink | None = None):
        self.obs = obs
        self.engine = engine
        #: Zero-arg callable returning the learner's ``summary()`` dict.
        self.health_source = health_source
        self.host = host
        self._requested_port = int(port)
        self.ring = ring
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- life cycle ------------------------------------------------------------

    def start(self) -> "TelemetryServer":
        if self._httpd is not None:
            return self
        plane = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # silence per-request stderr noise
                pass

            def do_GET(self):
                try:
                    plane._handle(self)
                except (BrokenPipeError, ConnectionResetError):
                    pass  # scraper went away mid-response

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="freeway-telemetry", daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    @property
    def port(self) -> int | None:
        return self._httpd.server_address[1] if self._httpd else None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- request handling ------------------------------------------------------

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                body = self._retry(self.obs.registry.render_text)
                self._respond(request, 200, body,
                              "text/plain; version=0.0.4; charset=utf-8")
            elif path == "/health":
                payload = self._retry(self.health)
                self._respond_json(request, 200, payload)
            elif path == "/snapshot":
                payload = self._retry(
                    lambda: build_snapshot(self.obs, self.engine, self.ring)
                )
                self._respond_json(request, 200, payload)
            else:
                self._respond(request, 404,
                              f"unknown path {path!r}; "
                              f"try /metrics, /health, /snapshot",
                              "text/plain; charset=utf-8")
        except Exception as error:  # repro: noqa[REP004] - a scrape must
            # never take the run down; report the failure to the scraper.
            self._respond(request, 500, f"telemetry error: {error}",
                          "text/plain; charset=utf-8")

    @staticmethod
    def _retry(render, attempts: int = 8):
        """Re-run ``render`` when a concurrent mutation trips iteration.

        The registry, ring, and SLO engine all lock their readers now, so
        this is belt-and-braces for ``health_source`` callables and any
        other unlocked state a renderer touches.
        """
        for remaining in range(attempts - 1, -1, -1):
            try:
                return render()
            except RuntimeError:
                if not remaining:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def health(self) -> dict:
        """The ``/health`` payload (also handy for in-process checks)."""
        summary: dict = {}
        source = self.health_source
        if callable(source):
            summary = source() or {}
        alerts = self.engine.status() if self.engine is not None else []
        breaker = summary.get("breaker") or {}
        open_circuits = sorted(
            mechanism for mechanism, state in breaker.items()
            if isinstance(state, dict) and state.get("open")
        )
        if alerts:
            status = "alerting"
        elif open_circuits or summary.get("degraded"):
            status = "degraded"
        else:
            status = "ok"
        payload = {
            "status": status,
            "alerts": alerts,
            "open_circuits": open_circuits,
            "backend": summary.get("backend"),
            "summary": summary,
        }
        if self.engine is not None:
            payload["slo"] = self.engine.summary()
        return payload

    # -- response plumbing -----------------------------------------------------

    @staticmethod
    def _respond(request: BaseHTTPRequestHandler, code: int, body: str,
                 content_type: str) -> None:
        encoded = body.encode("utf-8")
        request.send_response(code)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(encoded)))
        request.end_headers()
        request.wfile.write(encoded)

    @classmethod
    def _respond_json(cls, request: BaseHTTPRequestHandler, code: int,
                      payload: dict) -> None:
        cls._respond(request, code, json.dumps(payload, default=float),
                     "application/json; charset=utf-8")


# -- minimal exposition-format parser/validator --------------------------------


def _parse_sample_labels(text: str, lineno: int) -> dict:
    """Parse ``name="value",...`` honouring ``\\\\``/``\\"``/``\\n`` escapes."""
    labels: dict = {}
    position = 0
    length = len(text)
    while position < length:
        equals = text.find("=", position)
        if equals < 0:
            raise ValueError(f"line {lineno}: malformed labels {text!r}")
        name = text[position:equals].strip().lstrip(",").strip()
        if not name:
            raise ValueError(f"line {lineno}: empty label name in {text!r}")
        if equals + 1 >= length or text[equals + 1] != '"':
            raise ValueError(f"line {lineno}: unquoted label value "
                             f"for {name!r}")
        value_chars: list[str] = []
        position = equals + 2
        while True:
            if position >= length:
                raise ValueError(
                    f"line {lineno}: unterminated label value for {name!r}"
                )
            char = text[position]
            if char == "\\":
                escape = text[position + 1:position + 2]
                if escape == "n":
                    value_chars.append("\n")
                elif escape in ("\\", '"'):
                    value_chars.append(escape)
                else:
                    raise ValueError(
                        f"line {lineno}: bad escape \\{escape} in {name!r}"
                    )
                position += 2
                continue
            if char == '"':
                position += 1
                break
            value_chars.append(char)
            position += 1
        labels[name] = "".join(value_chars)
    return labels


_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_prometheus_text(text: str) -> dict:
    """Parse (and validate) Prometheus text exposition into families.

    Returns ``{family: {"type", "help", "samples": [(name, labels,
    value), ...]}}``.  Raises :class:`ValueError` on format violations:
    duplicate or sample-trailing ``# TYPE``/``# HELP`` lines, samples
    without a ``# TYPE``, unparsable label escapes or values, and
    histogram bucket series whose cumulative counts decrease.
    """
    families: dict[str, dict] = {}

    def family_for(sample_name: str, lineno: int) -> str:
        if sample_name in families:
            return sample_name
        for suffix in _HISTOGRAM_SUFFIXES:
            base = sample_name.removesuffix(suffix)
            if base != sample_name and families.get(base, {}).get(
                    "type") == "histogram":
                return base
        raise ValueError(
            f"line {lineno}: sample {sample_name!r} has no # TYPE line"
        )

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            keyword = line[2:6]
            rest = line[7:]
            name, _, payload = rest.partition(" ")
            if not name:
                raise ValueError(f"line {lineno}: malformed {keyword} line")
            family = families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )
            slot = keyword.lower()
            if family[slot] is not None:
                raise ValueError(
                    f"line {lineno}: duplicate # {keyword} for {name!r}"
                )
            if family["samples"]:
                raise ValueError(
                    f"line {lineno}: # {keyword} for {name!r} after its "
                    f"samples"
                )
            family[slot] = payload
            continue
        if line.startswith("#"):
            continue  # arbitrary comments are legal
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ValueError(f"line {lineno}: unbalanced braces")
            sample_name = line[:brace]
            labels = _parse_sample_labels(line[brace + 1:close], lineno)
            value_text = line[close + 1:].strip()
        else:
            sample_name, _, value_text = line.partition(" ")
            labels = {}
            value_text = value_text.strip()
        if not sample_name or not value_text:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        try:
            value = float(value_text.split()[0])  # ignore optional timestamp
        except ValueError:
            raise ValueError(
                f"line {lineno}: unparsable value {value_text!r}"
            ) from None
        family = families[family_for(sample_name, lineno)]
        if family["type"] is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} precedes its # TYPE"
            )
        family["samples"].append((sample_name, labels, value))

    _validate_histograms(families)
    return families


def _validate_histograms(families: dict) -> None:
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        cumulative: dict[tuple, float] = {}
        for sample_name, labels, value in family["samples"]:
            if sample_name != f"{name}_bucket":
                continue
            if "le" not in labels:
                raise ValueError(
                    f"histogram {name!r}: bucket sample missing 'le' label"
                )
            series = tuple(sorted(
                (key, val) for key, val in labels.items() if key != "le"
            ))
            previous = cumulative.get(series)
            if previous is not None and value < previous:
                raise ValueError(
                    f"histogram {name!r}{dict(series)}: cumulative bucket "
                    f"counts decreased ({value} < {previous})"
                )
            cumulative[series] = value
