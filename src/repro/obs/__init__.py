"""``repro.obs`` — dependency-free observability for the streaming pipeline.

Three layers, bundled by the :class:`Observability` facade:

- :mod:`repro.obs.metrics` — process-local counters, gauges, and
  histograms with labels, snapshots, and Prometheus text exposition;
- :mod:`repro.obs.trace` — nested wall-time spans with a zero-cost
  :class:`NullTracer` default;
- :mod:`repro.obs.events` — typed decision events (shift assessments,
  strategy selections, window decay, knowledge life cycle) streamed to
  JSONL/memory/composite sinks.

:mod:`repro.obs.report` turns a recorded JSONL trace back into per-strategy
latency percentiles, reuse hit-rates, and decay timelines.

:mod:`repro.obs.live` is the live telemetry plane: cross-worker
metric/event aggregation (:func:`drain_telemetry` /
:func:`absorb_telemetry`), a stdlib HTTP :class:`TelemetryServer`
(``/metrics``, ``/health``, ``/snapshot``), and an online SLO/alert
engine (:class:`SloRule` / :class:`SloEngine`).
"""

from .events import (
    DEFAULT_MEMORY_SINK_CAPACITY,
    EVENT_TYPES,
    AlertRaised,
    AlertResolved,
    AswDecayApplied,
    CecInvoked,
    CheckpointRejected,
    CheckpointWritten,
    CircuitOpened,
    CompositeSink,
    DegradedMode,
    Event,
    EventSink,
    JsonlSink,
    KnowledgeEvicted,
    KnowledgePreserved,
    KnowledgeReused,
    MemorySink,
    NullSink,
    RequestShed,
    ShiftAssessed,
    StrategySelected,
    TenantActivated,
    TenantEvicted,
    WorkerRestarted,
    event_from_dict,
    read_records,
)
from .facade import NULL_OBS, Observability
from .live import (
    SloEngine,
    SloRule,
    TelemetryServer,
    absorb_telemetry,
    build_snapshot,
    default_slo_rules,
    drain_telemetry,
    find_ring,
    parse_prometheus_text,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .report import TraceSummary, render_report, summarize_trace
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Observability",
    "NULL_OBS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_TRACER",
    "Event",
    "ShiftAssessed",
    "StrategySelected",
    "AswDecayApplied",
    "KnowledgePreserved",
    "KnowledgeReused",
    "KnowledgeEvicted",
    "CecInvoked",
    "CheckpointWritten",
    "CheckpointRejected",
    "WorkerRestarted",
    "DegradedMode",
    "CircuitOpened",
    "TenantActivated",
    "TenantEvicted",
    "RequestShed",
    "AlertRaised",
    "AlertResolved",
    "EVENT_TYPES",
    "event_from_dict",
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "CompositeSink",
    "NullSink",
    "DEFAULT_MEMORY_SINK_CAPACITY",
    "read_records",
    "drain_telemetry",
    "absorb_telemetry",
    "find_ring",
    "SloRule",
    "SloEngine",
    "default_slo_rules",
    "TelemetryServer",
    "build_snapshot",
    "parse_prometheus_text",
    "TraceSummary",
    "summarize_trace",
    "render_report",
]
