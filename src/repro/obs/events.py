"""Typed pipeline events and the sinks that receive them.

Every consequential decision the learner makes emits one structured event:
why a batch was classified the way it was (:class:`ShiftAssessed`), which
mechanism answered and whether that was a fallback
(:class:`StrategySelected`), how the adaptive window decayed
(:class:`AswDecayApplied`), and the full life cycle of preserved knowledge
(:class:`KnowledgePreserved` / :class:`KnowledgeReused` /
:class:`KnowledgeEvicted`).  Events are plain dataclasses that serialize to
flat JSON dicts (``{"kind": "event", "type": ..., **fields}``) and
round-trip through :func:`event_from_dict`, so a JSONL trace is a complete,
replayable audit log of a run.

Sinks are anything with ``emit(record)``; :class:`JsonlSink` appends to a
file, :class:`MemorySink` keeps records in a list (tests, dashboards), and
:class:`CompositeSink` fans out to several.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass, fields
from pathlib import Path

__all__ = [
    "Event",
    "ShiftAssessed",
    "StrategySelected",
    "AswDecayApplied",
    "KnowledgePreserved",
    "KnowledgeReused",
    "KnowledgeEvicted",
    "CecInvoked",
    "CheckpointWritten",
    "CheckpointRejected",
    "WorkerRestarted",
    "DegradedMode",
    "CircuitOpened",
    "TenantActivated",
    "TenantEvicted",
    "RequestShed",
    "AlertRaised",
    "AlertResolved",
    "EVENT_TYPES",
    "event_from_dict",
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "CompositeSink",
    "NullSink",
    "DEFAULT_MEMORY_SINK_CAPACITY",
    "read_records",
]


@dataclass
class Event:
    """Base class: serialization shared by every event type."""

    #: Wire name of the event; overridden per subclass.
    TYPE = "event"

    def to_dict(self) -> dict:
        return {"kind": "event", "type": self.TYPE, **asdict(self)}

    @classmethod
    def from_dict(cls, record: dict) -> "Event":
        names = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in record.items()
                      if key in names})


@dataclass
class ShiftAssessed(Event):
    """The classifier's verdict on one inference batch (Section III-C)."""

    TYPE = "shift_assessed"

    batch: int
    pattern: str
    distance: float | None = None      # d_t (Eq. 7)
    severity: float | None = None      # z-score M (Eq. 10)
    historical_distance: float | None = None  # d_h (Pattern C test)
    escalated: bool = False            # confidence channel overrode slight


@dataclass
class StrategySelected(Event):
    """Which mechanism answered the batch, and why (Section V, Fig. 8)."""

    TYPE = "strategy_selected"

    batch: int
    strategy: str
    pattern: str
    fallback: bool = False
    reason: str = ""


@dataclass
class AswDecayApplied(Event):
    """One decay pass of an adaptive streaming window (Alg. 1, Eq. 11)."""

    TYPE = "asw_decay_applied"

    window: str                        # owning granularity level
    arrival: int                       # window's arrival counter
    mean_rate: float                   # mean effective decay rate applied
    disorder: float                    # normalized inversion count
    inversions: int
    entries: int                       # entries surviving the pass
    evicted: int                       # entries dropped below min_weight


@dataclass
class KnowledgePreserved(Event):
    """A ``(d_i, k_i)`` pair entered the knowledge store (Section IV-D.1)."""

    TYPE = "knowledge_preserved"

    batch: int
    model_kind: str                    # "short" | "long"
    disorder: float
    nbytes: int
    store_size: int                    # entries after preservation


@dataclass
class KnowledgeReused(Event):
    """A stored distribution matched and answered a batch (Section IV-D.2)."""

    TYPE = "knowledge_reused"

    batch: int
    origin_batch: int                  # when the knowledge was preserved
    match_distance: float
    model_kind: str


@dataclass
class KnowledgeEvicted(Event):
    """Overflow eviction: the older half left memory (KdgBuffer bound)."""

    TYPE = "knowledge_evicted"

    count: int
    spilled: bool                      # written to the spill dir first?
    store_size: int                    # entries remaining in memory


@dataclass
class CecInvoked(Event):
    """One coherent-experience-clustering call (Section IV-C)."""

    TYPE = "cec_invoked"

    batch: int
    clusters: int
    labeled_points: int                # experience rows mixed in
    guided_clusters: int               # clusters containing experience
    vote_margin: float                 # mean top-label probability


@dataclass
class CheckpointWritten(Event):
    """A learner checkpoint reached durable storage."""

    TYPE = "checkpoint_written"

    path: str
    nbytes: int
    batch: int


@dataclass
class CheckpointRejected(Event):
    """The static compatibility checker blocked a checkpoint restore.

    Emitted before the typed :class:`~repro.analysis.CheckpointIncompatibleError`
    is raised, so a trace records *why* a restore never happened.
    """

    TYPE = "checkpoint_rejected"

    source: str                        # "knowledge" | "learner_checkpoint"
    reason: str                        # first problem, human readable
    problems: int                      # total incompatibilities found
    batch: int | None = None           # origin batch, when known
    model_kind: str = ""               # knowledge entries: "short" | "long"


@dataclass
class WorkerRestarted(Event):
    """A supervised backend replaced a dead or hung worker process."""

    TYPE = "worker_restarted"

    worker: int                        # worker index in the pool
    restarts: int                      # lifetime restarts of this slot
    reason: str                        # "crashed" | "hung" | traceback tail
    resubmitted: int = 0               # in-flight shards replayed
    reseeded: bool = False             # state restored from the last sync


@dataclass
class DegradedMode(Event):
    """A mechanism raised and the learner downgraded instead of crashing.

    The fallback chain is fixed (knowledge → CEC → multi-granularity →
    sanitized short model), so ``mechanism`` names what failed and
    ``fallback`` names what answered instead.
    """

    TYPE = "degraded_mode"

    batch: int
    mechanism: str                     # what raised: "knowledge_reuse" |
                                       # "cec" | "multi_granularity" |
                                       # "asw_train"
    fallback: str                      # what ran instead
    reason: str = ""                   # exception summary


@dataclass
class CircuitOpened(Event):
    """A mechanism's circuit breaker tripped after consecutive failures."""

    TYPE = "circuit_opened"

    mechanism: str
    failures: int                      # consecutive failures that tripped it
    cooldown: int                      # batches before a retry is allowed


@dataclass
class TenantActivated(Event):
    """A serving session entered memory (freshly built or rehydrated).

    Emitted by the :class:`~repro.serving.SessionRegistry` when a tenant's
    estimator becomes resident: ``rehydrated`` distinguishes a checkpoint
    restore from a cold build, and ``active`` records the resident-session
    count right after activation.
    """

    TYPE = "tenant_activated"

    tenant: str
    rehydrated: bool = False
    active: int = 0


@dataclass
class TenantEvicted(Event):
    """LRU eviction: a cold tenant's session checkpointed out of memory."""

    TYPE = "tenant_evicted"

    tenant: str
    nbytes: int = 0                    # checkpoint size written on the way out
    active: int = 0                    # resident sessions after eviction


@dataclass
class RequestShed(Event):
    """Admission control refused (or displaced) a serving request.

    ``reason`` names the policy decision: ``"tenant-queue-full"``,
    ``"global-queue-full"``, ``"displaced"`` (the ``oldest`` shed policy
    dropped it to admit newer work), or ``"circuit-open"`` (the tenant's
    serving circuit breaker is open).
    """

    TYPE = "request_shed"

    tenant: str
    reason: str
    pending: int = 0                   # global pending items at the decision


@dataclass
class AlertRaised(Event):
    """An SLO rule's sliding-window aggregate crossed its threshold.

    Emitted once per breach episode by the online
    :class:`~repro.obs.live.SloEngine`; the matching
    :class:`AlertResolved` closes the episode when the window recovers.
    """

    TYPE = "alert_raised"

    rule: str                          # SloRule.name
    signal: str                        # the sample stream the rule watches
    value: float                       # aggregate that breached
    threshold: float
    batch: int | None = None           # engine tick (batch) at the breach


@dataclass
class AlertResolved(Event):
    """A previously raised SLO alert's window dropped back under threshold."""

    TYPE = "alert_resolved"

    rule: str
    value: float                       # aggregate at resolution
    threshold: float
    batches_active: int = 0            # ticks the alert stayed raised
    batch: int | None = None


EVENT_TYPES: dict[str, type[Event]] = {
    cls.TYPE: cls
    for cls in (ShiftAssessed, StrategySelected, AswDecayApplied,
                KnowledgePreserved, KnowledgeReused, KnowledgeEvicted,
                CecInvoked, CheckpointWritten, CheckpointRejected,
                WorkerRestarted, DegradedMode, CircuitOpened,
                TenantActivated, TenantEvicted, RequestShed,
                AlertRaised, AlertResolved)
}


def event_from_dict(record: dict) -> Event | None:
    """Rebuild a typed event from its wire dict (``None`` if unknown)."""
    cls = EVENT_TYPES.get(record.get("type", ""))
    if cls is None:
        return None
    return cls.from_dict(record)


# -- sinks ---------------------------------------------------------------------


class EventSink:
    """Interface: receives event objects or raw span dicts."""

    def emit(self, record) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass

    @staticmethod
    def _as_dict(record) -> dict:
        return record.to_dict() if isinstance(record, Event) else record


class NullSink(EventSink):
    """Swallows everything (the disabled default)."""

    def emit(self, record) -> None:
        pass


#: Default :class:`MemorySink` ring size.  Generous — a typical batch
#: contributes a handful of records, so this covers tens of thousands of
#: batches — but bounded, so a long-lived serving run cannot grow the sink
#: without limit.  Pass ``capacity=None`` for the old unbounded behaviour.
DEFAULT_MEMORY_SINK_CAPACITY = 100_000


class MemorySink(EventSink):
    """Keeps the most recent records in a bounded ring.

    ``events`` filters to typed events; :attr:`dropped` counts records the
    ring evicted (oldest first) once ``capacity`` was exceeded;
    :meth:`drain` hands the buffered records over and empties the ring —
    the primitive worker-telemetry shipping is built on.

    Mutators and :meth:`snapshot` are lock-guarded: the run loop emits
    while a TelemetryServer thread reads the ring for ``/snapshot``.
    """

    def __init__(self, capacity: int | None = DEFAULT_MEMORY_SINK_CAPACITY):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None; got {capacity}")
        self.records: list = []
        self.capacity = capacity
        #: Records evicted from the ring since construction.
        self.dropped = 0
        self._lock = threading.Lock()

    def emit(self, record) -> None:
        with self._lock:
            self.records.append(record)
            if (self.capacity is not None
                    and len(self.records) > self.capacity):
                excess = len(self.records) - self.capacity
                del self.records[:excess]
                self.dropped += excess

    @property
    def events(self) -> list[Event]:
        return [record for record in self.records
                if isinstance(record, Event)]

    def events_of(self, event_type: type[Event]) -> list[Event]:
        return [event for event in self.events
                if isinstance(event, event_type)]

    def drain(self) -> list:
        """Return the buffered records and empty the ring (``dropped``
        keeps counting across drains)."""
        with self._lock:
            records = self.records
            self.records = []
        return records

    def clear(self) -> None:
        with self._lock:
            self.records.clear()

    def snapshot(self) -> tuple[list, int]:
        """A consistent ``(records, dropped)`` pair: the list is a copy
        taken under the lock, so a concurrent emit cannot shift it."""
        with self._lock:
            return list(self.records), self.dropped

    # Sinks ride inside pickled worker checkpoints; locks do not pickle.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class JsonlSink(EventSink):
    """Appends one JSON object per record to a file."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self.written = 0

    def emit(self, record) -> None:
        json.dump(self._as_dict(record), self._handle, default=float)
        self._handle.write("\n")
        self.written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class CompositeSink(EventSink):
    """Fans every record out to several sinks."""

    def __init__(self, *sinks: EventSink):
        self.sinks = list(sinks)

    def emit(self, record) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_records(path: str | Path) -> tuple[list[Event], list[dict]]:
    """Load a JSONL trace: ``(typed events, raw span dicts)``.

    Unknown event types are skipped (forward compatibility), so a newer
    trace still summarizes under an older reader.
    """
    events: list[Event] = []
    spans: list[dict] = []
    with open(Path(path), encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "span":
                spans.append(record)
            elif record.get("kind") == "event":
                event = event_from_dict(record)
                if event is not None:
                    events.append(event)
    return events, spans
