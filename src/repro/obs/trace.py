"""Span-based tracing for the streaming pipeline.

``with tracer.span("learner.predict", batch=3) as span:`` opens a timed
span; spans opened inside it become children, so one processed batch yields
a small tree (predict → shift.assess → infer.cec, …).  Finished root spans
are kept on the tracer (bounded) and, when a sink is attached, forwarded as
``{"kind": "span", ...}`` records so a JSONL trace interleaves spans with
the typed events.

The default is :data:`NULL_TRACER`: ``span()`` hands back one shared no-op
context manager, so an uninstrumented hot path pays a single attribute
check and two trivial method calls per span — no allocation, no clock read.
"""

from __future__ import annotations

import time

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed, attributed, nestable unit of work."""

    __slots__ = ("name", "attributes", "children", "start", "end", "_tracer")

    def __init__(self, name: str, tracer: "Tracer | None" = None,
                 attributes: dict | None = None):
        self.name = name
        self.attributes = attributes or {}
        self.children: list[Span] = []
        self.start: float | None = None
        self.end: float | None = None
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while the span is still open)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attributes) -> "Span":
        """Attach attributes mid-span (e.g. the strategy once selected)."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._pop(self)

    def to_dict(self) -> dict:
        """JSON-ready record (children nested)."""
        return {
            "kind": "span",
            "name": self.name,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def walk(self):
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
                f"{self.attributes!r}, children={len(self.children)})")


class Tracer:
    """Collects span trees; optionally streams finished roots to a sink.

    Parameters
    ----------
    sink:
        Anything with ``emit(record_dict)``; each finished *root* span is
        forwarded as its ``to_dict()``.  Child spans ride inside the root.
    max_spans:
        Finished root spans retained in memory (oldest dropped first).
    """

    enabled = True

    def __init__(self, sink=None, max_spans: int = 10000):
        self.sink = sink
        self.max_spans = max_spans
        self.finished: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attributes) -> Span:
        """A new span context manager; nests under the open span, if any."""
        return Span(name, tracer=self, attributes=attributes or None)

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exotic exits (generator abandonment) by unwinding to it.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if self._stack:
            self._stack[-1].children.append(span)
            return
        self.finished.append(span)
        if len(self.finished) > self.max_spans:
            del self.finished[: len(self.finished) - self.max_spans]
        if self.sink is not None:
            self.sink.emit(span.to_dict())

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        self.finished.clear()
        self._stack.clear()


class _NullSpan:
    """Shared do-nothing span: entering, exiting, and ``set`` are no-ops."""

    __slots__ = ()
    name = "null"
    attributes: dict = {}
    children: list = []
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attributes) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every ``span()`` is the same shared no-op object."""

    enabled = False
    finished: list = []

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    @property
    def current(self) -> None:
        return None

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()
