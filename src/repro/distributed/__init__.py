"""``repro.distributed`` — simulated data-parallel FreewayML.

The paper's conclusion lists distributed scalability as future work; this
package implements the algorithmic layer: batch sharding strategies and a
:class:`DistributedLearner` that runs replica learners with periodic
parameter averaging.  See DESIGN.md ("Paper extensions implemented").
"""

from .backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from .partition import (
    contiguous_partition,
    hash_partition,
    round_robin_partition,
)
from .workers import DistributedLearner, DistributedReport, average_state_dicts

__all__ = [
    "round_robin_partition",
    "contiguous_partition",
    "hash_partition",
    "DistributedLearner",
    "DistributedReport",
    "average_state_dicts",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKENDS",
    "make_backend",
]
