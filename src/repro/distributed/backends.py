"""Pluggable execution backends for :class:`DistributedLearner`.

The distributed runtime separates *what* runs (replica learners over batch
shards, periodic parameter averaging) from *how* it runs.  Three backends
implement the same contract:

``SerialBackend``
    Replicas run one after another in the calling thread — bit-identical
    to the original in-process loop, and the default.

``ThreadBackend``
    One single-thread executor per replica, so shards of a batch run
    concurrently while each replica's own batches stay strictly ordered.
    The :mod:`repro.nn` hot path is numpy dot products, which release the
    GIL, so threads deliver real parallelism on multi-core hosts without
    any serialization cost.

``ProcessBackend``
    A forked worker pool.  Each child owns one replica; shard features and
    labels travel through pre-allocated shared-memory float64/int64 ring
    slots (one per in-flight batch — the slot count bounds in-flight work,
    which is the pool's backpressure), and parameter averaging runs over a
    shared ``(workers + 1, flat)`` float64 block per granularity level, so
    a synchronization round moves no pickled state at all.  Shards that
    outgrow their slot fall back to pipe transport transparently.

All backends speak report *payloads* (``BaseReport.to_dict`` dicts), which
is what lets a forked child ship its shard report across a pipe and the
coordinator consume serial and process results identically.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import pickle
import threading
import time
import traceback
import warnings
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..data.stream import Batch
from ..obs import NULL_OBS, WorkerRestarted, absorb_telemetry, drain_telemetry

__all__ = [
    "WorkerStep",
    "state_spec",
    "flatten_state",
    "unflatten_state",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKENDS",
    "make_backend",
]

#: Methods the coordinator may invoke on a single replica via
#: :meth:`ExecutionBackend.call` (the process backend's RPC whitelist).
_WORKER_METHODS = ("predict", "update", "knowledge_len", "summary")


def _invoke(learner, method: str, args: tuple):
    """Run one whitelisted replica method (shared by all backends)."""
    if method == "predict":
        return learner.predict(*args)
    if method == "update":
        return learner.update(*args)
    if method == "knowledge_len":
        return len(learner.knowledge)
    if method == "summary":
        return learner.summary()
    raise ValueError(f"unknown worker method {method!r}; "
                     f"expected one of {_WORKER_METHODS}")


@dataclass
class WorkerStep:
    """One replica's result for one shard: report payload + wall seconds."""

    report: dict
    seconds: float


class ExecutionBackend(abc.ABC):
    """Contract every execution backend implements.

    Lifecycle: the coordinator constructs the backend, calls :meth:`bind`
    with the replica learners, then drives batches through either
    :meth:`run_shards` (synchronous) or :meth:`submit`/:meth:`drain`
    (pipelined, at most :attr:`capacity` batches in flight), interleaved
    with :meth:`gather_states`/:meth:`load_states` synchronization rounds
    and single-replica :meth:`call` RPCs.  :meth:`close` releases pool
    resources; serial has none.
    """

    name = "abstract"
    #: Max in-flight batches for submit/drain pipelining (backpressure).
    capacity = 1
    #: Whether replicas may safely share the coordinator's Observability
    #: facade (only the serial backend: sinks/registries are not
    #: thread-safe, and forked children cannot share a JSONL fd).  When
    #: False, replicas get private in-memory facades whose telemetry is
    #: shipped back through :meth:`collect_telemetry` at drain/sync
    #: boundaries and on :meth:`close`.
    replicas_share_obs = True

    def __init__(self):
        self.learners = []
        self.obs = NULL_OBS
        self._pending: deque = deque()

    def bind(self, learners, obs=None) -> None:
        """Attach the replica learners (and the coordinator's obs)."""
        self.learners = list(learners)
        self.obs = obs if obs is not None else NULL_OBS

    @property
    def num_workers(self) -> int:
        return len(self.learners)

    @property
    def inflight(self) -> int:
        """Submitted batches not yet drained."""
        return len(self._pending)

    # -- batch execution ------------------------------------------------------

    @abc.abstractmethod
    def run_shards(self, shard_batches: list[Batch]) -> list[WorkerStep]:
        """Run one batch's shards (one per replica) and wait for results."""

    def submit(self, shard_batches: list[Batch]) -> None:
        """Queue one batch's shards; default backends execute eagerly."""
        if self.inflight >= self.capacity:
            raise RuntimeError(
                f"{self.name} backend already has {self.inflight} batches "
                f"in flight (capacity {self.capacity}); drain first"
            )
        self._pending.append(self.run_shards(shard_batches))

    def drain(self) -> list[WorkerStep]:
        """Wait for and return the oldest submitted batch's steps."""
        if not self._pending:
            raise RuntimeError("nothing in flight to drain")
        return self._pending.popleft()

    # -- parameter synchronization -------------------------------------------

    def gather_states(self, level_index: int) -> list[dict]:
        """Every replica's ``state_dict`` for one granularity level."""
        self._require_drained("gather_states")
        return [worker.ensemble.levels[level_index].model.state_dict()
                for worker in self.learners]

    def load_states(self, level_index: int, state: dict) -> None:
        """Load one averaged ``state_dict`` into every replica's level."""
        self._require_drained("load_states")
        for worker in self.learners:
            worker.ensemble.levels[level_index].model.load_state_dict(state)

    # -- single-replica RPC ---------------------------------------------------

    def call(self, worker_index: int, method: str, *args):
        """Invoke one whitelisted method on one replica."""
        self._require_drained("call")
        return _invoke(self.learners[worker_index], method, args)

    # -- telemetry aggregation ------------------------------------------------

    def collect_telemetry(self) -> None:
        """Merge replica-facade telemetry into the coordinator's facade.

        Replicas that run with a private :class:`Observability` (every
        backend where :attr:`replicas_share_obs` is False) accumulate
        metrics and events the coordinator cannot see; this drains each
        replica's pending delta and folds it into the root registry with
        a ``worker`` label.  Must only run at fully-drained boundaries —
        with batches in flight the call silently skips (the process
        backend's reply pipe is strictly FIFO, so a mid-flight telemetry
        round trip would corrupt the shard reply stream).
        """
        if not self.obs.enabled or self._pending:
            return
        for worker_index, learner in enumerate(self.learners):
            replica_obs = getattr(learner, "obs", None)
            if (replica_obs is None or replica_obs is self.obs
                    or not replica_obs.enabled):
                continue
            delta, records = drain_telemetry(replica_obs)
            absorb_telemetry(self.obs, delta, records, worker=worker_index)

    def close(self) -> None:
        """Release pool resources (idempotent); flushes replica telemetry."""
        self.collect_telemetry()

    def _require_drained(self, operation: str) -> None:
        if self._pending:
            raise RuntimeError(
                f"{operation} requires all in-flight batches drained; "
                f"{self.inflight} still pending"
            )


class SerialBackend(ExecutionBackend):
    """Replicas run sequentially in the caller's thread (the default).

    This is, byte for byte, the original ``DistributedLearner`` loop: same
    replica order, same state mutations, same averaging inputs — a run
    under ``SerialBackend`` reproduces the legacy results exactly.
    """

    name = "serial"

    def run_shards(self, shard_batches: list[Batch]) -> list[WorkerStep]:
        steps = []
        for learner, shard in zip(self.learners, shard_batches):
            start = time.perf_counter()
            report = learner.process(shard)
            seconds = time.perf_counter() - start
            steps.append(WorkerStep(report.to_dict(), seconds))
        return steps


class ThreadBackend(ExecutionBackend):
    """One single-thread executor per replica.

    Shards of the same batch run concurrently across replicas; each
    replica's own work stays strictly ordered on its dedicated thread, so
    results are deterministic and identical to the serial backend (replica
    state is fully independent between synchronization rounds).  numpy's
    BLAS-bound kernels release the GIL, so the dot-product-heavy
    :mod:`repro.nn` hot path parallelizes across cores.

    Parameters
    ----------
    max_inflight:
        Batches that may be queued before :meth:`drain` blocks (pipelined
        submission between synchronization barriers).
    """

    name = "thread"
    replicas_share_obs = False

    def __init__(self, max_inflight: int = 2):
        super().__init__()
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1; got {max_inflight}")
        self.capacity = max_inflight
        self._pools: list[ThreadPoolExecutor] = []

    def bind(self, learners, obs=None) -> None:
        super().bind(learners, obs)
        self._pools = [
            ThreadPoolExecutor(max_workers=1,
                               thread_name_prefix=f"freeway-worker-{i}")
            for i in range(len(self.learners))
        ]

    @staticmethod
    def _step(learner, shard: Batch) -> WorkerStep:
        start = time.perf_counter()
        report = learner.process(shard)
        return WorkerStep(report.to_dict(), time.perf_counter() - start)

    def run_shards(self, shard_batches: list[Batch]) -> list[WorkerStep]:
        futures = [
            pool.submit(self._step, learner, shard)
            for pool, learner, shard in zip(self._pools, self.learners,
                                            shard_batches)
        ]
        return [future.result() for future in futures]

    def submit(self, shard_batches: list[Batch]) -> None:
        if self.inflight >= self.capacity:
            raise RuntimeError(
                f"thread backend already has {self.inflight} batches in "
                f"flight (capacity {self.capacity}); drain first"
            )
        self._pending.append([
            pool.submit(self._step, learner, shard)
            for pool, learner, shard in zip(self._pools, self.learners,
                                            shard_batches)
        ])

    def drain(self) -> list[WorkerStep]:
        if not self._pending:
            raise RuntimeError("nothing in flight to drain")
        return [future.result() for future in self._pending.popleft()]

    def _require_drained(self, operation: str) -> None:
        # Per-worker pools are strictly ordered, but state access must not
        # overlap a running shard, so the same barrier applies.
        super()._require_drained(operation)

    def close(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True)
        self._pools = []
        self.collect_telemetry()  # replica threads are quiesced now


# -- process backend ----------------------------------------------------------


def state_spec(state: dict) -> list[tuple]:
    """``(key, shape, dtype)`` per parameter, in canonical key order.

    The spec is what :func:`flatten_state`/:func:`unflatten_state` agree
    on; coordinator and forked workers compute it independently from the
    same architecture and land on the same layout.
    """
    return [
        (key, np.asarray(state[key]).shape, np.asarray(state[key]).dtype.str)
        for key in sorted(state)
    ]


def flatten_state(state: dict, spec: list[tuple]) -> np.ndarray:
    """Concatenate a ``state_dict``'s parameters into one float64 vector."""
    return np.concatenate([
        np.asarray(state[key], dtype=np.float64).ravel()
        for key, _shape, _dtype in spec
    ]) if spec else np.zeros(0)


def unflatten_state(flat: np.ndarray, spec: list[tuple]) -> dict:
    """Rebuild a ``state_dict`` from :func:`flatten_state`'s vector."""
    state = {}
    offset = 0
    for key, shape, dtype in spec:
        size = int(np.prod(shape)) if shape else 1
        value = flat[offset:offset + size].reshape(shape).astype(dtype)
        state[key] = value
        offset += size
    return state


def _worker_main(conn, worker_index: int, learner, slots, sync_blocks,
                 specs, row_width: int, slot_rows: int):
    """Forked child loop: serve coordinator commands until ``close``.

    ``slots`` is this worker's list of ``(x_buffer, y_buffer)`` ring slots,
    ``sync_blocks`` the per-level shared parameter blocks (rows 0..W-1 are
    per-worker states, row W is the averaged broadcast row).
    """
    x_views = [np.frombuffer(x_buf, dtype=np.float64) for x_buf, _ in slots]
    y_views = [np.frombuffer(y_buf, dtype=np.int64) for _, y_buf in slots]
    sync_views = [
        np.frombuffer(block, dtype=np.float64).reshape(rows, flat)
        for block, rows, flat in sync_blocks
    ]
    while True:
        try:
            # An idle worker parks on the command pipe indefinitely by
            # design; liveness is the parent's job (hang timeout + reap in
            # ProcessBackend), and "close"/EOF both end the loop.
            message = conn.recv()  # repro: noqa[REP010]
        except (EOFError, KeyboardInterrupt):
            break
        command = message[0]
        if command == "close":
            break
        if command == "crash":
            # Fault injection: die exactly as a segfaulting/OOM-killed
            # worker would — no cleanup, no reply, pipe left dangling.
            os._exit(1)
        if command == "sleep":
            # Fault injection: stall without replying (a hung worker).
            time.sleep(message[1])
            continue
        try:
            if command == "process":
                _, slot, rows, tail_shape, labeled, index, pattern = message
                x = (x_views[slot][:rows * row_width]
                     .reshape((rows,) + tuple(tail_shape)).copy())
                y = y_views[slot][:rows].copy() if labeled else None
                batch = Batch(x, y, index=index, pattern=pattern)
                start = time.perf_counter()
                report = learner.process(batch)
                conn.send(("ok", report.to_dict(),
                           time.perf_counter() - start))
            elif command == "process_pipe":
                _, batch = message
                start = time.perf_counter()
                report = learner.process(batch)
                conn.send(("ok", report.to_dict(),
                           time.perf_counter() - start))
            elif command == "push_state":
                _, level = message
                state = learner.ensemble.levels[level].model.state_dict()
                sync_views[level][worker_index] = flatten_state(
                    state, specs[level]
                )
                conn.send(("ok", None))
            elif command == "pull_state":
                _, level = message
                broadcast_row = sync_views[level][-1]
                learner.ensemble.levels[level].model.load_state_dict(
                    unflatten_state(broadcast_row, specs[level])
                )
                conn.send(("ok", None))
            elif command == "snapshot":
                # Full replica checkpoint for crash recovery.  Pickle
                # explicitly (not via conn.send of the object) so a
                # non-picklable learner degrades to None instead of
                # corrupting the pipe mid-message.
                try:
                    blob = pickle.dumps(learner)
                except Exception:  # repro: noqa[REP004] — degrades to None
                    blob = None
                conn.send(("ok", blob))
            elif command == "call":
                _, method, args = message
                conn.send(("ok", _invoke(learner, method, args)))
            elif command == "telemetry":
                # Ship the replica facade's pending metric delta and
                # buffered event records back to the coordinator.
                delta, records = drain_telemetry(learner.obs)
                conn.send(("ok", delta, records))
            else:
                conn.send(("error", f"unknown command {command!r}"))
        except Exception:  # repro: noqa[REP004] — shipped to the coordinator
            conn.send(("error", traceback.format_exc()))
    conn.close()


class ProcessBackend(ExecutionBackend):
    """Forked worker pool with shared-memory shard and state transport.

    Children are forked lazily on the first data-bearing operation (so the
    shard geometry is known when the ring buffers are sized); before the
    fork, the coordinator's replica copies are canonical and all
    operations run in-process.  After the fork each child owns the live
    replica — the coordinator's ``workers`` list is a stale snapshot.

    The pool is *supervised*: a worker that dies (or, with
    ``hang_timeout`` set, stops responding) is detected while its reply is
    awaited, terminated if still alive, and restarted with exponential
    backoff up to ``max_restarts`` times per worker.  The replacement is
    re-seeded from the last synchronized state (captured at every
    parameter-averaging round), the dead worker's in-flight shards are
    resubmitted in order, and a :class:`~repro.obs.WorkerRestarted` event
    plus a ``freeway_worker_restarts_total`` counter record the recovery.
    With ``sync_every=1`` recovery is exact — the replacement holds
    precisely the state the dead worker had after its last completed
    batch, so the run's accuracy sequence matches a fault-free run.

    Parameters
    ----------
    max_inflight:
        Ring slots per worker; at most this many batches are in flight
        before :meth:`submit` demands a drain (backpressure bound).
    slot_slack:
        Slot capacity as a multiple of the first batch's largest shard.
        Shards that outgrow their slot fall back to pipe transport.
    max_restarts:
        Supervised restarts allowed per worker before the failure
        propagates to the coordinator.
    restart_backoff:
        Base seconds slept before a restart; doubles per restart of the
        same worker (exponential backoff).
    hang_timeout:
        Seconds a reply may take before the worker is declared hung and
        restarted.  ``None`` (default) disables hang detection — only
        process death is supervised — because a legitimate shard has no
        universal latency bound.
    faults:
        Fault injectors consulted before each shard dispatch (see
        :mod:`repro.resilience.faults`); injectors may also append
        themselves via their ``attach`` methods.

    Requires a platform with the ``fork`` start method (Linux/macOS):
    forking is what lets arbitrary, non-picklable model factories and
    learner state cross into the children.
    """

    name = "process"
    replicas_share_obs = False

    def __init__(self, max_inflight: int = 2, slot_slack: float = 2.0,
                 max_restarts: int = 2, restart_backoff: float = 0.05,
                 hang_timeout: float | None = None, faults=None):
        super().__init__()
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1; got {max_inflight}")
        if slot_slack < 1.0:
            raise ValueError(f"slot_slack must be >= 1.0; got {slot_slack}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0; got {max_restarts}")
        if restart_backoff < 0:
            raise ValueError(
                f"restart_backoff must be >= 0; got {restart_backoff}"
            )
        if hang_timeout is not None and hang_timeout <= 0:
            raise ValueError(
                f"hang_timeout must be positive; got {hang_timeout}"
            )
        self.capacity = max_inflight
        self.slot_slack = slot_slack
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self.hang_timeout = hang_timeout
        self.faults: list = list(faults) if faults is not None else []
        self._started = False
        self._closed = False
        self._context = None
        self._processes: list = []
        self._conns: list = []
        self._x_views: list[list[np.ndarray]] = []
        self._y_views: list[list[np.ndarray]] = []
        self._sync_views: list[np.ndarray] = []
        self._sync_blocks: list[tuple] = []
        self._worker_slots: list[list[tuple]] = []
        self._specs: list[list[tuple]] = []
        self._row_width = 0
        self._slot_rows = 0
        self._sequence = 0
        #: Restarts performed per worker (survives across restarts).
        self.restarts: list[int] = []
        #: Shards awaiting a reply: slot → the submitted shard batches.
        self._inflight_shards: dict[int, list[Batch]] = {}
        #: Flat averaged state per level at the last sync (restart seed).
        self._last_sync_flat: list[np.ndarray] | None = None
        #: Pickled full-replica checkpoints from the last sync boundary;
        #: ``None`` per worker when its learner is not picklable.
        self._worker_blobs: list = []

    # -- pool lifecycle -------------------------------------------------------

    @staticmethod
    def available() -> bool:
        """Whether this platform supports the fork start method."""
        return "fork" in multiprocessing.get_all_start_methods()

    def _ensure_started(self, shard_batches: list[Batch]) -> None:
        if self._started:
            return
        if self._closed:
            raise RuntimeError("process backend already closed")
        if not self.available():
            raise RuntimeError(
                "the process backend requires the 'fork' start method, "
                "which this platform does not provide; use the thread "
                "backend instead"
            )
        self._warn_if_threads_alive()
        context = multiprocessing.get_context("fork")
        first = shard_batches[0].x
        self._row_width = int(np.prod(first.shape[1:]))
        largest = max(len(shard) for shard in shard_batches)
        self._slot_rows = max(int(largest * self.slot_slack), 1)

        reference = self.learners[0].ensemble.levels
        self._specs = [
            state_spec(level.model.state_dict()) for level in reference
        ]
        sync_blocks = []
        for spec in self._specs:
            flat = int(sum(np.prod(shape) if shape else 1
                           for _key, shape, _dtype in spec))
            rows = self.num_workers + 1  # + the averaged broadcast row
            block = context.RawArray("d", rows * flat)
            sync_blocks.append((block, rows, flat))
        self._sync_views = [
            np.frombuffer(block, dtype=np.float64).reshape(rows, flat)
            for block, rows, flat in sync_blocks
        ]

        self._context = context
        self._sync_blocks = sync_blocks
        for worker_index in range(len(self.learners)):
            slots = []
            for _slot in range(self.capacity):
                x_buf = context.RawArray(
                    "d", self._slot_rows * self._row_width
                )
                y_buf = context.RawArray("q", self._slot_rows)
                slots.append((x_buf, y_buf))
            self._worker_slots.append(slots)
            self._x_views.append([
                np.frombuffer(x_buf, dtype=np.float64) for x_buf, _ in slots
            ])
            self._y_views.append([
                np.frombuffer(y_buf, dtype=np.int64) for _, y_buf in slots
            ])
            self._processes.append(None)
            self._conns.append(None)
            self.restarts.append(0)
            self._worker_blobs.append(None)
            self._spawn_worker(worker_index)
        self._started = True

    @staticmethod
    def _warn_if_threads_alive() -> None:
        """Warn when forking would duplicate a threaded parent.

        Forking a multi-threaded process is the classic hazard REP009
        flags: every child inherits a snapshot of the parent's memory in
        which the other threads simply vanish — any lock one of them held
        (logging, telemetry registry, HTTP server internals) stays locked
        forever in the child.  The common way to get here is starting
        ``--serve-telemetry`` (a server thread) before the first batch
        reaches a process backend; start the server after the pool, or
        accept that children must never touch the inherited thread state.
        """
        extra = [thread.name for thread in threading.enumerate()
                 if thread is not threading.current_thread()]
        if extra:
            warnings.warn(
                "forking worker processes while other threads are alive "
                f"({', '.join(sorted(extra))}); locks or buffers those "
                "threads hold are copied into the children mid-state — "
                "start thread-based services (e.g. the telemetry server) "
                "after the process pool, or ensure workers never touch "
                "their state",
                RuntimeWarning,
                stacklevel=3,
            )

    def _spawn_worker(self, worker_index: int) -> None:
        """Fork one child for ``worker_index`` over the existing buffers."""
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, worker_index, self.learners[worker_index],
                  self._worker_slots[worker_index], self._sync_blocks,
                  self._specs, self._row_width, self._slot_rows),
            daemon=True,
            name=f"freeway-worker-{worker_index}",
        )
        process.start()
        child_conn.close()
        self._processes[worker_index] = process
        self._conns[worker_index] = parent_conn

    # -- supervision ----------------------------------------------------------

    def _reap(self, worker_index: int) -> None:
        """Terminate and discard a dead/hung worker's process + pipe."""
        process = self._processes[worker_index]
        if process is not None:
            if process.is_alive():
                process.terminate()
            process.join(timeout=1.0)
        conn = self._conns[worker_index]
        if conn is not None:
            conn.close()

    def _restart_worker(self, worker_index: int, reason: str) -> None:
        """Replace a dead/hung worker: backoff, respawn, re-seed, resubmit.

        The replacement forks from the coordinator (whose replica copies
        are the pre-fork snapshot), is re-seeded with the last
        synchronized state when one exists, and receives every in-flight
        shard this worker still owes a reply for — in submission order,
        so the reply stream the drain loop expects is preserved.
        """
        self.restarts[worker_index] += 1
        restarts = self.restarts[worker_index]
        if restarts > self.max_restarts:
            raise RuntimeError(
                f"worker {worker_index} failed ({reason}) and exceeded "
                f"max_restarts={self.max_restarts}"
            )
        self._reap(worker_index)
        if self.restart_backoff:
            time.sleep(self.restart_backoff * (2 ** (restarts - 1)))
        reseeded = False
        if self._worker_blobs[worker_index] is not None:
            # Full-replica checkpoint from the last sync boundary: the
            # replacement holds exactly the dead worker's state then —
            # windows, experience, detector statistics, everything — so
            # with sync_every=1 recovery is bit-exact.
            self.learners[worker_index] = pickle.loads(
                self._worker_blobs[worker_index]
            )
            reseeded = True
        self._spawn_worker(worker_index)
        conn = self._conns[worker_index]
        if not reseeded and self._last_sync_flat is not None:
            for level_index, flat in enumerate(self._last_sync_flat):
                if flat is None:  # this level never synchronized
                    continue
                self._sync_views[level_index][-1] = flat
                conn.send(("pull_state", level_index))
                reply = conn.recv()
                if reply[0] == "error":
                    raise RuntimeError(
                        f"worker {worker_index} failed while re-seeding "
                        f"after restart:\n{reply[1]}"
                    )
            reseeded = True
        resubmitted = 0
        for slot in self._pending:
            self._send_shard(worker_index, slot,
                             self._inflight_shards[slot][worker_index])
            resubmitted += 1
        if self.obs.enabled:
            self.obs.emit(WorkerRestarted(
                worker=worker_index, restarts=restarts, reason=reason,
                resubmitted=resubmitted, reseeded=reseeded,
            ))
            self.obs.registry.counter(
                "freeway_worker_restarts_total",
                "supervised worker restarts, by failure reason",
            ).labels(reason=reason).inc()

    def _receive(self, worker_index: int, resend=None):
        """One supervised reply: restarts the worker on death or hang.

        ``resend`` is the command to replay after a restart for
        request/reply operations (state sync, RPC); shard replies need no
        replay because :meth:`_restart_worker` resubmits every pending
        shard already.
        """
        while True:
            conn = self._conns[worker_index]
            reason = None
            try:
                if self.hang_timeout is not None:
                    if not conn.poll(self.hang_timeout):
                        reason = ("hung"
                                  if self._processes[worker_index].is_alive()
                                  else "crashed")
                if reason is None:
                    reply = conn.recv()
            except (EOFError, ConnectionResetError, BrokenPipeError):
                reason = "crashed"
            if reason is None:
                if reply[0] == "error":
                    raise RuntimeError(
                        f"worker {worker_index} failed:\n{reply[1]}"
                    )
                return reply[1:]
            self._restart_worker(worker_index, reason)
            if resend is not None:
                self._conns[worker_index].send(resend)

    # -- batch execution ------------------------------------------------------

    def _send_shard(self, worker_index: int, slot: int, shard: Batch) -> None:
        conn = self._conns[worker_index]
        rows = len(shard)
        width = int(np.prod(shard.x.shape[1:]))
        if rows > self._slot_rows or width != self._row_width:
            # Oversized or reshaped shard: pipe transport (correct, slower).
            conn.send(("process_pipe", shard))
            return
        flat = np.ascontiguousarray(shard.x, dtype=np.float64).ravel()
        self._x_views[worker_index][slot][:rows * width] = flat
        labeled = shard.labeled
        if labeled:
            self._y_views[worker_index][slot][:rows] = shard.y
        conn.send(("process", slot, rows, tuple(shard.x.shape[1:]),
                   labeled, shard.index, shard.pattern))

    def run_shards(self, shard_batches: list[Batch]) -> list[WorkerStep]:
        self.submit(shard_batches)
        return self.drain()

    def submit(self, shard_batches: list[Batch]) -> None:
        self._ensure_started(shard_batches)
        if self.inflight >= self.capacity:
            raise RuntimeError(
                f"process backend already has {self.inflight} batches in "
                f"flight (capacity {self.capacity}); drain first"
            )
        slot = self._sequence % self.capacity
        sequence = self._sequence
        self._sequence += 1
        # Record the shards *before* dispatching: if a send hits a dead
        # pipe the restart path replays them from this record.
        self._inflight_shards[slot] = list(shard_batches)
        self._pending.append(slot)
        for worker_index, shard in enumerate(shard_batches):
            self._dispatch(worker_index, slot, shard, sequence)

    def _dispatch(self, worker_index: int, slot: int, shard: Batch,
                  sequence: int) -> None:
        """Send one shard, consulting fault injectors first."""
        conn = self._conns[worker_index]
        crash = any(fault.crash_before(worker_index, sequence)
                    for fault in self.faults
                    if hasattr(fault, "crash_before"))
        if crash:
            try:
                conn.send(("crash",))
            except (BrokenPipeError, OSError):
                pass  # already dead: same outcome
            # The shard is deliberately NOT sent: it is lost in flight,
            # and supervision must recover it during drain.
            return
        delay = sum(fault.delay_before(worker_index, sequence)
                    for fault in self.faults
                    if hasattr(fault, "delay_before"))
        try:
            if delay > 0:
                conn.send(("sleep", delay))
            self._send_shard(worker_index, slot, shard)
        except (BrokenPipeError, OSError):
            # Writing to a dead worker: restart now; the restart replays
            # every pending shard (including this one) from the record.
            self._restart_worker(worker_index, "crashed")

    def drain(self) -> list[WorkerStep]:
        if not self._pending:
            raise RuntimeError("nothing in flight to drain")
        steps = []
        for worker_index in range(self.num_workers):
            payload, seconds = self._receive(worker_index)
            steps.append(WorkerStep(payload, seconds))
        slot = self._pending.popleft()
        self._inflight_shards.pop(slot, None)
        return steps

    # -- parameter synchronization -------------------------------------------

    def _broadcast(self, message: tuple) -> None:
        """Send one command to every worker, restarting dead ones."""
        for worker_index in range(self.num_workers):
            try:
                self._conns[worker_index].send(message)
            except (BrokenPipeError, OSError):
                self._restart_worker(worker_index, "crashed")
                self._conns[worker_index].send(message)

    def gather_states(self, level_index: int) -> list[dict]:
        if not self._started:
            return super().gather_states(level_index)
        self._require_drained("gather_states")
        message = ("push_state", level_index)
        self._broadcast(message)
        for worker_index in range(self.num_workers):
            self._receive(worker_index, resend=message)
        spec = self._specs[level_index]
        block = self._sync_views[level_index]
        return [unflatten_state(block[worker_index], spec)
                for worker_index in range(self.num_workers)]

    def load_states(self, level_index: int, state: dict) -> None:
        if not self._started:
            super().load_states(level_index, state)
            return
        self._require_drained("load_states")
        spec = self._specs[level_index]
        flat = flatten_state(state, spec)
        self._sync_views[level_index][-1] = flat
        # Remember the broadcast state: it is the restart seed that makes
        # a replacement worker pick up exactly where the pool last agreed.
        if self._last_sync_flat is None:
            self._last_sync_flat = [None] * len(self._specs)
        self._last_sync_flat[level_index] = flat.copy()
        message = ("pull_state", level_index)
        self._broadcast(message)
        for worker_index in range(self.num_workers):
            self._receive(worker_index, resend=message)
        if level_index == len(self._specs) - 1 and self.max_restarts > 0:
            # The sync round just completed (levels are loaded in order):
            # checkpoint every replica so a restart can resume from
            # exactly this boundary.
            self._snapshot_workers()

    def _snapshot_workers(self) -> None:
        """Collect a pickled full-replica checkpoint from every worker."""
        message = ("snapshot",)
        self._broadcast(message)
        for worker_index in range(self.num_workers):
            (blob,) = self._receive(worker_index, resend=message)
            if blob is not None:
                self._worker_blobs[worker_index] = blob

    # -- telemetry aggregation ------------------------------------------------

    def collect_telemetry(self) -> None:
        """Drain every forked worker's telemetry over the reply pipe.

        Skips silently while shards are in flight (the pipe is FIFO; a
        telemetry reply would interleave with pending shard replies) and
        after close.  A worker that died is restarted by the usual
        supervision path and the request replayed, so a crash between
        boundaries cannot wedge collection.
        """
        if not self._started:
            super().collect_telemetry()
            return
        if not self.obs.enabled or self._pending or self._closed:
            return
        message = ("telemetry",)
        self._broadcast(message)
        for worker_index in range(self.num_workers):
            delta, records = self._receive(worker_index, resend=message)
            absorb_telemetry(self.obs, delta, records, worker=worker_index)

    # -- single-replica RPC ---------------------------------------------------

    def call(self, worker_index: int, method: str, *args):
        if not self._started:
            return super().call(worker_index, method, *args)
        self._require_drained("call")
        message = ("call", method, args)
        try:
            self._conns[worker_index].send(message)
        except (BrokenPipeError, OSError):
            self._restart_worker(worker_index, "crashed")
            self._conns[worker_index].send(message)
        (result,) = self._receive(worker_index, resend=message)
        return result

    def close(self) -> None:
        if self._closed:
            return
        if self._started and not self._pending:
            # Final telemetry flush: whatever the workers accumulated
            # since the last boundary must not die with them.
            try:
                self.collect_telemetry()
            except Exception:  # repro: noqa[REP004] — a worker beyond
                pass  # max_restarts must not block shutdown
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                continue
        deadline = time.monotonic() + 5.0
        for process in self._processes:
            process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for conn in self._conns:
            conn.close()
        self._processes = []
        self._conns = []
        self._started = False

    def __del__(self):  # best-effort cleanup; daemons die with the parent
        try:
            self.close()
        except Exception:  # repro: noqa[REP004] — interpreter teardown
            pass


BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def make_backend(backend, **options) -> ExecutionBackend:
    """Resolve a backend name (or pass through an instance)."""
    if isinstance(backend, ExecutionBackend):
        if options:
            raise ValueError(
                "backend options only apply when the backend is named; "
                "configure the instance directly"
            )
        return backend
    try:
        backend_cls = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of "
            f"{sorted(BACKENDS)} or an ExecutionBackend instance"
        ) from None
    return backend_cls(**options)
