"""Stream partitioning for the simulated distributed runtime.

The paper's conclusion lists distributed execution as future work.  Our
simulation shards each mini-batch across workers; these are the standard
partitioning strategies a stream processor would offer.
"""

from __future__ import annotations

import numpy as np

__all__ = ["round_robin_partition", "hash_partition", "contiguous_partition"]


def _validate(num_rows: int, num_workers: int) -> None:
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1; got {num_workers}")
    if num_rows < num_workers:
        raise ValueError(
            f"cannot shard {num_rows} rows across {num_workers} workers"
        )


def round_robin_partition(num_rows: int, num_workers: int) -> list[np.ndarray]:
    """Row ``i`` goes to worker ``i % W`` — balanced, order-interleaved."""
    _validate(num_rows, num_workers)
    indices = np.arange(num_rows)
    return [indices[worker::num_workers] for worker in range(num_workers)]


def contiguous_partition(num_rows: int, num_workers: int) -> list[np.ndarray]:
    """Contiguous slabs — preserves within-shard ordering (range split)."""
    _validate(num_rows, num_workers)
    return list(np.array_split(np.arange(num_rows), num_workers))


def hash_partition(x: np.ndarray, num_workers: int,
                   seed: int = 0) -> list[np.ndarray]:
    """Content-keyed sharding: rows with equal features co-locate.

    A seeded random projection is bucketed, so the assignment is stable
    across batches (the property key-based partitioning provides).
    """
    x = np.asarray(x, dtype=float).reshape(len(x), -1)
    _validate(len(x), num_workers)
    rng = np.random.default_rng(seed)
    projection = rng.normal(size=x.shape[1])
    keys = np.floor(np.abs(x @ projection) * 1000.0).astype(np.int64)
    assignment = keys % num_workers
    shards = [np.flatnonzero(assignment == worker)
              for worker in range(num_workers)]
    # Guarantee no empty shard (fall back to stealing from the largest).
    for worker, shard in enumerate(shards):
        if len(shard) == 0:
            donor = max(range(num_workers), key=lambda w: len(shards[w]))
            shards[worker] = shards[donor][-1:]
            shards[donor] = shards[donor][:-1]
    return shards
