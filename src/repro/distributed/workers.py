"""Simulated distributed FreewayML (the paper's Section VII future work).

``DistributedLearner`` shards every mini-batch across ``num_workers``
replica learners, lets each replica run the full FreewayML pipeline on its
shard, and periodically synchronizes the replicas by averaging their
granularity-model parameters (synchronous data-parallel training, the
standard scheme for distributed SGD).

Everything executes in one process — the simulation's purpose is to answer
the *algorithmic* scalability questions (how much accuracy does sharding +
periodic averaging cost? how does the knowledge store behave per replica?),
not to measure wall-clock speedup.  ``ideal_speedup`` reports the
compute-parallelism upper bound implied by the shard sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.learner import Learner
from ..data.stream import Batch
from ..obs import NULL_OBS
from .partition import (
    contiguous_partition,
    hash_partition,
    round_robin_partition,
)

__all__ = ["DistributedLearner", "DistributedReport", "average_state_dicts"]

_PARTITIONERS = ("round-robin", "contiguous", "hash")


def average_state_dicts(states: list[dict]) -> dict:
    """Elementwise mean of parameter dictionaries with identical keys."""
    if not states:
        raise ValueError("nothing to average")
    keys = set(states[0])
    for state in states[1:]:
        if set(state) != keys:
            raise ValueError("state_dicts have mismatched keys")
    return {
        key: np.mean([np.asarray(state[key]) for state in states], axis=0)
        for key in sorted(keys)
    }


@dataclass
class DistributedReport:
    """Per-batch record of a distributed step."""

    index: int
    accuracy: float | None
    synced: bool
    worker_items: list[int]
    worker_seconds: list[float]

    @property
    def ideal_speedup(self) -> float:
        """Serial time / critical path — the parallelism upper bound."""
        slowest = max(self.worker_seconds)
        return sum(self.worker_seconds) / max(slowest, 1e-12)


class DistributedLearner:
    """Data-parallel FreewayML over simulated workers.

    Parameters
    ----------
    model_factory:
        Forwarded to every replica :class:`Learner`.
    num_workers:
        Replica count.
    sync_every:
        Batches between parameter-averaging rounds (1 = synchronous SGD;
        larger values trade consistency for less communication).
    partitioner:
        ``"round-robin"`` (default), ``"contiguous"``, or ``"hash"``.
    obs:
        Optional :class:`~repro.obs.Observability` shared by every replica
        (their events interleave in one stream; counters aggregate across
        replicas).  Sharding and synchronization run inside
        ``distributed.process`` / ``distributed.sync`` spans.
    learner_kwargs:
        Extra keyword arguments for each replica's :class:`Learner`.
    """

    def __init__(self, model_factory, num_workers: int = 4,
                 sync_every: int = 1, partitioner: str = "round-robin",
                 seed: int = 0, obs=None, **learner_kwargs):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1; got {num_workers}")
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1; got {sync_every}")
        if partitioner not in _PARTITIONERS:
            raise ValueError(
                f"partitioner must be one of {_PARTITIONERS}; "
                f"got {partitioner!r}"
            )
        self.num_workers = num_workers
        self.sync_every = sync_every
        self.partitioner = partitioner
        self.seed = seed
        self.obs = obs if obs is not None else NULL_OBS
        self.workers = [
            Learner(model_factory, seed=seed + worker, obs=self.obs,
                    **learner_kwargs)
            for worker in range(num_workers)
        ]
        self.syncs = 0
        self._batches_seen = 0

    def _shards(self, batch: Batch) -> list[np.ndarray]:
        if self.partitioner == "round-robin":
            return round_robin_partition(len(batch), self.num_workers)
        if self.partitioner == "contiguous":
            return contiguous_partition(len(batch), self.num_workers)
        return hash_partition(batch.x, self.num_workers, seed=self.seed)

    def process(self, batch: Batch) -> DistributedReport:
        """Shard the batch, run each replica, and maybe synchronize."""
        with self.obs.tracer.span("distributed.process", batch=batch.index):
            shards = self._shards(batch)
            correct = 0
            total = 0
            worker_items: list[int] = []
            worker_seconds: list[float] = []
            for learner, shard in zip(self.workers, shards):
                shard_batch = batch.subset(shard)
                start = time.perf_counter()
                report = learner.process(shard_batch)
                worker_seconds.append(time.perf_counter() - start)
                worker_items.append(len(shard_batch))
                if report.accuracy is not None:
                    correct += report.accuracy * len(shard_batch)
                    total += len(shard_batch)
            self._batches_seen += 1
            synced = False
            if self._batches_seen % self.sync_every == 0:
                self.synchronize()
                synced = True
        return DistributedReport(
            index=batch.index,
            accuracy=(correct / total) if total else None,
            synced=synced,
            worker_items=worker_items,
            worker_seconds=worker_seconds,
        )

    def synchronize(self) -> None:
        """Average each granularity level's parameters across replicas."""
        with self.obs.tracer.span("distributed.sync"):
            for level_index in range(len(self.workers[0].ensemble.levels)):
                states = [
                    worker.ensemble.levels[level_index].model.state_dict()
                    for worker in self.workers
                ]
                averaged = average_state_dicts(states)
                for worker in self.workers:
                    worker.ensemble.levels[level_index].model.load_state_dict(
                        averaged
                    )
        self.syncs += 1
        if self.obs.enabled:
            self.obs.registry.counter(
                "freeway_distributed_syncs_total",
                "parameter-averaging rounds",
            ).inc()

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Serve a prediction from worker 0 (replicas agree after a sync)."""
        return self.workers[0].predict(np.asarray(x)).labels

    def knowledge_entries(self) -> int:
        """Total knowledge entries across replicas."""
        return sum(len(worker.knowledge) for worker in self.workers)
