"""Data-parallel FreewayML over pluggable execution backends.

``DistributedLearner`` shards every mini-batch across ``num_workers``
replica learners, lets each replica run the full FreewayML pipeline on its
shard, and periodically synchronizes the replicas by averaging their
granularity-model parameters (synchronous data-parallel training, the
standard scheme for distributed SGD).

*How* the replicas execute is delegated to an
:class:`~repro.distributed.backends.ExecutionBackend`: the default
``"serial"`` backend reproduces the original in-process loop bit for bit,
``"thread"`` runs shards concurrently on per-replica threads (numpy's
dot-product kernels release the GIL), and ``"process"`` forks a worker
pool with shared-memory shard and parameter transport.  ``run`` pipelines
batches up to the backend's in-flight capacity between synchronization
barriers.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

from ..api import BaseReport
from ..core.learner import Learner
from ..data.stream import Batch
from ..obs import NULL_OBS, Observability
from .backends import (
    ExecutionBackend,
    flatten_state,
    make_backend,
    state_spec,
    unflatten_state,
)
from .partition import (
    contiguous_partition,
    hash_partition,
    round_robin_partition,
)

__all__ = ["DistributedLearner", "DistributedReport", "average_state_dicts"]

_PARTITIONERS = ("round-robin", "contiguous", "hash")


def average_state_dicts(states: list[dict]) -> dict:
    """Elementwise mean of parameter dictionaries with identical keys.

    Vectorized: every state is flattened to one vector, the vectors are
    stacked, and a single ``mean(axis=0)`` reduces them — one BLAS-friendly
    pass instead of a Python loop of per-key reductions.
    """
    if not states:
        raise ValueError("nothing to average")
    keys = set(states[0])
    for state in states[1:]:
        if set(state) != keys:
            raise ValueError("state_dicts have mismatched keys")
    spec = state_spec(states[0])
    stacked = np.stack([flatten_state(state, spec) for state in states])
    return unflatten_state(stacked.mean(axis=0), spec)


@dataclass(kw_only=True)
class DistributedReport(BaseReport):
    """Per-batch record of a distributed step.

    Extends :class:`~repro.api.BaseReport` with the shard-level view:
    which backend ran the step, whether a parameter-averaging round
    followed it, and each replica's item count / compute seconds.
    """

    kind = "distributed"

    backend: str = "serial"
    synced: bool = False
    worker_items: list = field(default_factory=list)
    worker_seconds: list = field(default_factory=list)
    predict_seconds: float = 0.0
    update_seconds: float = 0.0

    def __post_init__(self):
        self.worker_items = [int(v) for v in self.worker_items]
        self.worker_seconds = [float(v) for v in self.worker_seconds]

    @property
    def ideal_speedup(self) -> float:
        """Serial time / critical path — the parallelism upper bound."""
        slowest = max(self.worker_seconds)
        return sum(self.worker_seconds) / max(slowest, 1e-12)


class DistributedLearner:
    """Data-parallel FreewayML over an execution backend.

    Parameters
    ----------
    model_factory:
        Forwarded to every replica :class:`Learner`.
    num_workers:
        Replica count.
    sync_every:
        Batches between parameter-averaging rounds (1 = synchronous SGD;
        larger values trade consistency for less communication).
    partitioner:
        ``"round-robin"`` (default), ``"contiguous"``, or ``"hash"``.
    backend:
        ``"serial"`` (default, bit-identical to the legacy loop),
        ``"thread"``, ``"process"``, or a pre-configured
        :class:`~repro.distributed.backends.ExecutionBackend` instance.
    obs:
        Optional :class:`~repro.obs.Observability` for coordinator-level
        spans and backend metrics.  Replicas share it directly only
        under the serial backend (sinks are not thread-safe and forked
        children cannot share a JSONL stream); under the thread and
        process backends each replica gets a private in-memory facade
        whose metric deltas and buffered events are shipped back and
        merged into this facade — stamped with a ``worker`` label — at
        every drain/sync boundary and on :meth:`close` (see
        :mod:`repro.obs.live`).
    learner_kwargs:
        Extra keyword arguments for each replica's :class:`Learner`.
    """

    def __init__(self, model_factory, *, num_workers: int = 4,
                 sync_every: int = 1, partitioner: str = "round-robin",
                 backend: str | ExecutionBackend = "serial",
                 seed: int = 0, obs=None, **learner_kwargs):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1; got {num_workers}")
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1; got {sync_every}")
        if partitioner not in _PARTITIONERS:
            raise ValueError(
                f"partitioner must be one of {_PARTITIONERS}; "
                f"got {partitioner!r}"
            )
        self.num_workers = num_workers
        self.sync_every = sync_every
        self.partitioner = partitioner
        self.seed = seed
        self.obs = obs if obs is not None else NULL_OBS
        self.backend = make_backend(backend)
        if self.backend.replicas_share_obs:
            replica_obs = [self.obs] * num_workers
        elif self.obs.enabled:
            # Private facade per replica: safe under threads, travels
            # into forked children, and is drained back into self.obs at
            # sync boundaries by backend.collect_telemetry().
            replica_obs = [Observability.in_memory()
                           for _ in range(num_workers)]
        else:
            replica_obs = [NULL_OBS] * num_workers
        self.workers = [
            Learner(model_factory, seed=seed + worker, obs=replica_obs[worker],
                    **learner_kwargs)
            for worker in range(num_workers)
        ]
        self.backend.bind(self.workers, obs=self.obs)
        self.syncs = 0
        self._batches_seen = 0
        self._strategy_counts: Counter = Counter()

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (idempotent; serial is a no-op)."""
        self.backend.close()

    def __enter__(self) -> "DistributedLearner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- sharding -------------------------------------------------------------

    def _shards(self, batch: Batch) -> list[np.ndarray]:
        if self.partitioner == "round-robin":
            return round_robin_partition(len(batch), self.num_workers)
        if self.partitioner == "contiguous":
            return contiguous_partition(len(batch), self.num_workers)
        return hash_partition(batch.x, self.num_workers, seed=self.seed)

    def _shard_batches(self, batch: Batch) -> list[Batch]:
        return [batch.subset(shard) for shard in self._shards(batch)]

    # -- the distributed step -------------------------------------------------

    def process(self, batch: Batch) -> DistributedReport:
        """Shard the batch, run each replica, and maybe synchronize."""
        with self.obs.tracer.span("distributed.process", batch=batch.index,
                                  backend=self.backend.name):
            start = time.perf_counter()
            steps = self.backend.run_shards(self._shard_batches(batch))
            self._batches_seen += 1
            synced = False
            if self._batches_seen % self.sync_every == 0:
                self.synchronize()
                synced = True
            report = self._make_report(
                batch, steps, synced=synced,
                latency_s=time.perf_counter() - start,
            )
        self._record_step(report, steps)
        return report

    def _make_report(self, batch: Batch, steps, *, synced: bool,
                     latency_s: float) -> DistributedReport:
        correct = 0.0
        total = 0
        worker_items: list[int] = []
        worker_seconds: list[float] = []
        predict_seconds = 0.0
        update_seconds = 0.0
        strategies: Counter = Counter()
        for step in steps:
            payload = step.report
            items = int(payload["num_items"])
            worker_items.append(items)
            worker_seconds.append(step.seconds)
            predict_seconds += float(payload.get("predict_seconds", 0.0))
            update_seconds += float(payload.get("update_seconds", 0.0))
            strategies[payload.get("strategy", "unknown")] += 1
            if payload.get("accuracy") is not None:
                correct += payload["accuracy"] * items
                total += items
        strategy = strategies.most_common(1)[0][0] if strategies else "unknown"
        self._strategy_counts.update(strategies)
        return DistributedReport(
            batch_index=batch.index,
            num_items=len(batch),
            strategy=strategy,
            accuracy=(correct / total) if total else None,
            latency_s=latency_s,
            backend=self.backend.name,
            synced=synced,
            worker_items=worker_items,
            worker_seconds=worker_seconds,
            predict_seconds=predict_seconds,
            update_seconds=update_seconds,
        )

    def _record_step(self, report: DistributedReport, steps) -> None:
        if not self.obs.enabled:
            return
        # Pull replica-side telemetry up to the coordinator.  No-op for
        # shared facades (serial) and silently skipped while the backend
        # still has batches in flight (pipelined run()).
        self.backend.collect_telemetry()
        self.obs.registry.counter(
            "freeway_backend_batches_total",
            "batches executed, by backend",
        ).labels(backend=self.backend.name).inc()
        stage_hist = self.obs.registry.histogram(
            "freeway_worker_stage_seconds",
            "per-worker stage latency, by backend",
        )
        for worker_index, step in enumerate(steps):
            labels = {"backend": self.backend.name,
                      "worker": str(worker_index)}
            stage_hist.labels(stage="shard", **labels).observe(step.seconds)
            for stage in ("predict_seconds", "update_seconds"):
                value = step.report.get(stage)
                if value:
                    stage_hist.labels(
                        stage=stage.removesuffix("_seconds"), **labels
                    ).observe(float(value))

    # -- pipelined streaming --------------------------------------------------

    def run(self, stream, max_batches: int | None = None
            ) -> list[DistributedReport]:
        """Process a batch iterable, keeping the backend's pipeline full.

        Between synchronization barriers up to ``backend.capacity`` batches
        are in flight at once (the backend's backpressure bound); a
        parameter-averaging round drains everything first, because
        averaging must not overlap replica training.
        """
        reports: list[DistributedReport] = []
        queued: deque = deque()  # (batch, wall-clock submit time)
        for count, batch in enumerate(stream):
            if max_batches is not None and count >= max_batches:
                break
            if self.backend.inflight >= self.backend.capacity:
                self._drain_one(queued, reports, synced=False)
            submitted = time.perf_counter()
            self.backend.submit(self._shard_batches(batch))
            queued.append((batch, submitted))
            self._batches_seen += 1
            if self._batches_seen % self.sync_every == 0:
                while len(queued) > 1:
                    self._drain_one(queued, reports, synced=False)
                self._drain_one(queued, reports, synced=True)
                self.synchronize()
        while queued:
            self._drain_one(queued, reports, synced=False)
        return reports

    def _drain_one(self, queued: deque, reports: list, *,
                   synced: bool) -> None:
        batch, submitted = queued.popleft()
        steps = self.backend.drain()
        report = self._make_report(
            batch, steps, synced=synced,
            latency_s=time.perf_counter() - submitted,
        )
        self._record_step(report, steps)
        reports.append(report)

    # -- parameter synchronization --------------------------------------------

    def synchronize(self) -> None:
        """Average each granularity level's parameters across replicas."""
        # Collect telemetry BEFORE the sync round: the process backend
        # checkpoints replicas (pickled blobs) at the end of the round,
        # so baselines advanced here are inside the checkpoint and a
        # restarted worker neither re-ships nor loses telemetry.
        self.backend.collect_telemetry()
        with self.obs.tracer.span("distributed.sync",
                                  backend=self.backend.name):
            for level_index in range(len(self.workers[0].ensemble.levels)):
                states = self.backend.gather_states(level_index)
                self.backend.load_states(
                    level_index, average_state_dicts(states)
                )
        self.syncs += 1
        if self.obs.enabled:
            self.obs.registry.counter(
                "freeway_distributed_syncs_total",
                "parameter-averaging rounds",
            ).inc()

    # -- StreamingEstimator surface -------------------------------------------

    def predict(self, x: np.ndarray):
        """Serve from replica 0 (replicas agree after a sync round).

        Returns the replica's full
        :class:`~repro.core.learner.PredictionResult`; take ``.labels``
        for the bare class array.
        """
        return self.backend.call(0, "predict", np.asarray(x))

    def update(self, x: np.ndarray, y: np.ndarray) -> float | None:
        """Shard a labeled batch and train every replica on its shard.

        Returns the item-weighted mean of the replicas' training losses
        (``None`` if no replica reported one).
        """
        shard_batches = self._shard_batches(
            Batch(np.asarray(x), np.asarray(y), index=self._batches_seen)
        )
        weighted = 0.0
        items = 0
        for worker_index, shard in enumerate(shard_batches):
            loss = self.backend.call(worker_index, "update", shard.x, shard.y)
            if loss is not None:
                weighted += loss * len(shard)
                items += len(shard)
        return (weighted / items) if items else None

    def summary(self) -> dict:
        """Coordinator state as a plain dict (StreamingEstimator protocol).

        Safe to call from another thread while the run loop owns the
        backend (a ``TelemetryServer`` health scrape does exactly that):
        when replicas run their own telemetry facades the knowledge
        count is read from the aggregated ``freeway_knowledge_entries``
        gauge instead of a worker RPC, so no pipe traffic races the
        coordinator.  The gauge lags live state by at most one
        collection boundary (``sync_every`` batches).
        """
        if self.obs.enabled and not self.backend.replicas_share_obs:
            family = self.obs.registry.snapshot().get(
                "freeway_knowledge_entries")
            entries = int(sum(series["value"]
                              for series in family["series"])
                          ) if family else 0
        else:
            # Shared facade (serial) or no telemetry plane: the backend
            # runs inline on this thread, so the exact RPC is safe.
            entries = self.knowledge_entries()
        return {
            "estimator": "distributed",
            "backend": self.backend.name,
            "num_workers": self.num_workers,
            "sync_every": self.sync_every,
            "partitioner": self.partitioner,
            "batches_processed": self._batches_seen,
            "syncs": self.syncs,
            "strategies": dict(self._strategy_counts),
            "knowledge_entries": entries,
        }

    def knowledge_entries(self) -> int:
        """Total knowledge entries across replicas (worker RPC).

        Coordinator-thread only: the process backend's reply pipes are
        FIFO, so calling this concurrently with a running stream would
        interleave replies.  Thread-safe state belongs in
        :meth:`summary`.
        """
        return sum(
            self.backend.call(worker_index, "knowledge_len")
            for worker_index in range(self.num_workers)
        )
