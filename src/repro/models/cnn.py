"""Streaming CNNs — the paper's appendix models.

Two architectures, both from the appendix:

- **Tabular CNN** (the "three layer CNN" used on the six benchmark
  datasets): one convolution with 32 kernels of size 3 over the feature
  vector treated as a 1-D signal, a max-pooling layer with window 2, and a
  fully connected classifier.
- **Image CNN** (the "five-layer CNN" used on the Animals/Flowers streams):
  two 3×3 convolutions with 64 kernels, two 2×2 max-pooling layers, and a
  fully connected classifier.

:class:`StreamingCNN` selects the architecture from its ``input_shape``:
a 1-tuple ``(d,)`` builds the tabular network, a 3-tuple ``(c, h, w)`` the
image network.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .base import NeuralStreamingModel

__all__ = ["StreamingCNN"]


class StreamingCNN(NeuralStreamingModel):
    """Convolutional streaming learner for tabular signals or images."""

    name = "streaming-cnn"

    def __init__(self, input_shape: tuple[int, ...], num_classes: int,
                 lr: float = 0.05, sgd_steps: int = 1, momentum: float = 0.0,
                 weight_decay: float = 0.0, seed: int = 0,
                 conv_channels: int = 32, image_channels: int = 64):
        input_shape = tuple(int(dim) for dim in input_shape)
        if len(input_shape) not in (1, 3):
            raise ValueError(
                f"input_shape must be (d,) or (c, h, w); got {input_shape}"
            )
        self.input_shape = input_shape
        self.conv_channels = conv_channels
        self.image_channels = image_channels
        num_features = int(np.prod(input_shape))
        super().__init__(num_features, num_classes, lr=lr, sgd_steps=sgd_steps,
                         momentum=momentum, weight_decay=weight_decay, seed=seed)

    @property
    def is_image_model(self) -> bool:
        return len(self.input_shape) == 3

    def _build(self, rng: np.random.Generator) -> nn.Module:
        if self.is_image_model:
            return self._build_image(rng)
        return self._build_tabular(rng)

    def _build_tabular(self, rng: np.random.Generator) -> nn.Module:
        (width,) = self.input_shape
        if width < 3:
            raise ValueError(f"tabular CNN needs >= 3 features; got {width}")
        pooled = width // 2  # conv keeps width (pad 1), pool halves it
        return nn.Sequential(
            nn.Conv2d(1, self.conv_channels, kernel_size=(1, 3),
                      padding=(0, 1), rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(kernel_size=(1, 2)),
            nn.Flatten(),
            nn.Linear(self.conv_channels * pooled, self.num_classes, rng=rng),
        )

    def _build_image(self, rng: np.random.Generator) -> nn.Module:
        channels, height, width = self.input_shape
        if height < 4 or width < 4:
            raise ValueError(
                f"image CNN needs >= 4x4 input; got {height}x{width}"
            )
        out_h, out_w = height // 2 // 2, width // 2 // 2
        hidden = self.image_channels
        return nn.Sequential(
            nn.Conv2d(channels, hidden, kernel_size=3, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(hidden, hidden, kernel_size=3, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.Linear(hidden * out_h * out_w, self.num_classes, rng=rng),
        )

    def _prepare(self, x: np.ndarray) -> nn.Tensor:
        x = np.asarray(x, dtype=float)
        if self.is_image_model:
            return nn.Tensor(x.reshape(len(x), *self.input_shape))
        # Tabular: treat the feature vector as a 1-pixel-tall signal.
        return nn.Tensor(x.reshape(len(x), 1, 1, self.input_shape[0]))

    def _config(self) -> dict:
        return {
            "input_shape": self.input_shape,
            "num_classes": self.num_classes,
            "lr": self.lr,
            "sgd_steps": self.sgd_steps,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "seed": self.seed,
            "conv_channels": self.conv_channels,
            "image_channels": self.image_channels,
        }
