"""Streaming Gaussian naive Bayes.

A classic incremental learner (and a staple of streaming-ML toolkits like
River): per-class feature means/variances are maintained with Welford's
online update, so a ``partial_fit`` is O(n·d) with no gradients at all.
Useful both as a fast baseline model inside FreewayML and as a sanity
reference — it adapts slowly to drift (statistics accumulate forever),
which is exactly the failure mode the paper's mechanisms target.
"""

from __future__ import annotations

import numpy as np

from .base import StreamingModel

__all__ = ["StreamingNaiveBayes"]


class StreamingNaiveBayes(StreamingModel):
    """Incremental Gaussian naive Bayes classifier.

    Parameters
    ----------
    num_features / num_classes:
        Input shape.
    var_smoothing:
        Added to variances for numerical stability (sklearn-style).
    decay:
        Optional exponential forgetting in (0, 1]: at each ``partial_fit``
        the effective historical counts are multiplied by ``decay``, so
        old statistics fade — ``1.0`` is the classic accumulate-forever
        behaviour.
    """

    name = "streaming-nb"

    def __init__(self, num_features: int, num_classes: int,
                 var_smoothing: float = 1e-9, decay: float = 1.0,
                 seed: int = 0):
        if num_features < 1:
            raise ValueError(f"num_features must be >= 1; got {num_features}")
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2; got {num_classes}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1]; got {decay}")
        self.num_features = num_features
        self.num_classes = num_classes
        self.var_smoothing = var_smoothing
        self.decay = decay
        self.seed = seed  # unused; kept for factory-interface parity
        self._counts = np.zeros(num_classes)
        self._means = np.zeros((num_classes, num_features))
        self._m2 = np.zeros((num_classes, num_features))  # sum of squares
        self.updates = 0

    @property
    def trained(self) -> bool:
        return self._counts.sum() > 0

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.asarray(x, dtype=float).reshape(len(x), -1)
        y = np.asarray(y, dtype=np.int64).reshape(-1)
        if len(x) != len(y):
            raise ValueError(f"{len(x)} rows but {len(y)} labels")
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features; got {x.shape[1]}"
            )
        if self.decay < 1.0:
            self._counts *= self.decay
            self._m2 *= self.decay
        for label in range(self.num_classes):
            rows = x[y == label]
            if not len(rows):
                continue
            # Chan et al. parallel-variance merge of (old stats, new chunk).
            n_old = self._counts[label]
            n_new = float(len(rows))
            mean_new = rows.mean(axis=0)
            m2_new = ((rows - mean_new) ** 2).sum(axis=0)
            delta = mean_new - self._means[label]
            n_total = n_old + n_new
            self._means[label] = (
                self._means[label] + delta * (n_new / n_total)
            )
            self._m2[label] = (
                self._m2[label] + m2_new
                + delta ** 2 * (n_old * n_new / n_total)
            )
            self._counts[label] = n_total
        self.updates += 1
        # Return the NLL on the batch as a loss-like signal.
        probabilities = self.predict_proba(x)
        picked = probabilities[np.arange(len(y)), y]
        return float(-np.log(np.clip(picked, 1e-12, None)).mean())

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float).reshape(len(x), -1)
        if not self.trained:
            return np.full((len(x), self.num_classes),
                           1.0 / self.num_classes)
        counts = np.maximum(self._counts, 1e-12)
        variances = self._m2 / counts[:, None]
        variances = variances + self.var_smoothing * max(
            variances.max(), 1.0
        )
        priors = counts / counts.sum()
        # log p(x | c) for a diagonal Gaussian, vectorized over classes.
        diff = x[:, None, :] - self._means[None, :, :]
        log_likelihood = -0.5 * (
            np.log(2.0 * np.pi * variances)[None, :, :]
            + diff ** 2 / variances[None, :, :]
        ).sum(axis=2)
        log_joint = log_likelihood + np.log(priors)[None, :]
        log_joint -= log_joint.max(axis=1, keepdims=True)
        probabilities = np.exp(log_joint)
        return probabilities / probabilities.sum(axis=1, keepdims=True)

    def state_dict(self) -> dict:
        return {
            "counts": self._counts.copy(),
            "means": self._means.copy(),
            "m2": self._m2.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        for name in ("counts", "means", "m2"):
            if name not in state:
                raise KeyError(f"state_dict missing {name!r}")
        counts = np.asarray(state["counts"], dtype=float)
        means = np.asarray(state["means"], dtype=float)
        m2 = np.asarray(state["m2"], dtype=float)
        if means.shape != (self.num_classes, self.num_features):
            raise ValueError(
                f"means shape {means.shape} does not match "
                f"({self.num_classes}, {self.num_features})"
            )
        self._counts = counts.copy()
        self._means = means.copy()
        self._m2 = m2.copy()

    def clone(self) -> "StreamingNaiveBayes":
        return StreamingNaiveBayes(
            self.num_features, self.num_classes,
            var_smoothing=self.var_smoothing, decay=self.decay,
            seed=self.seed,
        )
