"""Streaming Hoeffding tree (VFDT — Domingos & Hulten, 2000).

The canonical incremental decision tree behind streaming-ML toolkits like
River: leaves accumulate sufficient statistics, and a leaf splits only once
the Hoeffding bound

    eps = sqrt( R^2 * ln(1/delta) / (2 n) )

guarantees that the best split's information-gain advantage over the
runner-up is real with probability ``1 - delta``.  Numeric features are
handled with per-class Gaussian estimators evaluated at candidate
thresholds, the standard VFDT treatment.

Batch updates are vectorized: each ``partial_fit`` routes the whole batch
through the tree with index masks, so the per-row Python cost is bounded by
tree depth, not batch size.
"""

from __future__ import annotations

import math

import numpy as np

from .base import StreamingModel

__all__ = ["StreamingHoeffdingTree"]

_SQRT2 = math.sqrt(2.0)


def _gaussian_cdf(value, mean, std):
    """Vectorized standard-normal CDF via erf."""
    z = (value - mean) / np.maximum(std, 1e-9) / _SQRT2
    # np.vectorize(math.erf) is slow; use the erf-free approximation via
    # scipy if available, else tanh-based.  scipy is a declared dependency.
    from scipy.special import erf
    return 0.5 * (1.0 + erf(z))


class _Leaf:
    """A leaf accumulating per-class counts and per-feature Gaussians."""

    __slots__ = ("class_counts", "sums", "sum_squares", "minimum",
                 "maximum", "seen_since_check")

    def __init__(self, num_classes: int, num_features: int):
        self.class_counts = np.zeros(num_classes)
        self.sums = np.zeros((num_classes, num_features))
        self.sum_squares = np.zeros((num_classes, num_features))
        self.minimum = np.full(num_features, np.inf)
        self.maximum = np.full(num_features, -np.inf)
        self.seen_since_check = 0

    @property
    def total(self) -> float:
        return float(self.class_counts.sum())

    def update(self, x: np.ndarray, y: np.ndarray, num_classes: int) -> None:
        for label in range(num_classes):
            rows = x[y == label]
            if not len(rows):
                continue
            self.class_counts[label] += len(rows)
            self.sums[label] += rows.sum(axis=0)
            self.sum_squares[label] += (rows ** 2).sum(axis=0)
        self.minimum = np.minimum(self.minimum, x.min(axis=0))
        self.maximum = np.maximum(self.maximum, x.max(axis=0))
        self.seen_since_check += len(x)

    def class_distribution(self) -> np.ndarray:
        total = self.class_counts.sum()
        if total == 0:
            return np.full(len(self.class_counts),
                           1.0 / len(self.class_counts))
        return self.class_counts / total

    def _entropy(self, counts: np.ndarray) -> float:
        total = counts.sum()
        if total <= 0:
            return 0.0
        probabilities = counts[counts > 0] / total
        return float(-(probabilities * np.log2(probabilities)).sum())

    def best_splits(self, candidates_per_feature: int = 10
                    ) -> list[tuple[float, int, float]]:
        """Rank candidate splits: ``(info_gain, feature, threshold)``.

        Expected left/right class counts at each threshold come from the
        per-class Gaussian estimates (mean/std per feature per class).
        """
        total_counts = self.class_counts
        total = total_counts.sum()
        if total < 2:
            return []
        base_entropy = self._entropy(total_counts)
        counts = np.maximum(total_counts, 1e-9)
        means = self.sums / counts[:, None]
        variances = np.maximum(
            self.sum_squares / counts[:, None] - means ** 2, 1e-9
        )
        stds = np.sqrt(variances)

        results: list[tuple[float, int, float]] = []
        for feature in range(self.sums.shape[1]):
            low, high = self.minimum[feature], self.maximum[feature]
            if not np.isfinite(low) or high <= low:
                continue
            thresholds = np.linspace(low, high, candidates_per_feature + 2
                                     )[1:-1]
            # fraction of each class expected left of each threshold
            left_fraction = _gaussian_cdf(
                thresholds[:, None], means[None, :, feature],
                stds[None, :, feature],
            )  # (thresholds, classes)
            left_counts = left_fraction * total_counts[None, :]
            right_counts = total_counts[None, :] - left_counts
            for position, threshold in enumerate(thresholds):
                left = left_counts[position]
                right = right_counts[position]
                left_total, right_total = left.sum(), right.sum()
                if left_total < 1e-6 or right_total < 1e-6:
                    continue
                child_entropy = (
                    left_total / total * self._entropy(left)
                    + right_total / total * self._entropy(right)
                )
                results.append(
                    (base_entropy - child_entropy, feature, float(threshold))
                )
        results.sort(key=lambda item: item[0], reverse=True)
        return results


class _Split:
    """An internal binary split on ``feature <= threshold``."""

    __slots__ = ("feature", "threshold", "left", "right")

    def __init__(self, feature: int, threshold: float,
                 left, right):
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right


class StreamingHoeffdingTree(StreamingModel):
    """Very Fast Decision Tree over a numeric feature stream.

    Parameters
    ----------
    num_features / num_classes:
        Input shape.
    delta:
        Hoeffding-bound confidence (probability of a wrong split choice).
    grace_period:
        Samples a leaf absorbs between split checks.
    tie_threshold:
        Split anyway when the bound falls below this (ties).
    max_depth:
        Hard cap on tree depth.
    """

    name = "streaming-hoeffding-tree"

    def __init__(self, num_features: int, num_classes: int,
                 delta: float = 1e-5, grace_period: int = 200,
                 tie_threshold: float = 0.05, max_depth: int = 12,
                 seed: int = 0):
        if num_features < 1:
            raise ValueError(f"num_features must be >= 1; got {num_features}")
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2; got {num_classes}")
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1); got {delta}")
        if grace_period < 1:
            raise ValueError(f"grace_period must be >= 1; got {grace_period}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1; got {max_depth}")
        self.num_features = num_features
        self.num_classes = num_classes
        self.delta = delta
        self.grace_period = grace_period
        self.tie_threshold = tie_threshold
        self.max_depth = max_depth
        self.seed = seed  # interface parity; the tree is deterministic
        self._root = _Leaf(num_classes, num_features)
        self.splits = 0
        self.updates = 0

    # -- structure ------------------------------------------------------------

    @property
    def depth(self) -> int:
        def walk(node):
            if isinstance(node, _Leaf):
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    @property
    def num_leaves(self) -> int:
        def walk(node):
            if isinstance(node, _Leaf):
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self._root)

    def _hoeffding_bound(self, n: float) -> float:
        value_range = math.log2(max(self.num_classes, 2))
        return math.sqrt(
            value_range ** 2 * math.log(1.0 / self.delta) / (2.0 * n)
        )

    # -- learning ---------------------------------------------------------------

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.asarray(x, dtype=float).reshape(len(x), -1)
        y = np.asarray(y, dtype=np.int64).reshape(-1)
        if len(x) != len(y):
            raise ValueError(f"{len(x)} rows but {len(y)} labels")
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features; got {x.shape[1]}"
            )
        error_rate = float((self.predict(x) != y).mean())
        self._route_and_learn(self._root, None, None, x, y, depth=0)
        self.updates += 1
        return error_rate

    def _route_and_learn(self, node, parent, side, x, y, depth):
        if isinstance(node, _Split):
            left_mask = x[:, node.feature] <= node.threshold
            if left_mask.any():
                self._route_and_learn(node.left, node, "left",
                                      x[left_mask], y[left_mask], depth + 1)
            if not left_mask.all():
                right_mask = ~left_mask
                self._route_and_learn(node.right, node, "right",
                                      x[right_mask], y[right_mask],
                                      depth + 1)
            return
        node.update(x, y, self.num_classes)
        if (node.seen_since_check >= self.grace_period
                and depth < self.max_depth):
            node.seen_since_check = 0
            self._maybe_split(node, parent, side)

    def _maybe_split(self, leaf: _Leaf, parent, side) -> None:
        if len(np.flatnonzero(leaf.class_counts)) < 2:
            return  # pure leaf: nothing to gain
        ranked = leaf.best_splits()
        if not ranked:
            return
        best = ranked[0]
        runner_up_gain = ranked[1][0] if len(ranked) > 1 else 0.0
        bound = self._hoeffding_bound(leaf.total)
        if (best[0] - runner_up_gain > bound) or bound < self.tie_threshold:
            if best[0] <= 0.0:
                return
            _, feature, threshold = best
            left = _Leaf(self.num_classes, self.num_features)
            right = _Leaf(self.num_classes, self.num_features)
            # Children inherit the parent's class prior so predictions in
            # the fresh leaves are not uniform.
            left.class_counts = leaf.class_counts / 2.0
            right.class_counts = leaf.class_counts / 2.0
            split = _Split(feature, threshold, left, right)
            if parent is None:
                self._root = split
            elif side == "left":
                parent.left = split
            else:
                parent.right = split
            self.splits += 1

    # -- inference ---------------------------------------------------------------

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float).reshape(len(x), -1)
        out = np.empty((len(x), self.num_classes))
        self._route_predict(self._root, x, np.arange(len(x)), out)
        return out

    def _route_predict(self, node, x, indices, out):
        if isinstance(node, _Leaf):
            out[indices] = node.class_distribution()
            return
        left_mask = x[indices, node.feature] <= node.threshold
        if left_mask.any():
            self._route_predict(node.left, x, indices[left_mask], out)
        if not left_mask.all():
            self._route_predict(node.right, x, indices[~left_mask], out)

    # -- checkpointing -------------------------------------------------------------

    def state_dict(self) -> dict:
        """Serialize the tree as flat arrays (pre-order node list)."""
        kinds, features, thresholds = [], [], []
        counts, sums, squares, minima, maxima = [], [], [], [], []

        def walk(node):
            if isinstance(node, _Split):
                kinds.append(1)
                features.append(node.feature)
                thresholds.append(node.threshold)
                counts.append(np.zeros(self.num_classes))
                sums.append(np.zeros((self.num_classes, self.num_features)))
                squares.append(np.zeros((self.num_classes,
                                         self.num_features)))
                minima.append(np.zeros(self.num_features))
                maxima.append(np.zeros(self.num_features))
                walk(node.left)
                walk(node.right)
            else:
                kinds.append(0)
                features.append(-1)
                thresholds.append(0.0)
                counts.append(node.class_counts)
                sums.append(node.sums)
                squares.append(node.sum_squares)
                minima.append(node.minimum)
                maxima.append(node.maximum)

        walk(self._root)
        return {
            "kinds": np.asarray(kinds, dtype=np.int64),
            "features": np.asarray(features, dtype=np.int64),
            "thresholds": np.asarray(thresholds, dtype=float),
            "counts": np.stack(counts),
            "sums": np.stack(sums),
            "squares": np.stack(squares),
            "minima": np.stack(minima),
            "maxima": np.stack(maxima),
        }

    def load_state_dict(self, state: dict) -> None:
        kinds = np.asarray(state["kinds"], dtype=np.int64)
        position = 0

        def build():
            nonlocal position
            index = position
            position += 1
            if kinds[index] == 1:
                left = build()
                right = build()
                return _Split(int(state["features"][index]),
                              float(state["thresholds"][index]),
                              left, right)
            leaf = _Leaf(self.num_classes, self.num_features)
            leaf.class_counts = np.asarray(state["counts"][index],
                                           dtype=float).copy()
            leaf.sums = np.asarray(state["sums"][index], dtype=float).copy()
            leaf.sum_squares = np.asarray(state["squares"][index],
                                          dtype=float).copy()
            leaf.minimum = np.asarray(state["minima"][index],
                                      dtype=float).copy()
            leaf.maximum = np.asarray(state["maxima"][index],
                                      dtype=float).copy()
            return leaf

        root = build()
        if position != len(kinds):
            raise ValueError("malformed tree state_dict")
        self._root = root
        self.splits = int((kinds == 1).sum())

    def clone(self) -> "StreamingHoeffdingTree":
        return StreamingHoeffdingTree(
            self.num_features, self.num_classes, delta=self.delta,
            grace_period=self.grace_period,
            tie_threshold=self.tie_threshold, max_depth=self.max_depth,
            seed=self.seed,
        )
