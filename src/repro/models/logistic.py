"""Streaming Logistic Regression — the paper's linear reference model."""

from __future__ import annotations

import numpy as np

from .. import nn
from .base import NeuralStreamingModel

__all__ = ["StreamingLR"]


class StreamingLR(NeuralStreamingModel):
    """Multinomial logistic regression trained with mini-batch SGD.

    A single affine layer with softmax cross-entropy — the "StreamingLR"
    model evaluated across frameworks in Table I.
    """

    name = "streaming-lr"

    def _build(self, rng: np.random.Generator) -> nn.Module:
        return nn.Linear(self.num_features, self.num_classes, rng=rng)
