"""Streaming-model protocol and the shared neural implementation.

All learners in this repository — FreewayML's granularity models, the plain
SML references, and every baseline — speak :class:`StreamingModel`:
``predict_proba`` / ``predict`` for inference and ``partial_fit`` for one
incremental mini-batch update, plus checkpointing (``state_dict``) and
``clone`` (a fresh, identically-initialized copy, so framework comparisons
start from the same weights).

:class:`NeuralStreamingModel` implements the protocol on top of
:mod:`repro.nn` with mini-batch SGD and softmax cross-entropy, which is how
the paper's Streaming LR / MLP / CNN models are trained.
"""

from __future__ import annotations

import abc

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn import plan as _plan
from ..perf.config import config as _perf_config

__all__ = ["StreamingModel", "NeuralStreamingModel"]


class StreamingModel(abc.ABC):
    """Interface every streaming learner implements."""

    name: str = "streaming-model"
    num_classes: int

    @abc.abstractmethod
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities, shape ``(n, num_classes)``."""

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return self.predict_proba(x).argmax(axis=1)

    @abc.abstractmethod
    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> float:
        """One incremental update on a labeled mini-batch; returns the loss."""

    @abc.abstractmethod
    def state_dict(self) -> dict:
        """Snapshot of the trainable state."""

    @abc.abstractmethod
    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""

    @abc.abstractmethod
    def clone(self) -> "StreamingModel":
        """A fresh model with identical configuration and initial weights."""

    def num_parameters(self) -> int:
        """Total scalar parameters (used by the Table IV space accounting)."""
        return sum(np.asarray(value).size for value in self.state_dict().values())


class NeuralStreamingModel(StreamingModel):
    """Mini-batch SGD streaming learner over a :mod:`repro.nn` module.

    Subclasses implement :meth:`_build` to construct the network.  The
    constructor signature is captured so :meth:`clone` can recreate the
    model (including its seeded initialization) exactly.

    Parameters
    ----------
    num_features:
        Flattened input dimensionality (tabular models) — image models pass
        the full ``input_shape`` instead via their own constructors.
    num_classes:
        Number of output classes.
    lr:
        SGD learning rate.
    sgd_steps:
        Gradient steps taken per :meth:`partial_fit` call (the paper's
        frameworks take one step per mini-batch).
    momentum / weight_decay:
        Standard SGD options.
    seed:
        Seed for weight initialization.
    """

    def __init__(self, num_features: int, num_classes: int, lr: float = 0.05,
                 sgd_steps: int = 1, momentum: float = 0.0,
                 weight_decay: float = 0.0, seed: int = 0):
        if num_features < 1:
            raise ValueError(f"num_features must be >= 1; got {num_features}")
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2; got {num_classes}")
        if sgd_steps < 1:
            raise ValueError(f"sgd_steps must be >= 1; got {sgd_steps}")
        self.num_features = num_features
        self.num_classes = num_classes
        self.lr = lr
        self.sgd_steps = sgd_steps
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.module = self._build(rng)
        self.optimizer = self._make_optimizer()
        self.updates = 0
        self._weights_version = 0
        self._proba_cache: tuple | None = None

    # -- subclass hooks ---------------------------------------------------------

    @abc.abstractmethod
    def _build(self, rng: np.random.Generator) -> nn.Module:
        """Construct the underlying network."""

    def _make_optimizer(self) -> nn.Optimizer:
        return nn.SGD(self.module.parameters(), lr=self.lr,
                      momentum=self.momentum, weight_decay=self.weight_decay)

    def _prepare(self, x: np.ndarray) -> nn.Tensor:
        """Convert raw batch features into the network's input tensor."""
        x = np.asarray(x, dtype=float)
        return nn.Tensor(x.reshape(len(x), -1))

    # -- StreamingModel protocol ---------------------------------------------------

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        # The FreewayML pipeline scores the same batch several times per
        # step (ensemble blend, skill EMA, confidence/error channels), so
        # memoize one forward pass per (batch, weights) pair.  The cache is
        # keyed on object identity plus a content fingerprint (the first
        # row), guarding against id() reuse after garbage collection.
        cached = self._proba_cache
        fingerprint = np.asarray(x[:1])
        if (cached is not None
                and cached[0] == id(x)
                and cached[1] == self._weights_version
                and cached[2].shape == fingerprint.shape
                and np.array_equal(cached[2], fingerprint)):
            return cached[3]
        result = None
        if _perf_config.plan_capture:
            result = _plan.proba_with_plan(self, x)
        if result is None:
            result = self._forward_proba(x)
        self._proba_cache = (id(x), self._weights_version,
                             fingerprint.copy(), result)
        return result

    def _forward_proba(self, x: np.ndarray) -> np.ndarray:
        """The reference inference pass (also the trace target for plans)."""
        self.module.eval()
        with nn.no_grad():
            logits = self.module(self._prepare(x))
            probabilities = F.softmax(logits, axis=-1)
        self.module.train()
        return probabilities.data

    def loss_on(self, x: np.ndarray, y: np.ndarray) -> float:
        """Cross-entropy loss without updating (used by gradient baselines)."""
        with nn.no_grad():
            logits = self.module(self._prepare(x))
            return F.cross_entropy(logits, y).item()

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> float:
        y = np.asarray(y, dtype=np.int64).reshape(-1)
        if len(y) != len(x):
            raise ValueError(f"{len(x)} rows but {len(y)} labels")
        loss = None
        if _perf_config.plan_capture:
            loss = _plan.fit_with_plan(self, x, y)
        if loss is None:
            loss = self._fit_steps(x, y)
        self.updates += 1
        self._weights_version += 1
        return loss

    def _fit_steps(self, x: np.ndarray, y: np.ndarray) -> float:
        """The reference update loop (also the trace target for plans)."""
        last_loss = 0.0
        for _ in range(self.sgd_steps):
            self.optimizer.zero_grad()
            logits = self.module(self._prepare(x))
            loss = F.cross_entropy(logits, y)
            loss.backward()
            self.optimizer.step()
            last_loss = loss.item()
        return last_loss

    def _plan_eligible(self) -> bool:
        """Whether :mod:`repro.nn.plan` may capture this model's steps.

        Subclasses with a custom ``_prepare`` (e.g. image models that keep
        the channel layout) or an exotic optimizer opt out automatically;
        everything else is guarded by capture-time verification anyway.
        """
        return (type(self)._prepare is NeuralStreamingModel._prepare
                and type(self.optimizer) in (nn.SGD, nn.Adam))

    def gradient_on(self, x: np.ndarray, y: np.ndarray) -> list[np.ndarray]:
        """Per-parameter gradients on a batch, without applying an update.

        Used by A-GEM (gradient projection) and the pre-computing window.
        """
        y = np.asarray(y, dtype=np.int64).reshape(-1)
        self.module.zero_grad()
        logits = self.module(self._prepare(x))
        loss = F.cross_entropy(logits, y)
        loss.backward()
        grads = [
            parameter.grad.copy() if parameter.grad is not None
            else np.zeros_like(parameter.data)
            for parameter in self.module.parameters()
        ]
        self.module.zero_grad()
        return grads

    def apply_gradient(self, grads: list[np.ndarray]) -> None:
        """Apply externally computed per-parameter gradients via the optimizer."""
        parameters = self.module.parameters()
        if len(grads) != len(parameters):
            raise ValueError(
                f"expected {len(parameters)} gradient arrays, got {len(grads)}"
            )
        for parameter, grad in zip(parameters, grads):
            parameter.grad = np.asarray(grad, dtype=parameter.data.dtype)
        self.optimizer.step()
        self.module.zero_grad()
        self.updates += 1
        self._weights_version += 1

    def state_dict(self) -> dict:
        return self.module.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self.module.load_state_dict(state)
        self._weights_version += 1
        # Restored weights are new arrays; cached plans hold buffers bound
        # to the old ones and would silently train stale state.
        _plan.invalidate_plans(self)

    def __getstate__(self) -> dict:
        # Plans alias parameter/optimizer buffers by identity; a pickled or
        # deep-copied model must re-capture against its own copies.
        state = self.__dict__.copy()
        state.pop("_plans", None)
        return state

    def clone(self) -> "NeuralStreamingModel":
        return type(self)(**self._config())

    def _config(self) -> dict:
        """Constructor kwargs for :meth:`clone`; subclasses extend."""
        return {
            "num_features": self.num_features,
            "num_classes": self.num_classes,
            "lr": self.lr,
            "sgd_steps": self.sgd_steps,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "seed": self.seed,
        }
