"""Streaming MLP — the paper's nonlinear reference model."""

from __future__ import annotations

import numpy as np

from .. import nn
from .base import NeuralStreamingModel

__all__ = ["StreamingMLP"]


class StreamingMLP(NeuralStreamingModel):
    """Multi-layer perceptron trained with mini-batch SGD.

    The paper's experiments use a lightweight "StreamingMLP"; we default to
    one hidden ReLU layer of 64 units, configurable via ``hidden``.
    """

    name = "streaming-mlp"

    def __init__(self, num_features: int, num_classes: int,
                 hidden: tuple[int, ...] = (64,), lr: float = 0.05,
                 sgd_steps: int = 1, momentum: float = 0.0,
                 weight_decay: float = 0.0, seed: int = 0):
        self.hidden = tuple(hidden)
        if not self.hidden or any(units < 1 for units in self.hidden):
            raise ValueError(f"hidden sizes must be positive; got {hidden}")
        super().__init__(num_features, num_classes, lr=lr, sgd_steps=sgd_steps,
                         momentum=momentum, weight_decay=weight_decay, seed=seed)

    def _build(self, rng: np.random.Generator) -> nn.Module:
        layers: list[nn.Module] = []
        previous = self.num_features
        for units in self.hidden:
            layers.append(nn.Linear(previous, units, rng=rng))
            layers.append(nn.ReLU())
            previous = units
        layers.append(nn.Linear(previous, self.num_classes, rng=rng))
        return nn.Sequential(*layers)

    def _config(self) -> dict:
        config = super()._config()
        config["hidden"] = self.hidden
        return config
