"""K-means clustering, the unsupervised engine behind coherent experience
clustering (paper Section IV-C).

A self-contained Lloyd's-algorithm implementation with k-means++ seeding.
Deterministic given its seed, which the CEC mechanism relies on when it
re-clusters a batch together with its coherent-experience points.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KMeans"]


class KMeans:
    """K-means with k-means++ initialization.

    Parameters
    ----------
    num_clusters:
        Number of clusters ``c`` (CEC sets this to the number of labels).
    max_iter:
        Lloyd iteration cap.
    tol:
        Convergence threshold on total centroid movement.
    seed:
        RNG seed for the k-means++ initialization.
    """

    def __init__(self, num_clusters: int, max_iter: int = 50,
                 tol: float = 1e-6, seed: int = 0):
        if num_clusters < 1:
            raise ValueError(f"num_clusters must be >= 1; got {num_clusters}")
        self.num_clusters = num_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centroids: np.ndarray | None = None
        self.iterations_run = 0

    def _init_centroids(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread initial centroids by D^2 sampling."""
        centroids = np.empty((self.num_clusters, x.shape[1]))
        first = rng.integers(len(x))
        centroids[0] = x[first]
        closest_sq = ((x - centroids[0]) ** 2).sum(axis=1)
        for index in range(1, self.num_clusters):
            total = closest_sq.sum()
            if total <= 0:  # all remaining points coincide with a centroid
                choice = rng.integers(len(x))
            else:
                choice = rng.choice(len(x), p=closest_sq / total)
            centroids[index] = x[choice]
            distance_sq = ((x - centroids[index]) ** 2).sum(axis=1)
            closest_sq = np.minimum(closest_sq, distance_sq)
        return centroids

    def fit(self, x: np.ndarray) -> "KMeans":
        """Run Lloyd's algorithm on ``x`` (shape ``(n, d)``)."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"expected (n, d) data; got shape {x.shape}")
        if len(x) < self.num_clusters:
            raise ValueError(
                f"need >= {self.num_clusters} points to form "
                f"{self.num_clusters} clusters; got {len(x)}"
            )
        rng = np.random.default_rng(self.seed)
        centroids = self._init_centroids(x, rng)
        for iteration in range(self.max_iter):
            assignment = self._assign(x, centroids)
            updated = centroids.copy()
            for cluster in range(self.num_clusters):
                members = x[assignment == cluster]
                if len(members):
                    updated[cluster] = members.mean(axis=0)
            movement = np.linalg.norm(updated - centroids, axis=1).sum()
            centroids = updated
            if movement <= self.tol:
                break
        self.centroids = centroids
        self.iterations_run = iteration + 1
        return self

    @staticmethod
    def _assign(x: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        distances = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        return distances.argmin(axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Cluster index for each row of ``x``."""
        if self.centroids is None:
            raise RuntimeError("KMeans is not fitted; call fit() first")
        return self._assign(np.asarray(x, dtype=float), self.centroids)

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        """Fit on ``x`` and return its cluster assignment."""
        return self.fit(x).predict(x)

    def inertia(self, x: np.ndarray) -> float:
        """Total within-cluster squared distance (clustering quality)."""
        if self.centroids is None:
            raise RuntimeError("KMeans is not fitted; call fit() first")
        x = np.asarray(x, dtype=float)
        assignment = self.predict(x)
        return float(((x - self.centroids[assignment]) ** 2).sum())
