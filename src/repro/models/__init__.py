"""``repro.models`` — streaming learners and clustering.

Streaming Logistic Regression, Streaming MLP, and the appendix's Streaming
CNN, all trained with mini-batch SGD on the :mod:`repro.nn` substrate, plus
the k-means implementation behind coherent experience clustering.
"""

from .base import NeuralStreamingModel, StreamingModel
from .cnn import StreamingCNN
from .hoeffding import StreamingHoeffdingTree
from .kmeans import KMeans
from .logistic import StreamingLR
from .mlp import StreamingMLP
from .naive_bayes import StreamingNaiveBayes

__all__ = [
    "StreamingModel",
    "NeuralStreamingModel",
    "StreamingLR",
    "StreamingMLP",
    "StreamingCNN",
    "StreamingNaiveBayes",
    "StreamingHoeffdingTree",
    "KMeans",
]
