"""Alink baseline: FOBOS/RDA-regularized streaming logistic regression.

Alink "integrates FOBOS and RDA with logistic regression to enhance model
stability when dealing with real-time data streams" (paper appendix).  This
baseline swaps the wrapped model's plain SGD optimizer for
:class:`~repro.nn.optim.FOBOS` (default) or :class:`~repro.nn.optim.RDA`,
keeping everything else identical.
"""

from __future__ import annotations

from ..nn.optim import FOBOS, RDA
from .base import WrappingBaseline

__all__ = ["AlinkBaseline"]


class AlinkBaseline(WrappingBaseline):
    """Streaming learner with a regularized online optimizer.

    Parameters
    ----------
    model_factory:
        Factory for the wrapped model (Alink pairs these updates with
        logistic regression, but any :class:`NeuralStreamingModel` works).
    method:
        ``"fobos"`` or ``"rda"``.
    lr:
        Base step size (FOBOS decays it as ``lr / sqrt(t)``).
    l1:
        L1 regularization strength.
    """

    name = "alink"

    def __init__(self, model_factory, method: str = "fobos",
                 lr: float = 0.5, l1: float = 1e-5):
        super().__init__(model_factory)
        if method not in ("fobos", "rda"):
            raise ValueError(f"method must be 'fobos' or 'rda'; got {method!r}")
        self.method = method
        self.lr = lr
        self.l1 = l1
        parameters = self.inner.module.parameters()
        if method == "fobos":
            self.inner.optimizer = FOBOS(parameters, lr=lr, l1=l1)
        else:
            self.inner.optimizer = RDA(parameters, l1=l1)

    def clone(self) -> "AlinkBaseline":
        return AlinkBaseline(self._factory, method=self.method,
                             lr=self.lr, l1=self.l1)
