"""``repro.baselines`` — the six comparison frameworks, re-implemented.

Algorithmic reproductions of the systems Table I compares against: Flink
ML (plain watermark-ordered SGD), Spark MLlib (partition-averaged
gradients), Alink (FOBOS/RDA logistic regression), River (ADWIN drift
detection with reset), Camel (data selection + similarity replay), and
A-GEM (gradient projection against episodic memory).
"""

from .agem import AGEMBaseline
from .alink import AlinkBaseline
from .base import WrappingBaseline
from .camel import CamelBaseline
from .detectors import DDMDetector, EDDMDetector, PageHinkleyDetector
from .ewc import EWCBaseline
from .experts import ExpertsBaseline
from .flinkml import FlinkMLBaseline
from .registry import BASELINES, LR_GROUP, MLP_GROUP, make_baseline
from .river_like import AdwinDetector, RiverBaseline
from .sparkml import SparkMLlibBaseline

__all__ = [
    "WrappingBaseline",
    "FlinkMLBaseline",
    "SparkMLlibBaseline",
    "AlinkBaseline",
    "RiverBaseline",
    "AdwinDetector",
    "DDMDetector",
    "EDDMDetector",
    "PageHinkleyDetector",
    "CamelBaseline",
    "AGEMBaseline",
    "EWCBaseline",
    "ExpertsBaseline",
    "BASELINES",
    "LR_GROUP",
    "MLP_GROUP",
    "make_baseline",
]
