"""Expert-selection baseline in the spirit of T-SaS / SEED.

The paper's related work (Section II-B.1) describes methods that keep a
pool of specialist models and "select an optimal domain network to handle
specific tasks" by distribution similarity.  This baseline distills that
idea to its streaming core:

- each expert owns a distribution centroid (EMA of the batch feature means
  it has trained on);
- an incoming batch routes to the nearest expert, which alone trains on it;
- when no expert is within ``spawn_distance`` × the typical match distance,
  a fresh expert is spawned (up to ``max_experts``, then the stalest is
  recycled).

Reoccurring distributions are therefore served by the expert that learned
them — the same goal as FreewayML's knowledge reuse, but with per-expert
training fragmentation as the cost.
"""

from __future__ import annotations

import numpy as np

from .base import WrappingBaseline

__all__ = ["ExpertsBaseline"]


class _Expert:
    __slots__ = ("model", "centroid", "updates", "last_used")

    def __init__(self, model):
        self.model = model
        self.centroid: np.ndarray | None = None
        self.updates = 0
        self.last_used = 0


class ExpertsBaseline(WrappingBaseline):
    """A pool of specialist models routed by distribution similarity.

    Parameters
    ----------
    model_factory:
        Factory for each expert's model.
    max_experts:
        Pool size cap; beyond it the least-recently-used expert is
        recycled for the new distribution.
    spawn_distance:
        A batch farther than this multiple of the running mean match
        distance from every expert spawns (or recycles) an expert.
    centroid_ema:
        How fast an expert's centroid tracks the batches it trains on.
    """

    name = "experts"

    def __init__(self, model_factory, max_experts: int = 5,
                 spawn_distance: float = 3.0, centroid_ema: float = 0.2):
        super().__init__(model_factory)
        if max_experts < 1:
            raise ValueError(f"max_experts must be >= 1; got {max_experts}")
        if spawn_distance <= 1.0:
            raise ValueError(
                f"spawn_distance must be > 1; got {spawn_distance}"
            )
        if not 0.0 < centroid_ema <= 1.0:
            raise ValueError(
                f"centroid_ema must be in (0, 1]; got {centroid_ema}"
            )
        self.max_experts = max_experts
        self.spawn_distance = spawn_distance
        self.centroid_ema = centroid_ema
        self._experts: list[_Expert] = [_Expert(self.inner)]
        self._mean_match = None
        self._clock = 0
        self.spawns = 0

    @property
    def num_experts(self) -> int:
        return len(self._experts)

    def _batch_centroid(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=float).reshape(len(x), -1).mean(axis=0)

    def _nearest(self, centroid: np.ndarray) -> tuple[_Expert, float]:
        best, best_distance = None, np.inf
        for expert in self._experts:
            if expert.centroid is None:
                return expert, 0.0  # untrained expert: free to claim
            distance = float(np.linalg.norm(expert.centroid - centroid))
            if distance < best_distance:
                best, best_distance = expert, distance
        return best, best_distance

    def _route(self, x: np.ndarray) -> _Expert:
        centroid = self._batch_centroid(x)
        expert, distance = self._nearest(centroid)
        typical = self._mean_match if self._mean_match else None
        if (typical is not None
                and distance > self.spawn_distance * max(typical, 1e-9)):
            expert = self._spawn()
            self.spawns += 1
        else:
            self._mean_match = (
                distance if typical is None
                else 0.9 * typical + 0.1 * distance
            )
        return expert

    def _spawn(self) -> _Expert:
        if len(self._experts) < self.max_experts:
            expert = _Expert(self._factory())
            self._experts.append(expert)
            return expert
        stalest = min(self._experts, key=lambda e: e.last_used)
        stalest.model = self._factory()
        stalest.centroid = None
        stalest.updates = 0
        return stalest

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        centroid = self._batch_centroid(x)
        expert, _ = self._nearest(centroid)
        return expert.model.predict_proba(x)

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> float:
        self._clock += 1
        expert = self._route(x)
        expert.last_used = self._clock
        expert.updates += 1
        centroid = self._batch_centroid(x)
        if expert.centroid is None:
            expert.centroid = centroid
        else:
            expert.centroid = ((1.0 - self.centroid_ema) * expert.centroid
                               + self.centroid_ema * centroid)
        return expert.model.partial_fit(x, y)

    def state_dict(self) -> dict:
        raise NotImplementedError(
            "ExpertsBaseline holds a model pool; checkpoint experts "
            "individually via expert.model.state_dict()"
        )

    def load_state_dict(self, state: dict) -> None:
        raise NotImplementedError(
            "ExpertsBaseline holds a model pool; restore experts "
            "individually"
        )

    def clone(self) -> "ExpertsBaseline":
        return ExpertsBaseline(self._factory, max_experts=self.max_experts,
                               spawn_distance=self.spawn_distance,
                               centroid_ema=self.centroid_ema)
