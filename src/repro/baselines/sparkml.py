"""Spark MLlib baseline: averaged-gradient mini-batch updates.

Spark Streaming's MLlib integration collects records into micro-batch
windows, computes partition gradients in parallel, and applies their
*average* as a single update.  We reproduce the update rule: each incoming
mini-batch is split into ``partitions`` shards, per-shard gradients are
computed at the same parameter vector, and their sample-weighted average is
applied in one optimizer step.
"""

from __future__ import annotations

import numpy as np

from .base import WrappingBaseline

__all__ = ["SparkMLlibBaseline"]


class SparkMLlibBaseline(WrappingBaseline):
    """Mini-batch SGD with partition-averaged gradients.

    Parameters
    ----------
    model_factory:
        Factory for the wrapped streaming model.
    partitions:
        Number of shards each batch is split into (RDD partitions).
    """

    name = "spark-mllib"

    def __init__(self, model_factory, partitions: int = 4):
        super().__init__(model_factory)
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1; got {partitions}")
        self.partitions = partitions

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=np.int64).reshape(-1)
        shards = min(self.partitions, len(x))
        x_shards = np.array_split(x, shards)
        y_shards = np.array_split(y, shards)
        total = None
        samples = 0
        for shard_x, shard_y in zip(x_shards, y_shards):
            if len(shard_x) == 0:
                continue
            grads = self.inner.gradient_on(shard_x, shard_y)
            weight = len(shard_x)
            if total is None:
                total = [grad * weight for grad in grads]
            else:
                for bank, grad in zip(total, grads):
                    bank += grad * weight
            samples += weight
        mean_grads = [bank / samples for bank in total]
        self.inner.apply_gradient(mean_grads)
        return self.inner.loss_on(x, y)
