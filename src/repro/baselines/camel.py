"""Camel baseline: data selection for efficient stream learning.

Camel (Li, Shen & Chen, SIGMOD 2022) "provides effective data selection to
reduce model training cost and increase data quality" (paper appendix).
The reproduced policy has Camel's two levers:

1. **quality filtering** — per-sample losses are computed on the incoming
   batch and the highest-loss tail (likely label noise / outliers) is
   dropped before training;
2. **similarity replay** — a reservoir of past samples is kept, and the
   buffered samples most similar to the current batch mean are mixed into
   the training set, reinforcing the active region of feature space.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import WrappingBaseline

__all__ = ["CamelBaseline"]


class CamelBaseline(WrappingBaseline):
    """Data-selection streaming learner.

    Parameters
    ----------
    model_factory:
        Factory for the wrapped model.
    drop_fraction:
        Fraction of highest-loss samples discarded from each batch.
    buffer_size:
        Reservoir capacity for similarity replay.
    replay_fraction:
        Replayed samples per batch, as a fraction of the batch size.
    seed:
        Reservoir sampling seed.
    """

    name = "camel"

    def __init__(self, model_factory, drop_fraction: float = 0.1,
                 buffer_size: int = 4096, replay_fraction: float = 0.25,
                 seed: int = 0):
        super().__init__(model_factory)
        if not 0.0 <= drop_fraction < 1.0:
            raise ValueError(
                f"drop_fraction must be in [0, 1); got {drop_fraction}"
            )
        if not 0.0 <= replay_fraction <= 1.0:
            raise ValueError(
                f"replay_fraction must be in [0, 1]; got {replay_fraction}"
            )
        self.drop_fraction = drop_fraction
        self.buffer_size = buffer_size
        self.replay_fraction = replay_fraction
        self._rng = np.random.default_rng(seed)
        self._buffer_x: np.ndarray | None = None
        self._buffer_y: np.ndarray | None = None
        self._fill = 0
        self._seen = 0

    def _per_sample_loss(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        with nn.no_grad():
            logits = self.inner.module(self.inner._prepare(x))
            log_probs = F.log_softmax(logits, axis=-1).data
        return -log_probs[np.arange(len(y)), y]

    def _select(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Indices surviving the quality filter (drop the high-loss tail)."""
        if self.drop_fraction == 0.0 or self.inner.updates == 0:
            return np.arange(len(x))
        losses = self._per_sample_loss(x, y)
        keep = max(int(round(len(x) * (1.0 - self.drop_fraction))), 1)
        return np.argsort(losses)[:keep]

    def _replay(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
        """Buffered samples nearest the current batch mean."""
        if self._buffer_x is None or self._fill == 0:
            return None
        count = int(round(len(x) * self.replay_fraction))
        if count == 0:
            return None
        flat = np.asarray(x, dtype=float).reshape(len(x), -1)
        centre = flat.mean(axis=0)
        filled_x = self._buffer_x[: self._fill]
        filled_y = self._buffer_y[: self._fill]
        buffered = filled_x.reshape(self._fill, -1)
        distances = np.linalg.norm(buffered - centre, axis=1)
        nearest = np.argsort(distances)[:count]
        return filled_x[nearest], filled_y[nearest]

    def _remember(self, x: np.ndarray, y: np.ndarray) -> None:
        """Reservoir-sample the batch into the replay buffer."""
        if self._buffer_x is None:
            self._buffer_x = np.zeros((self.buffer_size, *x.shape[1:]))
            self._buffer_y = np.zeros(self.buffer_size, dtype=np.int64)
            self._fill = 0
        for row_x, row_y in zip(x, y):
            self._seen += 1
            if self._fill < self.buffer_size:
                self._buffer_x[self._fill] = row_x
                self._buffer_y[self._fill] = row_y
                self._fill += 1
            else:
                slot = self._rng.integers(self._seen)
                if slot < self.buffer_size:
                    self._buffer_x[slot] = row_x
                    self._buffer_y[slot] = row_y

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=np.int64).reshape(-1)
        selected = self._select(x, y)
        train_x, train_y = x[selected], y[selected]
        replayed = self._replay(x)
        if replayed is not None:
            train_x = np.concatenate([train_x, replayed[0]])
            train_y = np.concatenate([train_y, replayed[1]])
        loss = self.inner.partial_fit(train_x, train_y)
        self._remember(x, y)
        return loss
