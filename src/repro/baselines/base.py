"""Shared scaffolding for baseline SML frameworks.

Each baseline re-implements the *algorithmic* behaviour of one system the
paper compares against (see the appendix "Details of baseline"), on top of
the same :mod:`repro.nn` substrate and :class:`StreamingModel` protocol as
FreewayML — so accuracy and stability comparisons isolate the adaptation
policy, not the runtime.
"""

from __future__ import annotations

import numpy as np

from ..models.base import NeuralStreamingModel, StreamingModel

__all__ = ["WrappingBaseline"]


class WrappingBaseline(StreamingModel):
    """A baseline that decorates an inner neural streaming model.

    Subclasses override :meth:`partial_fit` (the adaptation policy) and
    inherit inference and checkpointing from the wrapped model.
    """

    name = "baseline"

    def __init__(self, model_factory):
        inner = model_factory()
        if not isinstance(inner, NeuralStreamingModel):
            raise TypeError(
                "baselines wrap a NeuralStreamingModel; got "
                f"{type(inner).__name__}"
            )
        self._factory = model_factory
        self.inner = inner
        self.num_classes = inner.num_classes

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self.inner.predict_proba(x)

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> float:
        return self.inner.partial_fit(x, y)

    def state_dict(self) -> dict:
        return self.inner.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self.inner.load_state_dict(state)

    def clone(self) -> "WrappingBaseline":
        return type(self)(self._factory)

    def reset_model(self) -> None:
        """Replace the inner model with a fresh copy (drift response)."""
        self.inner = self._factory()
