"""Shared scaffolding for baseline SML frameworks.

Each baseline re-implements the *algorithmic* behaviour of one system the
paper compares against (see the appendix "Details of baseline"), on top of
the same :mod:`repro.nn` substrate and :class:`StreamingModel` protocol as
FreewayML — so accuracy and stability comparisons isolate the adaptation
policy, not the runtime.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.learner import BatchReport
from ..models.base import NeuralStreamingModel, StreamingModel

__all__ = ["WrappingBaseline"]


class WrappingBaseline(StreamingModel):
    """A baseline that decorates an inner neural streaming model.

    Subclasses override :meth:`partial_fit` (the adaptation policy) and
    inherit inference and checkpointing from the wrapped model.  The
    :class:`~repro.api.StreamingEstimator` surface (``update``/``process``/
    ``summary``) is implemented here, so baselines drop into any harness
    that drives FreewayML — with the one historical difference that
    ``predict`` returns the bare label array.
    """

    name = "baseline"

    def __init__(self, model_factory):
        inner = model_factory()
        if not isinstance(inner, NeuralStreamingModel):
            raise TypeError(
                "baselines wrap a NeuralStreamingModel; got "
                f"{type(inner).__name__}"
            )
        self._factory = model_factory
        self.inner = inner
        self.num_classes = inner.num_classes
        self._processed = 0

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self.inner.predict_proba(x)

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> float:
        return self.inner.partial_fit(x, y)

    def state_dict(self) -> dict:
        return self.inner.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self.inner.load_state_dict(state)

    def clone(self) -> "WrappingBaseline":
        return type(self)(self._factory)

    def reset_model(self) -> None:
        """Replace the inner model with a fresh copy (drift response)."""
        self.inner = self._factory()

    # -- StreamingEstimator surface ------------------------------------------

    def update(self, x: np.ndarray, y: np.ndarray) -> float | None:
        """Train on one labeled batch; returns the adaptation-policy loss."""
        return self.partial_fit(np.asarray(x), np.asarray(y))

    def process(self, batch) -> BatchReport:
        """Prequential test-then-train step producing a unified report."""
        start = time.perf_counter()
        labels = self.predict(batch.x)
        predict_seconds = time.perf_counter() - start
        accuracy = None
        loss = None
        update_seconds = 0.0
        if batch.labeled:
            accuracy = float(np.mean(labels == batch.y))
            start = time.perf_counter()
            loss = self.partial_fit(batch.x, batch.y)
            update_seconds = time.perf_counter() - start
        self._processed += 1
        return BatchReport(
            batch_index=batch.index,
            num_items=len(batch),
            strategy=self.name,
            accuracy=accuracy,
            loss=loss,
            predict_seconds=predict_seconds,
            update_seconds=update_seconds,
        )

    def summary(self) -> dict:
        """Estimator state as a plain dict (StreamingEstimator protocol)."""
        return {
            "estimator": self.name,
            "batches_processed": self._processed,
            "num_classes": self.num_classes,
        }

    def close(self) -> None:
        """Release estimator resources (no-op: baselines own only memory)."""

    def __enter__(self) -> "WrappingBaseline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
