"""River baseline: incremental learning with an ADWIN-style drift detector.

River's idiomatic pipeline pairs an incremental model with a drift detector
(ADWIN) that monitors the error rate; on a detected drift the model is
reset (or sharply re-adapted) so it can track the new concept.  We
implement the detector as ADWIN's core test on a sliding window of batch
error rates: the window is repeatedly split into an "old" and a "recent"
half, and drift is declared when their means differ by more than the
Hoeffding-style cut threshold

    eps = sqrt( (1 / (2 m)) * ln(4 / delta) ),   m = harmonic size of the halves

after which the stale half of the window is dropped.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from .base import WrappingBaseline

__all__ = ["AdwinDetector", "RiverBaseline"]


class AdwinDetector:
    """Adaptive-windowing drift detector over a bounded value window.

    Parameters
    ----------
    delta:
        Confidence parameter of the cut test (smaller = fewer detections).
    max_window:
        Cap on stored values (full ADWIN uses exponential buckets; at batch
        granularity a flat bounded window behaves identically for our
        sizes).
    min_samples:
        Minimum values in each half before the test applies.
    """

    def __init__(self, delta: float = 0.002, max_window: int = 128,
                 min_samples: int = 5):
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1); got {delta}")
        self.delta = delta
        self.max_window = max_window
        self.min_samples = min_samples
        self._window: deque[tuple[float, float]] = deque(maxlen=max_window)
        self.detections = 0
        #: mean(recent) - mean(old) at the most recent cut; positive means
        #: the monitored value (error) increased — a degradation.
        self.last_cut_increase = 0.0

    def __len__(self) -> int:
        return len(self._window)

    def update(self, value: float, weight: float = 1.0) -> bool:
        """Add a value; return ``True`` if drift was detected (window cut).

        ``weight`` is the number of underlying Bernoulli observations the
        value aggregates (e.g. the batch size for a batch error rate) —
        full ADWIN sees per-instance errors, so the cut threshold must
        tighten with the true sample count, not the number of batches.
        """
        if weight <= 0:
            raise ValueError(f"weight must be positive; got {weight}")
        self._window.append((float(value), float(weight)))
        values = np.asarray([entry[0] for entry in self._window])
        weights = np.asarray([entry[1] for entry in self._window])
        n = len(values)
        detected = False
        best_cut = None
        best_increase = 0.0
        for cut in range(self.min_samples, n - self.min_samples + 1):
            left_n = weights[:cut].sum()
            right_n = weights[cut:].sum()
            left_mean = (values[:cut] * weights[:cut]).sum() / left_n
            right_mean = (values[cut:] * weights[cut:]).sum() / right_n
            m_harm = 1.0 / (1.0 / left_n + 1.0 / right_n)
            eps = math.sqrt(math.log(4.0 / self.delta) / (2.0 * m_harm))
            if abs(left_mean - right_mean) > eps:
                detected = True
                best_cut = cut
                best_increase = right_mean - left_mean
        if detected:
            self.detections += 1
            self.last_cut_increase = best_increase
            keep = list(self._window)[best_cut:]
            self._window.clear()
            self._window.extend(keep)
        return detected


class RiverBaseline(WrappingBaseline):
    """Incremental learner + ADWIN on the batch error rate, reset on drift.

    Parameters
    ----------
    model_factory:
        Factory for the wrapped model.
    delta:
        ADWIN confidence (used when ``detector`` is the default).
    recovery_batches:
        After a reset, the fresh model trains this many extra epochs on the
        triggering batch to recover quickly (River users typically warm the
        replacement model on the buffered recent data).
    detector:
        Any object with ``update(value, weight) -> bool`` — the default is
        :class:`AdwinDetector`; :mod:`repro.baselines.detectors` provides
        DDM, EDDM and Page–Hinkley alternatives.
    """

    name = "river"

    def __init__(self, model_factory, delta: float = 0.002,
                 recovery_batches: int = 3, detector=None):
        super().__init__(model_factory)
        self.detector = detector if detector is not None else AdwinDetector(
            delta=delta
        )
        self.recovery_batches = recovery_batches
        self.resets = 0

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> float:
        # Error rate *before* training — the prequential signal the
        # detector sees.
        error_rate = float((self.inner.predict(x) != np.asarray(y)).mean())
        drifted = self.detector.update(error_rate, weight=len(x))
        # For ADWIN, reset only on *degradation*: it also cuts when the
        # error drops (early learning), which is change but not drift worth
        # a reset.  Other detectors are one-sided already.
        increase = getattr(self.detector, "last_cut_increase", 1.0)
        if drifted and increase > 0:
            self.reset_model()
            self.resets += 1
            loss = 0.0
            for _ in range(self.recovery_batches):
                loss = self.inner.partial_fit(x, y)
            return loss
        return self.inner.partial_fit(x, y)
