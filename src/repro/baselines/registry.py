"""Registry of baseline frameworks, grouped as the paper groups them.

Table I evaluates StreamingLR against the "big data" frameworks (Flink ML,
Spark MLlib, Alink) and StreamingMLP against the learning-centric ones
(River, Camel, A-GEM); FreewayML competes in both groups.
"""

from __future__ import annotations

from .agem import AGEMBaseline
from .alink import AlinkBaseline
from .base import WrappingBaseline
from .camel import CamelBaseline
from .ewc import EWCBaseline
from .experts import ExpertsBaseline
from .flinkml import FlinkMLBaseline
from .river_like import RiverBaseline
from .sparkml import SparkMLlibBaseline

__all__ = ["BASELINES", "LR_GROUP", "MLP_GROUP", "make_baseline"]

BASELINES: dict[str, type[WrappingBaseline]] = {
    FlinkMLBaseline.name: FlinkMLBaseline,
    SparkMLlibBaseline.name: SparkMLlibBaseline,
    AlinkBaseline.name: AlinkBaseline,
    RiverBaseline.name: RiverBaseline,
    CamelBaseline.name: CamelBaseline,
    AGEMBaseline.name: AGEMBaseline,
    # Related-work comparators (paper Section II-B), beyond Table I's six.
    EWCBaseline.name: EWCBaseline,
    ExpertsBaseline.name: ExpertsBaseline,
}

# Table I's two comparison groups.
LR_GROUP = ("flink-ml", "spark-mllib", "alink")
MLP_GROUP = ("river", "camel", "a-gem")


def make_baseline(name: str, model_factory, **kwargs) -> WrappingBaseline:
    """Instantiate a baseline by its paper name."""
    try:
        baseline_cls = BASELINES[name]
    except KeyError:
        raise KeyError(
            f"unknown baseline {name!r}; available: {sorted(BASELINES)}"
        ) from None
    return baseline_cls(model_factory, **kwargs)
