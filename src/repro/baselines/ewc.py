"""EWC baseline: elastic weight consolidation (Kirkpatrick et al., 2017).

Discussed in the paper's related work (Section II-B.3): a
parameter-constraint method that "incorporates an additional regularization
loss related to the parameters".  After each consolidation checkpoint the
loss gains a quadratic penalty

    L'(theta) = L(theta) + (lambda/2) * sum_i F_i (theta_i - theta*_i)^2

where ``theta*`` are the checkpointed parameters and ``F`` is the diagonal
Fisher information estimated from recent data — parameters that mattered
for past data resist change.

The streaming adaptation consolidates every ``consolidate_every`` batches
against a reservoir of recent samples (streams have no task boundaries).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import WrappingBaseline

__all__ = ["EWCBaseline"]


class EWCBaseline(WrappingBaseline):
    """Streaming learner with elastic-weight-consolidation regularization.

    Parameters
    ----------
    model_factory:
        Factory for the wrapped model.
    ewc_lambda:
        Strength of the quadratic anchor.
    consolidate_every:
        Batches between Fisher/anchor refreshes.
    fisher_samples:
        Rows drawn from memory to estimate the Fisher diagonal.
    memory_size:
        Reservoir capacity.
    """

    name = "ewc"

    def __init__(self, model_factory, ewc_lambda: float = 1.0,
                 consolidate_every: int = 10, fisher_samples: int = 256,
                 memory_size: int = 2048, seed: int = 0):
        super().__init__(model_factory)
        if ewc_lambda < 0:
            raise ValueError(f"ewc_lambda must be >= 0; got {ewc_lambda}")
        if consolidate_every < 1:
            raise ValueError(
                f"consolidate_every must be >= 1; got {consolidate_every}"
            )
        self.ewc_lambda = ewc_lambda
        self.consolidate_every = consolidate_every
        self.fisher_samples = fisher_samples
        self.memory_size = memory_size
        self._rng = np.random.default_rng(seed)
        self._memory_x: np.ndarray | None = None
        self._memory_y: np.ndarray | None = None
        self._fill = 0
        self._seen = 0
        self._batches = 0
        self._anchor: list[np.ndarray] | None = None
        self._fisher: list[np.ndarray] | None = None
        self.consolidations = 0

    def _estimate_fisher(self) -> list[np.ndarray]:
        """Diagonal Fisher: mean squared gradient of the log-likelihood."""
        count = min(self.fisher_samples, self._fill)
        chosen = self._rng.choice(self._fill, size=count, replace=False)
        totals = [np.zeros_like(p.data)
                  for p in self.inner.module.parameters()]
        # Average squared per-chunk gradients (chunking keeps it cheap while
        # still capturing curvature direction).
        chunks = max(count // 64, 1)
        for chunk in np.array_split(chosen, chunks):
            if not len(chunk):
                continue
            grads = self.inner.gradient_on(self._memory_x[chunk],
                                           self._memory_y[chunk])
            for total, grad in zip(totals, grads):
                total += grad ** 2
        fisher = [total / chunks for total in totals]
        # Normalize to mean 1 and clip, so ewc_lambda has a scale-free
        # meaning and the anchor's SGD dynamics stay stable: the quadratic
        # term is stable iff lr * lambda * F_i < 2, which the clip
        # guarantees for the default configuration regardless of how
        # peaked the raw Fisher is.
        overall = float(np.mean([np.mean(f) for f in fisher]))
        if overall > 0:
            fisher = [np.clip(f / overall, 0.0, 5.0) for f in fisher]
        return fisher

    def _consolidate(self) -> None:
        self._anchor = [p.data.copy()
                        for p in self.inner.module.parameters()]
        self._fisher = self._estimate_fisher()
        self.consolidations += 1

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=np.int64).reshape(-1)
        parameters = self.inner.module.parameters()
        self.inner.module.zero_grad()
        logits = self.inner.module(self.inner._prepare(x))
        loss = F.cross_entropy(logits, y)
        if self._anchor is not None and self.ewc_lambda > 0:
            for parameter, anchor, fisher in zip(parameters, self._anchor,
                                                 self._fisher):
                penalty = (nn.Tensor(fisher)
                           * (parameter - nn.Tensor(anchor)) ** 2).sum()
                loss = loss + (self.ewc_lambda / 2.0) * penalty
        loss.backward()
        self.inner.optimizer.step()
        self.inner.module.zero_grad()
        self.inner.updates += 1
        self.inner._weights_version += 1

        self._remember(x, y)
        self._batches += 1
        if self._batches % self.consolidate_every == 0 and self._fill > 0:
            self._consolidate()
        return float(loss.item())

    def _remember(self, x: np.ndarray, y: np.ndarray) -> None:
        if self._memory_x is None:
            self._memory_x = np.zeros((self.memory_size, *x.shape[1:]))
            self._memory_y = np.zeros(self.memory_size, dtype=np.int64)
        for row_x, row_y in zip(x, y):
            self._seen += 1
            if self._fill < self.memory_size:
                self._memory_x[self._fill] = row_x
                self._memory_y[self._fill] = row_y
                self._fill += 1
            else:
                slot = self._rng.integers(self._seen)
                if slot < self.memory_size:
                    self._memory_x[slot] = row_x
                    self._memory_y[slot] = row_y
