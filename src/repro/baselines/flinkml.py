"""Flink ML baseline: watermark-ordered mini-batch SGD.

Flink ML performs continuous incremental training with one SGD update per
mini-batch, relying on its watermark mechanism to process batches in event
order.  Algorithmically that is plain test-then-train mini-batch SGD; the
watermark is modelled as a small reordering buffer that releases batches in
arrival order (a no-op for an in-order stream, faithfully costing one batch
of delay when configured).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .base import WrappingBaseline

__all__ = ["FlinkMLBaseline"]


class FlinkMLBaseline(WrappingBaseline):
    """Plain streaming SGD with an optional watermark delay buffer.

    Parameters
    ----------
    model_factory:
        Factory for the wrapped streaming model.
    watermark_delay:
        Number of batches held back before training (0 = train
        immediately, matching a perfectly ordered stream).
    """

    name = "flink-ml"

    def __init__(self, model_factory, watermark_delay: int = 0):
        super().__init__(model_factory)
        if watermark_delay < 0:
            raise ValueError(
                f"watermark_delay must be >= 0; got {watermark_delay}"
            )
        self.watermark_delay = watermark_delay
        self._held: deque[tuple[np.ndarray, np.ndarray]] = deque()

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> float:
        if self.watermark_delay == 0:
            return self.inner.partial_fit(x, y)
        self._held.append((x, y))
        loss = 0.0
        while len(self._held) > self.watermark_delay:
            ready_x, ready_y = self._held.popleft()
            loss = self.inner.partial_fit(ready_x, ready_y)
        return loss
