"""Classic drift detectors: DDM, EDDM, and Page–Hinkley.

River exposes a family of error-monitoring drift detectors; the baseline in
this package defaults to ADWIN (``river_like.py``) but accepts any detector
with the same ``update(value, weight) -> bool`` protocol.  These are the
other standard members of that family:

- **DDM** (Gama et al., 2004) — tracks the error rate's mean ``p`` and
  binomial std ``s``; drift when ``p + s`` exceeds the best-seen
  ``p_min + 3 s_min``.
- **EDDM** (Baena-García et al., 2006) — like DDM but on the *distance
  between errors*, more sensitive to gradual drift.
- **Page–Hinkley** (Page, 1954) — CUSUM-style test on the deviation of the
  monitored value from its running mean.
"""

from __future__ import annotations

import math

__all__ = ["DDMDetector", "EDDMDetector", "PageHinkleyDetector"]


class DDMDetector:
    """Drift Detection Method on a Bernoulli error stream.

    ``update`` takes an error rate in ``[0, 1]`` and the number of
    underlying observations it aggregates (the batch size).
    """

    def __init__(self, warn_level: float = 2.0, drift_level: float = 3.0,
                 min_samples: int = 30):
        if drift_level <= warn_level:
            raise ValueError(
                f"drift_level ({drift_level}) must exceed warn_level "
                f"({warn_level})"
            )
        self.warn_level = warn_level
        self.drift_level = drift_level
        self.min_samples = min_samples
        self.detections = 0
        self._reset()

    def _reset(self) -> None:
        self._n = 0.0
        self._errors = 0.0
        self._p_min = math.inf
        self._s_min = math.inf
        self.warning = False

    def update(self, value: float, weight: float = 1.0) -> bool:
        """Feed an error rate; returns ``True`` on detected drift."""
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"error rate must be in [0, 1]; got {value}")
        if weight <= 0:
            raise ValueError(f"weight must be positive; got {weight}")
        self._n += weight
        self._errors += value * weight
        if self._n < self.min_samples:
            return False
        p = self._errors / self._n
        s = math.sqrt(p * (1.0 - p) / self._n)
        if p + s < self._p_min + self._s_min:
            self._p_min, self._s_min = p, s
        level = self._p_min + self.drift_level * self._s_min
        warn = self._p_min + self.warn_level * self._s_min
        self.warning = p + s >= warn
        if p + s >= level:
            self.detections += 1
            self._reset()
            return True
        return False


class EDDMDetector:
    """Early DDM: monitors the mean distance between consecutive errors.

    Operates on error *rates* by converting each batch into an estimated
    inter-error distance ``1 / max(rate, eps)``.  A *recency-weighted* mean
    of those distances is compared against the best mean ever seen: errors
    arriving closer together (the mean distance shrinking below ``beta``
    times the best) signal drift.  The recency weighting (EMA) is what lets
    the estimate actually fall after a change instead of being anchored by
    the long stable history.
    """

    def __init__(self, alpha: float = 0.9, beta: float = 0.5,
                 ema: float = 0.2, min_updates: int = 10):
        if not 0.0 < beta < alpha <= 1.0:
            raise ValueError(
                f"need 0 < beta < alpha <= 1; got alpha={alpha}, beta={beta}"
            )
        if not 0.0 < ema <= 1.0:
            raise ValueError(f"ema must be in (0, 1]; got {ema}")
        self.alpha = alpha  # warning ratio
        self.beta = beta    # drift ratio
        self.ema = ema
        self.min_updates = min_updates
        self.detections = 0
        self._reset()

    def _reset(self) -> None:
        self._n = 0
        self._mean_distance: float | None = None
        self._best = -math.inf
        self.warning = False

    def update(self, value: float, weight: float = 1.0) -> bool:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"error rate must be in [0, 1]; got {value}")
        if weight <= 0:
            raise ValueError(f"weight must be positive; got {weight}")
        distance = 1.0 / max(value, 1.0 / max(weight, 1.0))
        self._n += 1
        if self._mean_distance is None:
            self._mean_distance = distance
        else:
            self._mean_distance = ((1.0 - self.ema) * self._mean_distance
                                   + self.ema * distance)
        if self._n < self.min_updates:
            return False
        self._best = max(self._best, self._mean_distance)
        ratio = (self._mean_distance / self._best
                 if self._best > 0 else 1.0)
        self.warning = ratio < self.alpha
        if ratio < self.beta:
            self.detections += 1
            self._reset()
            return True
        return False


class PageHinkleyDetector:
    """Page–Hinkley CUSUM test for an upward change in the monitored value."""

    def __init__(self, delta: float = 0.005, threshold: float = 0.5,
                 min_samples: int = 10):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive; got {threshold}")
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        self.detections = 0
        self._reset()

    def _reset(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def update(self, value: float, weight: float = 1.0) -> bool:
        del weight  # PH operates on the value series directly
        self._n += 1
        self._mean += (value - self._mean) / self._n
        self._cumulative += value - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        if self._n < self.min_samples:
            return False
        if self._cumulative - self._minimum > self.threshold:
            self.detections += 1
            self._reset()
            return True
        return False
