"""A-GEM baseline: averaged gradient episodic memory (Chaudhry et al., 2019).

A-GEM "constrains the gradient update direction to avoid interference with
previous data buffered" (paper appendix).  Before each update the gradient
``g`` on the current batch is compared with the gradient ``g_ref`` on a
sample drawn from episodic memory; when they conflict (``g · g_ref < 0``),
``g`` is projected onto the half-space of non-interference:

    g' = g - (g · g_ref / g_ref · g_ref) * g_ref

so learning the new batch never increases the (first-order) loss on memory.
"""

from __future__ import annotations

import numpy as np

from .base import WrappingBaseline

__all__ = ["AGEMBaseline"]


class AGEMBaseline(WrappingBaseline):
    """Gradient-projected streaming learner with episodic memory.

    Parameters
    ----------
    model_factory:
        Factory for the wrapped model.
    memory_size:
        Episodic memory capacity (reservoir-sampled rows).
    sample_size:
        Rows drawn from memory to form the reference gradient.
    seed:
        Sampling seed.
    """

    name = "a-gem"

    def __init__(self, model_factory, memory_size: int = 4096,
                 sample_size: int = 256, seed: int = 0):
        super().__init__(model_factory)
        if memory_size < 1:
            raise ValueError(f"memory_size must be >= 1; got {memory_size}")
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1; got {sample_size}")
        self.memory_size = memory_size
        self.sample_size = sample_size
        self._rng = np.random.default_rng(seed)
        self._memory_x: np.ndarray | None = None
        self._memory_y: np.ndarray | None = None
        self._fill = 0
        self._seen = 0
        self.projections = 0

    @staticmethod
    def _flatten(grads: list[np.ndarray]) -> np.ndarray:
        return np.concatenate([grad.ravel() for grad in grads])

    @staticmethod
    def _unflatten(vector: np.ndarray, like: list[np.ndarray]) -> list[np.ndarray]:
        out = []
        offset = 0
        for grad in like:
            size = grad.size
            out.append(vector[offset:offset + size].reshape(grad.shape))
            offset += size
        return out

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=np.int64).reshape(-1)
        grads = self.inner.gradient_on(x, y)
        if self._fill >= self.sample_size:
            chosen = self._rng.choice(self._fill, size=self.sample_size,
                                      replace=False)
            ref_grads = self.inner.gradient_on(self._memory_x[chosen],
                                               self._memory_y[chosen])
            g = self._flatten(grads)
            g_ref = self._flatten(ref_grads)
            dot = float(g @ g_ref)
            if dot < 0.0:
                ref_norm_sq = float(g_ref @ g_ref)
                if ref_norm_sq > 0.0:
                    g = g - (dot / ref_norm_sq) * g_ref
                    grads = self._unflatten(g, grads)
                    self.projections += 1
        self.inner.apply_gradient(grads)
        self._remember(x, y)
        return self.inner.loss_on(x, y)

    def _remember(self, x: np.ndarray, y: np.ndarray) -> None:
        if self._memory_x is None:
            self._memory_x = np.zeros((self.memory_size, *x.shape[1:]))
            self._memory_y = np.zeros(self.memory_size, dtype=np.int64)
        for row_x, row_y in zip(x, y):
            self._seen += 1
            if self._fill < self.memory_size:
                self._memory_x[self._fill] = row_x
                self._memory_y[self._fill] = row_y
                self._fill += 1
            else:
                slot = self._rng.integers(self._seen)
                if slot < self.memory_size:
                    self._memory_x[slot] = row_x
                    self._memory_y[slot] = row_y