"""``repro.analysis`` — static verification for the streaming stack.

Three parts, all purely static (no data is ever run through a model):

- :mod:`repro.analysis.shapes` and :mod:`repro.analysis.checkpoint` —
  symbolic shape/dtype propagation through :mod:`repro.nn` module graphs
  and checkpoint-compatibility checking against a target architecture.
  The compat checker gates :meth:`repro.core.knowledge.KnowledgeStore.restore`
  and :func:`repro.core.persistence.load_learner`, turning a truncated /
  transposed / re-dtyped blob into a typed
  :class:`CheckpointIncompatibleError` (plus a
  :class:`~repro.obs.CheckpointRejected` event) instead of a deep numpy
  broadcast failure mid-stream.
- :mod:`repro.analysis.lint` / :mod:`repro.analysis.runner` — the
  ``REP001``–``REP007`` streaming-invariant lint pass behind
  ``python -m repro.cli analyze`` (see ``docs/ANALYSIS.md``).
- :mod:`repro.analysis.concurrency` — the execution-context call-graph
  pass (``REP008``–``REP011``): shared-state, fork-safety, blocking-call,
  and singleton-confinement checks across {coordinator, thread-worker,
  process-worker, server-thread}; opt-in via ``analyze --concurrency``.
"""

from .checkpoint import (
    CheckpointIncompatibleError,
    CompatProblem,
    CompatReport,
    check_state_dict,
    state_spec,
    verify_checkpoint_file,
)
from .concurrency import (
    CONCURRENCY_RULES,
    CONTEXTS,
    analyze_project,
    build_project,
    scan_paths,
)
from .lint import (
    RULE_DETAILS,
    RULES,
    Finding,
    lint_file,
    lint_paths,
    lint_source,
    render_rule_catalogue,
)
from .runner import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, run_analyze
from .shapes import (
    BATCH,
    GraphValidationError,
    LayerTrace,
    TensorSpec,
    infer_output_spec,
    infer_shapes,
    input_spec_for,
    register_shape_rule,
    validate_model,
)

__all__ = [
    "BATCH",
    "TensorSpec",
    "LayerTrace",
    "GraphValidationError",
    "register_shape_rule",
    "infer_shapes",
    "infer_output_spec",
    "input_spec_for",
    "validate_model",
    "CompatProblem",
    "CompatReport",
    "CheckpointIncompatibleError",
    "state_spec",
    "check_state_dict",
    "verify_checkpoint_file",
    "Finding",
    "RULES",
    "RULE_DETAILS",
    "render_rule_catalogue",
    "CONCURRENCY_RULES",
    "CONTEXTS",
    "build_project",
    "analyze_project",
    "scan_paths",
    "lint_source",
    "lint_file",
    "lint_paths",
    "run_analyze",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
]
