"""``repro.analysis`` — static verification for the streaming stack.

Two halves, both purely static (no data is ever run through a model):

- :mod:`repro.analysis.shapes` and :mod:`repro.analysis.checkpoint` —
  symbolic shape/dtype propagation through :mod:`repro.nn` module graphs
  and checkpoint-compatibility checking against a target architecture.
  The compat checker gates :meth:`repro.core.knowledge.KnowledgeStore.restore`
  and :func:`repro.core.persistence.load_learner`, turning a truncated /
  transposed / re-dtyped blob into a typed
  :class:`CheckpointIncompatibleError` (plus a
  :class:`~repro.obs.CheckpointRejected` event) instead of a deep numpy
  broadcast failure mid-stream.
- :mod:`repro.analysis.lint` / :mod:`repro.analysis.runner` — the
  ``REP001``–``REP006`` streaming-invariant lint pass behind
  ``python -m repro.cli analyze`` (see ``docs/ANALYSIS.md``).
"""

from .checkpoint import (
    CheckpointIncompatibleError,
    CompatProblem,
    CompatReport,
    check_state_dict,
    state_spec,
    verify_checkpoint_file,
)
from .lint import RULES, Finding, lint_file, lint_paths, lint_source
from .runner import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, run_analyze
from .shapes import (
    BATCH,
    GraphValidationError,
    LayerTrace,
    TensorSpec,
    infer_output_spec,
    infer_shapes,
    input_spec_for,
    register_shape_rule,
    validate_model,
)

__all__ = [
    "BATCH",
    "TensorSpec",
    "LayerTrace",
    "GraphValidationError",
    "register_shape_rule",
    "infer_shapes",
    "infer_output_spec",
    "input_spec_for",
    "validate_model",
    "CompatProblem",
    "CompatReport",
    "CheckpointIncompatibleError",
    "state_spec",
    "check_state_dict",
    "verify_checkpoint_file",
    "Finding",
    "RULES",
    "lint_source",
    "lint_file",
    "lint_paths",
    "run_analyze",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
]
