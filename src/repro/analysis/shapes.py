"""Symbolic shape and dtype propagation through :mod:`repro.nn` graphs.

A model architecture can be validated against an input specification
*without running any data*: the batch dimension stays symbolic (the
string ``"N"`` by default) and every layer's output spec is derived from
its input spec by a per-module-type rule.  A mismatched ``Linear`` chain,
a convolution whose output would be empty, or a channel-count conflict is
reported as a :class:`GraphValidationError` naming the offending layer —
at load/validation time, not at batch 10k.

Typical usage::

    from repro.analysis import TensorSpec, infer_shapes, validate_model

    traces = infer_shapes(module, TensorSpec(("N", 20)))
    print(traces[-1].output)          # TensorSpec(shape=('N', 5), ...)

    validate_model(streaming_model)   # input spec derived from the model

New module types register a rule with :func:`register_shape_rule`::

    @register_shape_rule(MyLayer)
    def _my_layer(module, spec):
        return TensorSpec(spec.shape[:-1] + (module.out,), spec.dtype)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import functional as F
from ..nn.modules import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)

__all__ = [
    "BATCH",
    "TensorSpec",
    "LayerTrace",
    "GraphValidationError",
    "register_shape_rule",
    "infer_shapes",
    "infer_output_spec",
    "input_spec_for",
    "validate_model",
]

#: Default symbol for the (unknown) batch dimension.
BATCH = "N"

#: Dimensions are concrete ints or symbolic strings (e.g. ``"N"``).
Dim = "int | str"


class GraphValidationError(ValueError):
    """A module graph is inconsistent with its input specification."""

    def __init__(self, message: str, layer: str = ""):
        self.layer = layer
        super().__init__(f"{layer}: {message}" if layer else message)


@dataclass(frozen=True)
class TensorSpec:
    """Shape (ints and symbols) plus dtype of one tensor."""

    shape: tuple
    dtype: str = "float64"

    def __post_init__(self):
        object.__setattr__(self, "shape", tuple(self.shape))
        for dim in self.shape:
            if isinstance(dim, str):
                continue
            if not isinstance(dim, (int, np.integer)) or dim < 1:
                raise ValueError(
                    f"dimensions must be symbols or positive ints; got {dim!r}"
                )

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def is_concrete(self) -> bool:
        """True when every dimension is a concrete integer."""
        return all(not isinstance(dim, str) for dim in self.shape)

    def __str__(self) -> str:
        dims = ", ".join(str(dim) for dim in self.shape)
        return f"({dims}) {self.dtype}"


@dataclass
class LayerTrace:
    """One layer's contribution to an inferred graph."""

    name: str                       # dotted path, e.g. "layer0" or "<root>"
    kind: str                       # module class name
    input: TensorSpec
    output: TensorSpec
    children: list = field(default_factory=list)


_SHAPE_RULES: dict = {}


def register_shape_rule(module_type):
    """Decorator registering ``rule(module, spec) -> TensorSpec``."""
    def decorator(rule):
        _SHAPE_RULES[module_type] = rule
        return rule
    return decorator


def _require_ndim(spec: TensorSpec, ndim: int, what: str) -> None:
    if spec.ndim != ndim:
        raise GraphValidationError(
            f"{what} expects a {ndim}-d input; got {spec}"
        )


def _concrete(dim, what: str):
    if isinstance(dim, str):
        raise GraphValidationError(
            f"{what} must be concrete to infer the output; got symbol {dim!r}"
        )
    return int(dim)


def _promote(spec_dtype: str, weight: np.ndarray) -> str:
    return str(np.promote_types(np.dtype(spec_dtype), weight.dtype))


@register_shape_rule(Linear)
def _linear_rule(module: Linear, spec: TensorSpec) -> TensorSpec:
    if spec.ndim < 2:
        raise GraphValidationError(
            f"Linear expects at least a (batch, features) input; got {spec}"
        )
    last = spec.shape[-1]
    if isinstance(last, str):
        raise GraphValidationError(
            f"Linear needs a concrete feature dimension; got symbol {last!r}"
        )
    if int(last) != module.in_features:
        raise GraphValidationError(
            f"Linear expects {module.in_features} input features, but the "
            f"incoming tensor has {int(last)} (input spec {spec})"
        )
    return TensorSpec(spec.shape[:-1] + (module.out_features,),
                      _promote(spec.dtype, module.weight.data))


def _pooled_size(size: int, kernel: int, stride: int, padding: int,
                 what: str) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise GraphValidationError(
            f"{what} output would be empty: input {size} with kernel "
            f"{kernel}, stride {stride}, padding {padding}"
        )
    return out


@register_shape_rule(Conv2d)
def _conv2d_rule(module: Conv2d, spec: TensorSpec) -> TensorSpec:
    _require_ndim(spec, 4, "Conv2d")
    channels = spec.shape[1]
    if isinstance(channels, str):
        raise GraphValidationError(
            f"Conv2d needs a concrete channel dimension; got symbol "
            f"{channels!r}"
        )
    if int(channels) != module.in_channels:
        raise GraphValidationError(
            f"Conv2d expects {module.in_channels} input channels, but the "
            f"incoming tensor has {int(channels)} (input spec {spec})"
        )
    kernel_h, kernel_w = module.kernel_size
    stride_h, stride_w = F._pair(module.stride)
    pad_h, pad_w = F._pair(module.padding)
    height = _concrete(spec.shape[2], "Conv2d input height")
    width = _concrete(spec.shape[3], "Conv2d input width")
    out_h = _pooled_size(height, kernel_h, stride_h, pad_h, "Conv2d height")
    out_w = _pooled_size(width, kernel_w, stride_w, pad_w, "Conv2d width")
    return TensorSpec((spec.shape[0], module.out_channels, out_h, out_w),
                      _promote(spec.dtype, module.weight.data))


@register_shape_rule(MaxPool2d)
def _max_pool2d_rule(module: MaxPool2d, spec: TensorSpec) -> TensorSpec:
    _require_ndim(spec, 4, "MaxPool2d")
    kernel_h, kernel_w = F._pair(module.kernel_size)
    stride = module.kernel_size if module.stride is None else module.stride
    stride_h, stride_w = F._pair(stride)
    height = _concrete(spec.shape[2], "MaxPool2d input height")
    width = _concrete(spec.shape[3], "MaxPool2d input width")
    out_h = _pooled_size(height, kernel_h, stride_h, 0, "MaxPool2d height")
    out_w = _pooled_size(width, kernel_w, stride_w, 0, "MaxPool2d width")
    return TensorSpec((spec.shape[0], spec.shape[1], out_h, out_w), spec.dtype)


@register_shape_rule(Flatten)
def _flatten_rule(module: Flatten, spec: TensorSpec) -> TensorSpec:
    if spec.ndim < 2:
        raise GraphValidationError(
            f"Flatten expects at least a 2-d input; got {spec}"
        )
    flat = 1
    for dim in spec.shape[1:]:
        flat *= _concrete(dim, "Flatten non-batch dimension")
    return TensorSpec((spec.shape[0], flat), spec.dtype)


def _identity_rule(module: Module, spec: TensorSpec) -> TensorSpec:
    return spec


for _activation in (ReLU, Tanh, Sigmoid, Dropout):
    _SHAPE_RULES[_activation] = _identity_rule


def _trace(module: Module, spec: TensorSpec, name: str) -> LayerTrace:
    if isinstance(module, Sequential):
        trace = LayerTrace(name=name, kind="Sequential", input=spec,
                           output=spec)
        current = spec
        for index, layer in enumerate(module):
            child = _trace(layer, current,
                           name=f"{name}.layer{index}" if name != "<root>"
                           else f"layer{index}")
            trace.children.append(child)
            current = child.output
        trace.output = current
        return trace
    rule = _SHAPE_RULES.get(type(module))
    if rule is None:
        # Fall back to the first registered base class, so subclasses of
        # known layers (e.g. a custom Linear) verify without extra wiring.
        for base, base_rule in _SHAPE_RULES.items():
            if isinstance(module, base):
                rule = base_rule
                break
    if rule is None:
        raise GraphValidationError(
            f"no shape rule registered for {type(module).__name__}; add one "
            f"with repro.analysis.register_shape_rule", layer=name,
        )
    try:
        output = rule(module, spec)
    except GraphValidationError as error:
        if error.layer:
            raise
        raise GraphValidationError(str(error), layer=name) from None
    return LayerTrace(name=name, kind=type(module).__name__, input=spec,
                      output=output)


def _flat_traces(trace: LayerTrace) -> list:
    if not trace.children:
        return [trace]
    traces = []
    for child in trace.children:
        traces.extend(_flat_traces(child))
    return traces


def infer_shapes(module: Module, input_spec: TensorSpec) -> list:
    """Propagate ``input_spec`` through ``module``; return leaf layer traces.

    Raises :class:`GraphValidationError` on any inconsistency.  The returned
    list covers each leaf layer in execution order; ``traces[-1].output`` is
    the graph's output spec.
    """
    if not isinstance(module, Module):
        raise TypeError(f"expected a repro.nn Module; got {type(module).__name__}")
    root = _trace(module, input_spec, name="<root>")
    return _flat_traces(root)


def infer_output_spec(module: Module, input_spec: TensorSpec) -> TensorSpec:
    """The output spec of ``module`` for ``input_spec`` (no data executed)."""
    return infer_shapes(module, input_spec)[-1].output


def input_spec_for(model, batch=BATCH) -> TensorSpec:
    """Derive the network input spec a :class:`StreamingModel` prepares.

    Mirrors ``NeuralStreamingModel._prepare``: tabular models flatten to
    ``(N, num_features)``; :class:`~repro.models.cnn.StreamingCNN` reshapes
    to ``(N, c, h, w)`` for images and ``(N, 1, 1, d)`` for tabular signals.
    """
    input_shape = getattr(model, "input_shape", None)
    if input_shape is not None:
        if len(input_shape) == 3:
            return TensorSpec((batch, *input_shape))
        (width,) = input_shape
        return TensorSpec((batch, 1, 1, width))
    return TensorSpec((batch, model.num_features))


def validate_model(model, batch=BATCH) -> list:
    """Statically validate a neural streaming model's architecture.

    Checks that the module graph is shape-consistent from the input spec
    the model prepares, and that it ends in ``(batch, num_classes)``.
    Returns the layer traces on success.
    """
    module = getattr(model, "module", None)
    if not isinstance(module, Module):
        raise TypeError(
            f"{type(model).__name__} carries no repro.nn module to verify"
        )
    traces = infer_shapes(module, input_spec_for(model, batch=batch))
    output = traces[-1].output
    expected = (batch, model.num_classes)
    if output.shape != expected:
        raise GraphValidationError(
            f"model output spec {output} does not match the expected "
            f"(batch, num_classes) = {expected}"
        )
    return traces
