"""AST-based streaming-invariant lint pass (the ``REPxxx`` rules).

Project-specific reproducibility and correctness hazards that generic
linters do not know about.  The authoritative catalogue lives in
:data:`RULE_DETAILS` below — one entry per rule with its summary, a longer
description, and the pass that implements it (this module for the lint
rules, :mod:`repro.analysis.concurrency` for REP008–REP011).  The
``docs/ANALYSIS.md`` table is rendered from the same registry via
:func:`render_rule_catalogue`, so prose and code cannot drift.

Suppress a finding on its line (or a module-level finding on line 1) with
``# repro: noqa[REP001]`` (several codes comma-separated) or a blanket
``# repro: noqa``.  Suppressed findings are retained with
``suppressed=True`` so tooling can audit them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "RULES",
    "RULE_DETAILS",
    "render_rule_catalogue",
    "lint_source",
    "lint_file",
    "lint_paths",
]

#: The authoritative rule registry: code -> summary (one line), detail
#: (what the rule flags and why), and the pass that implements it
#: (``"lint"`` = this module, run by default; ``"concurrency"`` =
#: :mod:`repro.analysis.concurrency`, opt-in via ``analyze --concurrency``).
RULE_DETAILS: dict[str, dict[str, str]] = {
    "REP000": {
        "pass": "lint",
        "summary": "file could not be parsed",
        "detail": "A syntax error stops every other rule for the file, so "
                  "it is reported as a finding rather than a crash.",
    },
    "REP001": {
        "pass": "lint",
        "summary": "unseeded global numpy RNG use",
        "detail": "Legacy `np.random.*` functions mutate hidden global "
                  "state and `default_rng()` without a seed is "
                  "unreproducible; thread an explicit seeded `Generator`.",
    },
    "REP002": {
        "pass": "lint",
        "summary": "in-place Tensor.data mutation outside repro.nn",
        "detail": "Writing `tensor.data` bypasses autograd bookkeeping; "
                  "only the nn substrate (optimizers, `load_state_dict`) "
                  "may do it.",
    },
    "REP003": {
        "pass": "lint",
        "summary": "float equality on distances/thresholds in shift/ or "
                   "core/",
        "detail": "Shift detection is built on float distances; exact "
                  "`==`/`!=` is a latent flake — compare against an "
                  "explicit tolerance.",
    },
    "REP004": {
        "pass": "lint",
        "summary": "broad except swallows the error",
        "detail": "In a streaming loop a swallowed crash silently becomes "
                  "thousands of wrong predictions; narrow the type or "
                  "re-raise.",
    },
    "REP005": {
        "pass": "lint",
        "summary": "event emitted around the Observability facade",
        "detail": "Calling `….sink.emit(...)` directly skips the enabled "
                  "check and the facade contract; use `obs.emit(...)`.",
    },
    "REP006": {
        "pass": "lint",
        "summary": "public module missing __all__",
        "detail": "The re-export surface of every public module is "
                  "explicit in this codebase.",
    },
    "REP007": {
        "pass": "lint",
        "summary": "per-element Python loop over window entries in core/",
        "detail": "The serving loop touches the window on every arrival; "
                  "an O(k) Python pass over `…entries` belongs in a "
                  "vectorized array operation (see docs/PERF.md).  "
                  "Inherently sequential loops carry an explanatory noqa.",
    },
    "REP008": {
        "pass": "concurrency",
        "summary": "unsynchronized shared mutable state reachable from "
                   "multiple execution contexts",
        "detail": "A module-level mutable or `self.*` attribute is written "
                  "without a lock while reachable from two or more "
                  "thread-sharing contexts (coordinator, thread-worker, "
                  "server-thread); guard the write or annotate the "
                  "happens-before that makes it safe.",
    },
    "REP009": {
        "pass": "concurrency",
        "summary": "fork-unsafety: threads, held locks, or leaked pipe "
                   "endpoints interacting with a fork",
        "detail": "Forking after starting a thread (or under a held lock) "
                  "copies locks and buffers mid-state into the child; "
                  "also flags pipe endpoints handed to a child but never "
                  "closed in the parent.",
    },
    "REP010": {
        "pass": "concurrency",
        "summary": "unbounded blocking call while holding a lock or inside "
                   "a supervised loop",
        "detail": "`recv`/`get`/`accept`/`sleep` with no timeout under a "
                  "lock (or in a supervised `while True`) can deadlock or "
                  "never observe shutdown; pass a timeout.",
    },
    "REP011": {
        "pass": "concurrency",
        "summary": "thread-local or shared singleton used across execution "
                   "contexts",
        "detail": "A `threading.local` (or thread-confined) singleton read "
                  "from a server/worker context sees different state per "
                  "thread; a shared singleton mutated outside the "
                  "coordinator races with readers.",
    },
    "REP012": {
        "pass": "lint",
        "summary": "per-batch allocation inside a replay kernel",
        "detail": "Functions marked `@replay_kernel` (repro.nn.plan) run "
                  "on every replayed batch; constructing a `Tensor` or "
                  "calling `np.zeros`/`np.empty`/`*_like` there defeats "
                  "the preallocated-arena contract — allocate at capture "
                  "time and write with `out=` instead.",
    },
}

#: Rule catalog: code -> one-line summary (docs and the runner share it).
#: Derived from :data:`RULE_DETAILS`; only the ``lint``-pass rules run by
#: default, but the mapping covers every code for reporting.
RULES = {code: info["summary"] for code, info in RULE_DETAILS.items()
         if info["pass"] == "lint"}


def render_rule_catalogue() -> str:
    """The docs/ANALYSIS.md rule table, rendered from :data:`RULE_DETAILS`.

    Regenerated (and asserted in tests) so the documentation cannot drift
    from the registry again.
    """
    lines = [
        "| Code | Pass | Flags | Why |",
        "| --- | --- | --- | --- |",
    ]
    for code in sorted(RULE_DETAILS):
        info = RULE_DETAILS[code]
        lines.append(f"| {code} | {info['pass']} | {info['summary']} "
                     f"| {info['detail']} |")
    return "\n".join(lines) + "\n"

#: numpy.random attributes that are part of the seeded, explicit-Generator
#: API; everything else on the module is legacy global state.
_SEEDED_RANDOM_API = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})

#: Method names whose call results are floating-point statistics; comparing
#: them with == / != is what REP003 flags.
_FLOAT_PRODUCERS = frozenset({
    "std", "mean", "var", "norm", "item", "weighted_mean", "distance",
})

#: Allocating numpy constructors REP012 forbids inside replay kernels.
_ARENA_ALLOCATORS = frozenset({
    "zeros", "empty", "ones", "full",
    "zeros_like", "empty_like", "ones_like", "full_like",
})

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One lint finding, possibly suppressed by a ``noqa`` annotation."""

    code: str
    message: str
    path: str
    line: int
    col: int
    suppressed: bool = False

    def describe(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}{tag}"

    def to_dict(self) -> dict:
        return {"code": self.code, "message": self.message, "path": self.path,
                "line": self.line, "col": self.col,
                "suppressed": self.suppressed}


def _suppressed_codes(line_text: str):
    """Codes suppressed on a physical line: ``None``, ``"all"``, or a set."""
    match = _NOQA.search(line_text)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return "all"
    return {code.strip().upper() for code in codes.split(",") if code.strip()}


def _is_np_random(node: ast.expr) -> bool:
    """True for the expression ``np.random`` / ``numpy.random``."""
    return (isinstance(node, ast.Attribute) and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy"))


class _Visitor(ast.NodeVisitor):
    """Single-pass collector for all per-node rules."""

    def __init__(self, path_parts: tuple, add):
        self.in_nn = "nn" in path_parts
        self.in_obs = "obs" in path_parts
        self.in_core = "core" in path_parts
        self.shift_or_core = bool({"shift", "core"} & set(path_parts))
        self.add = add

    # -- REP001 ---------------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _is_np_random(node.value) and node.attr not in _SEEDED_RANDOM_API:
            self.add("REP001",
                     f"np.random.{node.attr} uses the hidden global RNG; "
                     f"thread a seeded np.random.default_rng(seed) instead",
                     node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "default_rng"
                and _is_np_random(func.value)
                and not node.args and not node.keywords):
            self.add("REP001",
                     "np.random.default_rng() without a seed is "
                     "unreproducible; pass an explicit seed or Generator",
                     node)
        if (not self.in_obs and isinstance(func, ast.Attribute)
                and func.attr == "emit"
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "sink"):
            self.add("REP005",
                     "emit events through the Observability facade "
                     "(obs.emit(...)), not directly on its sink",
                     node)
        self.generic_visit(node)

    # -- REP002 ---------------------------------------------------------------

    @staticmethod
    def _is_data_store(target: ast.expr) -> bool:
        if isinstance(target, ast.Attribute) and target.attr == "data":
            return True
        return (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "data")

    def _check_data_mutation(self, targets, node) -> None:
        if self.in_nn:
            return
        for target in targets:
            if self._is_data_store(target):
                self.add("REP002",
                         "in-place Tensor.data mutation bypasses autograd; "
                         "only repro.nn (optimizers, load_state_dict) may "
                         "write .data",
                         node)
                return

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_data_mutation(node.targets, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_data_mutation([node.target], node)
        self.generic_visit(node)

    # -- REP003 ---------------------------------------------------------------

    @staticmethod
    def _is_float_operand(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _FLOAT_PRODUCERS)

    def visit_Compare(self, node: ast.Compare) -> None:
        if (self.shift_or_core
                and any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
                and any(self._is_float_operand(operand)
                        for operand in [node.left, *node.comparators])):
            self.add("REP003",
                     "exact float equality on a distance/statistic is a "
                     "latent flake; compare against an explicit tolerance",
                     node)
        self.generic_visit(node)

    # -- REP007 ---------------------------------------------------------------

    @staticmethod
    def _references_entries(node: ast.expr) -> str | None:
        """Name the ``…entries`` collection ``node`` iterates, if any.

        Sees through wrappers like ``enumerate(...)`` / ``reversed(...)`` /
        ``zip(...)`` because :func:`ast.walk` descends into call arguments.
        """
        for child in ast.walk(node):
            if (isinstance(child, ast.Attribute)
                    and child.attr.endswith("entries")):
                return child.attr
            if isinstance(child, ast.Name) and child.id.endswith("entries"):
                return child.id
        return None

    def visit_For(self, node: ast.For) -> None:
        collection = (self._references_entries(node.iter)
                      if self.in_core else None)
        if collection is not None:
            self.add("REP007",
                     f"per-element Python loop over {collection} runs O(k) "
                     f"interpreter work on the serving hot path; vectorize "
                     f"it (one array pass) or annotate why it must stay "
                     f"sequential",
                     node)
        self.generic_visit(node)

    # -- REP004 ---------------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = node.type is None or (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
        )
        if broad and not any(isinstance(child, ast.Raise)
                             for stmt in node.body
                             for child in ast.walk(stmt)):
            what = "bare except" if node.type is None else \
                f"except {node.type.id}"
            self.add("REP004",
                     f"{what} swallows the error; narrow the exception type "
                     f"or re-raise",
                     node)
        self.generic_visit(node)

    # -- REP012 ---------------------------------------------------------------

    @staticmethod
    def _is_replay_kernel(node: ast.FunctionDef) -> bool:
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Name) and \
                    decorator.id == "replay_kernel":
                return True
            if isinstance(decorator, ast.Attribute) and \
                    decorator.attr == "replay_kernel":
                return True
        return False

    @staticmethod
    def _allocation_name(call: ast.Call) -> str | None:
        """Name the allocator ``call`` invokes, if it is one REP012 flags."""
        func = call.func
        if isinstance(func, ast.Name) and func.id == "Tensor":
            return "Tensor(...)"
        if (isinstance(func, ast.Attribute)
                and func.attr in _ARENA_ALLOCATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")):
            return f"np.{func.attr}"
        return None

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._is_replay_kernel(node):
            for stmt in node.body:
                for child in ast.walk(stmt):
                    if not isinstance(child, ast.Call):
                        continue
                    allocator = self._allocation_name(child)
                    if allocator is not None:
                        self.add("REP012",
                                 f"{allocator} allocates on every replayed "
                                 f"batch; replay kernels must write into "
                                 f"the preallocated arena (out=) — allocate "
                                 f"at capture time",
                                 child)
        self.generic_visit(node)


def _has_public_definitions(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if not node.name.startswith("_"):
                return True
    return False


def _has_dunder_all(tree: ast.Module) -> bool:
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                return True
    return False


def lint_source(source: str, path: str | Path) -> list:
    """Lint one module's source text; returns findings (incl. suppressed)."""
    path = Path(path)
    parts = path.parts
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [Finding("REP000", f"syntax error: {error.msg}", str(path),
                        error.lineno or 1, (error.offset or 1) - 1)]
    lines = source.splitlines()
    findings: list[Finding] = []

    def add(code: str, message: str, node) -> None:
        line, col = node.lineno, node.col_offset
        line_text = lines[line - 1] if 0 < line <= len(lines) else ""
        codes = _suppressed_codes(line_text)
        suppressed = codes == "all" or (codes is not None and code in codes)
        findings.append(Finding(code, message, str(path), line, col,
                                suppressed=suppressed))

    _Visitor(parts, add).visit(tree)

    stem = path.stem
    module_is_public = not stem.startswith("_") or stem == "__init__"
    if (module_is_public and _has_public_definitions(tree)
            and not _has_dunder_all(tree)):
        # Module-level finding: anchored to (and suppressible on) line 1.
        anchor = type("_Anchor", (), {"lineno": 1, "col_offset": 0})()
        add("REP006",
            "public module defines names but no __all__; declare its "
            "export surface explicitly",
            anchor)

    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def lint_file(path: str | Path) -> list:
    """Lint one file on disk."""
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), path)


def lint_paths(paths) -> list:
    """Lint files and/or directory trees (``*.py``, hidden dirs skipped).

    Raises :class:`FileNotFoundError` for a path that does not exist.
    """
    findings: list[Finding] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for file in sorted(entry.rglob("*.py")):
                if any(part.startswith(".") for part in file.parts):
                    continue
                findings.extend(lint_file(file))
        elif entry.is_file():
            findings.extend(lint_file(entry))
        else:
            raise FileNotFoundError(f"no such file or directory: {entry}")
    return findings
