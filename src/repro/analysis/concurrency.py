"""Execution-context call graph and the concurrency lint rules (REP008-REP011).

The pass indexes the scanned tree project-wide (modules, classes, functions,
module globals, imports), builds a receiver-typed call graph, and infers which
*execution context* each function can run in by reachability from concurrency
roots:

- ``coordinator`` — the run loop, CLI entry points, and module import bodies;
- ``thread-worker`` — targets handed to ``threading.Thread``/``Timer`` or
  submitted to a ``ThreadPoolExecutor``;
- ``process-worker`` — ``multiprocessing.Process`` targets (forked worker
  entry points);
- ``server-thread`` — request-handler methods of ``BaseHTTPRequestHandler``
  subclasses (the telemetry server's handler threads).

On top of the context map, four rules (full catalogue:
``repro.analysis.lint.RULE_DETAILS`` and ``docs/ANALYSIS.md``):

- ``REP008`` — an instance attribute or module-level mutable written without
  lock protection while reachable from two or more address-space-sharing
  contexts (``process-worker`` shares nothing after fork and is excluded);
- ``REP009`` — fork-unsafety: a thread exists (or a lock is held) on a
  statement path that precedes a fork, or a pipe endpoint is handed to the
  child and never closed in the parent;
- ``REP010`` — an unbounded blocking call (``recv``/``accept``/timeout-less
  ``get``/``join``/``wait``/``result``) or ``sleep`` while a lock is held, or
  an unbounded blocking call inside a ``while True`` loop running in a
  supervised context;
- ``REP011`` — a ``threading.local``-based (or thread-confined) singleton
  touched from the server thread, or a shared module-level singleton mutated
  from a non-coordinator context.

Findings reuse :class:`repro.analysis.lint.Finding` and the
``# repro: noqa[REPxxx]`` suppression machinery, so ``run_analyze`` /
``python -m repro analyze --concurrency`` report them alongside the
single-file rules with the same exit codes.

Known limits (documented, deliberate): resolution is static and name/type
driven — callables stored in untyped containers, ``getattr`` dispatch, and
closures invoked through untyped attributes (e.g. ``self.health_source``) are
not followed; lock protection is lexical (``with <lock>:`` in the same
function), so cross-function lock discipline needs a ``noqa`` with its
invariant spelled out.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .lint import RULE_DETAILS, Finding, _suppressed_codes

__all__ = [
    "CONCURRENCY_RULES",
    "CONTEXTS",
    "COORDINATOR",
    "THREAD_WORKER",
    "PROCESS_WORKER",
    "SERVER_THREAD",
    "Project",
    "build_project",
    "analyze_project",
    "scan_paths",
]

#: Rule catalogue for this pass: code -> one-line summary, carved out of
#: the project-wide registry in :mod:`repro.analysis.lint` (single source;
#: see ``RULE_DETAILS``).
CONCURRENCY_RULES = {
    code: info["summary"] for code, info in RULE_DETAILS.items()
    if info["pass"] == "concurrency"
}

COORDINATOR = "coordinator"
THREAD_WORKER = "thread-worker"
PROCESS_WORKER = "process-worker"
SERVER_THREAD = "server-thread"
CONTEXTS = (COORDINATOR, THREAD_WORKER, PROCESS_WORKER, SERVER_THREAD)

#: Contexts that share one address space; a forked process-worker gets a
#: copy-on-write snapshot and shares nothing afterwards.
THREAD_SHARING = frozenset({COORDINATOR, THREAD_WORKER, SERVER_THREAD})

#: Sentinel type for values produced by non-project (stdlib/third-party)
#: constructors; blocks name-fallback resolution on their attributes.
EXTERNAL = "<external>"

#: An untyped ``x.m()`` call falls back to same-named project functions only
#: when at most this many definitions share the name; otherwise the edge is
#: dropped as too ambiguous ("weak").
AMBIGUITY_LIMIT = 3

_THREAD_CTORS = frozenset({"Thread", "Timer", "ThreadPoolExecutor"})
_FORK_CTORS = frozenset({"Process", "ProcessPoolExecutor"})
_LOCK_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                         "BoundedSemaphore"})
_MUTABLE_CTORS = frozenset({"list", "dict", "set", "deque", "defaultdict",
                            "OrderedDict", "Counter"})
#: Constructors whose results are opaque external objects (their attribute
#: calls must not resolve to project functions by name).
_EXTERNAL_CTORS = (_THREAD_CTORS | _FORK_CTORS
                   | frozenset({"Pipe", "Queue", "SimpleQueue", "Event",
                                "get_context", "RawArray", "RawValue",
                                "ThreadingHTTPServer", "HTTPServer",
                                "local", "partial"}))
_BLOCKING_ALWAYS = frozenset({"recv", "recv_bytes", "accept"})
_BLOCKING_TIMEOUT = frozenset({"get", "join", "wait", "result"})
#: Container methods that mutate their receiver in place.
_MUTATORS = frozenset({"append", "appendleft", "extend", "extendleft", "add",
                       "update", "insert", "remove", "discard", "pop",
                       "popleft", "popitem", "clear", "setdefault", "sort",
                       "reverse"})
_INIT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})
#: Method names shared with builtin containers/files/primitives: an untyped
#: ``x.append()`` is far more likely a list than a project method, so these
#: never resolve through the name-fallback pool.
_NO_FALLBACK = _MUTATORS | _BLOCKING_TIMEOUT | _BLOCKING_ALWAYS | frozenset({
    "items", "keys", "values", "copy", "count", "index", "join", "split",
    "strip", "format", "encode", "decode", "close", "open", "read", "write",
    "flush", "send", "put", "start", "run", "submit", "acquire", "release",
    "notify", "notify_all", "poll", "terminate", "kill", "is_alive",
    "cancel", "shutdown", "sleep",
})
#: Attribute names too generic for the unique-owner fallback (numpy arrays,
#: dicts, and stdlib objects expose them on untyped receivers constantly).
_NO_ATTR_FALLBACK = frozenset({
    "size", "shape", "ndim", "dtype", "data", "T", "flat", "real", "imag",
    "itemsize", "nbytes", "name", "value", "values", "items", "keys",
    "args", "kwargs",
})
_HANDLER_METHODS = frozenset({"handle", "handle_one_request", "setup",
                              "finish", "log_message"})


def _terminal_name(node) -> str | None:
    """Rightmost identifier of a Name/Attribute chain (``a.b.C`` -> ``C``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _root_name(node) -> str | None:
    """Leftmost identifier of a Name/Attribute chain (``a.b.C`` -> ``a``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@dataclass
class FunctionInfo:
    """One function/method (or a module body pseudo-function)."""

    fid: int
    name: str
    qualname: str
    module: str
    path: str
    node: object
    lineno: int
    cls: "ClassInfo | None" = None
    parent: "FunctionInfo | None" = None
    is_static: bool = False
    is_property: bool = False
    is_module_body: bool = False
    nested: dict = field(default_factory=dict)      # name -> FunctionInfo
    imports: dict = field(default_factory=dict)     # function-level imports
    params: set = field(default_factory=set)
    param_types: dict = field(default_factory=dict)  # name -> set[str]
    return_types: set = field(default_factory=set)   # class keys / EXTERNAL
    local_types: dict = field(default_factory=dict)  # name -> set[str]
    local_names: set = field(default_factory=set)    # all locally bound names
    global_decls: set = field(default_factory=set)   # names in `global` stmts
    # -- populated by the scan/fixpoint phases --
    edges: set = field(default_factory=set)          # strong callee fids
    contexts: set = field(default_factory=set)
    may_thread: bool = False
    may_fork: bool = False
    thread_events: list = field(default_factory=list)  # (path, lineno, what)
    fork_events: list = field(default_factory=list)    # (path, lineno, what,
    #                                                     under_lock)
    blocking: list = field(default_factory=list)
    attr_accesses: list = field(default_factory=list)
    global_accesses: list = field(default_factory=list)
    pipe_leaks: list = field(default_factory=list)     # (lineno, name)
    call_sites: list = field(default_factory=list)     # (path, lineno,
    #                                                     frozenset[fid])

    def __hash__(self):
        return self.fid

    def __repr__(self):  # pragma: no cover - debug aid
        return f"<fn {self.module}:{self.qualname}>"


@dataclass
class ClassInfo:
    """One class definition."""

    key: str              # f"{module}.{qualname}"
    name: str
    qualname: str
    module: str
    node: object
    bases: tuple          # terminal base names
    methods: dict = field(default_factory=dict)   # name -> FunctionInfo
    attrs: set = field(default_factory=set)       # data attrs (self.X writes
    #                                               + annotated class fields)
    attr_ann: dict = field(default_factory=dict)  # attr -> annotation node
    lock_attrs: set = field(default_factory=set)  # attrs holding Lock/RLock
    local_attrs: set = field(default_factory=set)  # attrs holding
    #                                                threading.local()
    ancestors: set = field(default_factory=set)   # class keys
    descendants: set = field(default_factory=set)

    def __hash__(self):
        return hash(self.key)


@dataclass
class GlobalInfo:
    """One module-level binding of interest."""

    module: str
    name: str
    kind: str             # mutable | lock | thread_local | thread_confined |
    #                       shared_instance | other
    path: str
    lineno: int
    cls: "ClassInfo | None" = None


@dataclass
class ModuleInfo:
    id: str
    path: str
    is_package: bool
    tree: object
    lines: list
    body_fn: "FunctionInfo | None" = None
    functions: dict = field(default_factory=dict)   # module-level defs
    classes: dict = field(default_factory=dict)     # name -> ClassInfo
    imports: dict = field(default_factory=dict)     # alias -> (module_id|None,
    #                                                 name|None)
    raw_globals: dict = field(default_factory=dict)  # name -> (value node,
    #                                                  lineno)


@dataclass
class Project:
    """Everything the scan and rule phases need, fully indexed."""

    modules: dict = field(default_factory=dict)       # id -> ModuleInfo
    functions: list = field(default_factory=list)     # fid-indexed
    classes: dict = field(default_factory=dict)       # key -> ClassInfo
    classes_by_name: dict = field(default_factory=dict)
    funcs_by_name: dict = field(default_factory=dict)  # fallback pool
    globals: dict = field(default_factory=dict)       # (module, name) -> Info
    attr_types: dict = field(default_factory=dict)    # attr -> set[class key]
    attr_external: set = field(default_factory=set)   # attrs holding external
    attr_owners: dict = field(default_factory=dict)   # attr -> set[class key]
    sources: dict = field(default_factory=dict)       # path -> lines

    def function(self, qualname: str, module: str | None = None):
        """Look up a function by dotted qualname (test/debug convenience)."""
        hits = [fn for fn in self.functions
                if fn.qualname == qualname
                and (module is None or fn.module.endswith(module))]
        if len(hits) != 1:
            raise KeyError(f"{qualname!r}: {len(hits)} matches")
        return hits[0]


def _module_id(path: Path) -> tuple[str, bool]:
    """Dotted module id rooted at the outermost package, plus is_package."""
    path = path.resolve()
    is_package = path.name == "__init__.py"
    parts = [path.stem] if not is_package else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:
        parts = [path.stem]
    return ".".join(parts), is_package


def _iter_files(paths):
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for file in sorted(entry.rglob("*.py")):
                if any(part.startswith(".") for part in file.parts):
                    continue
                yield file
        elif entry.is_file():
            yield entry
        else:
            raise FileNotFoundError(f"no such file or directory: {entry}")


class _Indexer:
    """Phase A: walk every module, register defs/classes/globals/imports."""

    def __init__(self, project: Project):
        self.project = project
        self._next_fid = 0

    # -- registration helpers -------------------------------------------------

    def _new_function(self, name, qualname, mod, node, cls=None, parent=None,
                      is_module_body=False):
        fn = FunctionInfo(
            fid=self._next_fid, name=name, qualname=qualname, module=mod.id,
            path=mod.path, node=node,
            lineno=getattr(node, "lineno", 1), cls=cls, parent=parent,
            is_module_body=is_module_body,
        )
        self._next_fid += 1
        self.project.functions.append(fn)
        return fn

    def index_module(self, mod: ModuleInfo):
        body_node = type("_Body", (), {"lineno": 1, "col_offset": 0,
                                       "body": mod.tree.body})()
        mod.body_fn = self._new_function(
            f"<module {mod.id}>", "<module>", mod, body_node,
            is_module_body=True)
        for stmt in mod.tree.body:
            self._index_stmt(stmt, mod, cls=None, parent=None, prefix="")
        # Module-level globals: record raw value nodes for Phase A2.
        for stmt in mod.tree.body:
            targets = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name):
                    mod.raw_globals.setdefault(
                        target.id, (value, stmt.lineno))

    def _index_stmt(self, stmt, mod, cls, parent, prefix):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._index_function(stmt, mod, cls, parent, prefix)
        elif isinstance(stmt, ast.ClassDef):
            self._index_class(stmt, mod, prefix, parent=parent)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)) and parent is None:
            self._index_import(stmt, mod)
        elif isinstance(stmt, (ast.If, ast.Try, ast.With)) and parent is None \
                and cls is None:
            # Defs under module-level guards (TYPE_CHECKING, try/except).
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._index_stmt(child, mod, cls, parent, prefix)

    def _index_function(self, node, mod, cls, parent, prefix):
        qualname = f"{prefix}{node.name}"
        fn = self._new_function(node.name, qualname, mod, node,
                                cls=cls, parent=parent)
        decorators = {_terminal_name(d.func) if isinstance(d, ast.Call)
                      else _terminal_name(d) for d in node.decorator_list}
        fn.is_static = "staticmethod" in decorators
        fn.is_property = bool({"property", "cached_property", "setter",
                               "getter"} & decorators)
        if cls is not None:
            cls.methods.setdefault(node.name, fn)
        elif parent is None:
            mod.functions.setdefault(node.name, fn)
        if parent is not None and cls is None:
            parent.nested[node.name] = fn
        # Fallback pool: module-level functions and methods only; nested
        # defs and properties resolve through scope/typing instead.
        if parent is None and not fn.is_property:
            self.project.funcs_by_name.setdefault(node.name, []).append(fn)
        for inner in node.body:
            self._index_stmt(inner, mod, cls=None, parent=fn,
                             prefix=f"{qualname}.<locals>.")

    def _index_class(self, node, mod, prefix, parent=None):
        qualname = f"{prefix}{node.name}"
        key = f"{mod.id}.{qualname}"
        cls = ClassInfo(
            key=key, name=node.name, qualname=qualname, module=mod.id,
            node=node,
            bases=tuple(filter(None, (_terminal_name(b)
                                      for b in node.bases))),
        )
        self.project.classes[key] = cls
        self.project.classes_by_name.setdefault(node.name, []).append(cls)
        mod.classes.setdefault(node.name, cls)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # `parent` threads the lexical closure chain through classes
                # defined inside functions (e.g. a request Handler declared
                # in TelemetryServer.start).
                self._index_function(stmt, mod, cls, parent,
                                     prefix=f"{qualname}.")
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                cls.attrs.add(stmt.target.id)
                cls.attr_ann[stmt.target.id] = stmt.annotation
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(stmt, mod, prefix=f"{qualname}.",
                                  parent=parent)

    def _index_import(self, stmt, mod):
        _bind_imports(self.project, stmt, mod, mod.imports)


def _match_module(project, dotted: str) -> str | None:
    """Match an absolute module path against indexed ids (tail match)."""
    if not dotted:
        return None
    if dotted in project.modules:
        return dotted
    for mid in project.modules:
        if mid.endswith("." + dotted) or dotted.endswith("." + mid):
            return mid
    return None


def _resolve_from_base(project, stmt: ast.ImportFrom, mod) -> str | None:
    if stmt.level == 0:
        return _match_module(project, stmt.module or "")
    parts = mod.id.split(".")
    if not mod.is_package:
        parts = parts[:-1]
    up = stmt.level - 1
    if up:
        parts = parts[:-up] if up <= len(parts) else []
    if stmt.module:
        parts = parts + stmt.module.split(".")
    return _match_module(project, ".".join(parts))


def _bind_imports(project, stmt, mod, table):
    """Record an import statement's bindings into ``table`` (module or fn)."""
    if isinstance(stmt, ast.Import):
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".")[0]
            table[bound] = (_match_module(project, alias.name), None)
        return
    base = _resolve_from_base(project, stmt, mod)
    for alias in stmt.names:
        if alias.name == "*":
            continue
        bound = alias.asname or alias.name
        if base is None:
            table[bound] = (None, None)
            continue
        sub = _match_module(project, f"{base}.{alias.name}")
        if sub is not None:
            table[bound] = (sub, None)
        else:
            table[bound] = (base, alias.name)


# ---------------------------------------------------------------------------
# Phase A2: cross-module aggregation (hierarchy, typing, globals)
# ---------------------------------------------------------------------------

def _resolve_name(project, module_id, name, _seen=None):
    """Resolve ``name`` in a module's top-level scope, chasing re-exports.

    Returns ``("func", fn)`` | ``("class", cls)`` | ``("module", id)`` |
    ``("global", (module, name))`` | ``("external", None)`` | ``None``.
    """
    mod = project.modules.get(module_id)
    if mod is None:
        return ("external", None)
    if name in mod.functions:
        return ("func", mod.functions[name])
    if name in mod.classes:
        return ("class", mod.classes[name])
    if name in mod.imports:
        key = (module_id, name)
        if _seen is None:
            _seen = set()
        if key in _seen:
            return None
        _seen.add(key)
        target, orig = mod.imports[name]
        if target is None:
            return ("external", None)
        if orig is None:
            return ("module", target)
        return _resolve_name(project, target, orig, _seen)
    if name in mod.raw_globals:
        return ("global", (module_id, name))
    return None


def _resolve_in_fn(project, fn, name):
    """Like :func:`_resolve_name`, but honours function-level imports."""
    walker = fn
    while walker is not None:
        if name in walker.imports:
            target, orig = walker.imports[name]
            if target is None:
                return ("external", None)
            if orig is None:
                return ("module", target)
            return _resolve_name(project, target, orig)
        walker = walker.parent
    return _resolve_name(project, fn.module, name)


def _iter_scope(node):
    """Yield AST nodes in one function's own scope (nested defs pruned)."""
    stack = list(getattr(node, "body", []) or [node])
    while stack:
        n = stack.pop()
        yield n
        for child in ast.iter_child_nodes(n):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            stack.append(child)


def _link_hierarchy(project):
    direct = {}
    for cls in project.classes.values():
        parents = set()
        for base in cls.bases:
            for cand in project.classes_by_name.get(base, []):
                if cand.key != cls.key:
                    parents.add(cand.key)
        direct[cls.key] = parents
    for cls in project.classes.values():
        seen, stack = set(), list(direct[cls.key])
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(direct.get(key, ()))
        cls.ancestors = seen
    for cls in project.classes.values():
        for anc in cls.ancestors:
            project.classes[anc].descendants.add(cls.key)


def _class_chain(project, cls):
    """The class itself plus its (project-visible) ancestors."""
    return [cls] + [project.classes[k] for k in cls.ancestors]


def _types_from_annotation(project, mod, ann, depth=0):
    """Project class keys named by an annotation (``X | None`` unions)."""
    if ann is None or depth > 6:
        return set()
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return set()
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return (_types_from_annotation(project, mod, ann.left, depth + 1)
                | _types_from_annotation(project, mod, ann.right, depth + 1))
    if isinstance(ann, ast.Subscript):
        if _terminal_name(ann.value) == "Optional":
            return _types_from_annotation(project, mod, ann.slice, depth + 1)
        return set()
    name = _terminal_name(ann)
    if name in (None, "None"):
        return set()
    if isinstance(ann, ast.Name):
        resolved = _resolve_name(project, mod.id, name)
        if resolved is not None:
            if resolved[0] == "class":
                return {resolved[1].key}
            if resolved[0] == "external":
                return {EXTERNAL}
    classes = project.classes_by_name.get(name, [])
    return {cls.key for cls in classes}


def _parse_signatures(project):
    for fn in project.functions:
        if fn.is_module_body:
            continue
        node = fn.node
        mod = project.modules[fn.module]
        args = node.args
        every = (list(getattr(args, "posonlyargs", [])) + list(args.args)
                 + list(args.kwonlyargs))
        if args.vararg:
            every.append(args.vararg)
        if args.kwarg:
            every.append(args.kwarg)
        for arg in every:
            fn.params.add(arg.arg)
            types = _types_from_annotation(project, mod, arg.annotation)
            if types:
                fn.param_types[arg.arg] = types
        returned = _types_from_annotation(project, mod, node.returns)
        if returned:
            fn.return_types = returned - {EXTERNAL}


def _local_types_of(fn, name):
    """Types of ``name`` looked up through the lexical closure chain.

    Returns ``None`` when the name is not bound anywhere in the chain
    (so module scope applies), an empty set when bound but untyped.
    """
    walker = fn
    while walker is not None:
        types = walker.local_types.get(name) or walker.param_types.get(name)
        if types:
            return set(types)
        if name in walker.local_names or name in walker.params:
            return set()
        walker = walker.parent
    return None


def _type_of_expr(project, fn, expr, depth=0):
    """Best-effort static types of ``expr``: project class keys / EXTERNAL."""
    if expr is None or depth > 6:
        return set()
    if isinstance(expr, ast.Name):
        if expr.id == "self" and fn.cls is not None and not fn.is_static:
            return {fn.cls.key}
        found = _local_types_of(fn, expr.id)
        if found is not None:
            return found
        resolved = _resolve_in_fn(project, fn, expr.id)
        if resolved is not None:
            if resolved[0] == "external":
                return {EXTERNAL}
            if resolved[0] == "global":
                info = project.globals.get(resolved[1])
                if info is not None and info.cls is not None:
                    return {info.cls.key}
        return set()
    if isinstance(expr, ast.IfExp):
        return (_type_of_expr(project, fn, expr.body, depth + 1)
                | _type_of_expr(project, fn, expr.orelse, depth + 1))
    if isinstance(expr, ast.BoolOp):
        out = set()
        for value in expr.values:
            out |= _type_of_expr(project, fn, value, depth + 1)
        return out
    if isinstance(expr, ast.Await):
        return _type_of_expr(project, fn, expr.value, depth + 1)
    if isinstance(expr, ast.Attribute):
        if expr.attr in project.attr_external:
            return {EXTERNAL}
        return set(project.attr_types.get(expr.attr, ()))
    if isinstance(expr, ast.Call):
        fname = _terminal_name(expr.func)
        if fname == "__new__" and isinstance(expr.func, ast.Attribute) \
                and isinstance(expr.func.value, ast.Name):
            resolved = _resolve_in_fn(project, fn, expr.func.value.id)
            if resolved is not None and resolved[0] == "class":
                return {resolved[1].key}
        if fname in _EXTERNAL_CTORS and fname != "partial":
            return {EXTERNAL}
        if isinstance(expr.func, ast.Name):
            resolved = _resolve_in_fn(project, fn, expr.func.id)
            if resolved is not None:
                if resolved[0] == "class":
                    return {resolved[1].key}
                if resolved[0] == "func":
                    return set(resolved[1].return_types)
                if resolved[0] == "external":
                    return {EXTERNAL}
        root = _root_name(expr.func)
        if root is not None and isinstance(expr.func, ast.Attribute):
            resolved = _resolve_in_fn(project, fn, root)
            if (resolved is not None and resolved[0] == "external"
                    and _local_types_of(fn, root) is None):
                return {EXTERNAL}
        return set()
    return set()


def _prepass_locals(project, fn):
    """Bound-name inventory and flow-insensitive local typing for one scope."""
    node = fn.node
    for n in _iter_scope(node):
        if isinstance(n, ast.Global):
            fn.global_decls.update(n.names)
        elif isinstance(n, ast.Name) and isinstance(n.ctx,
                                                    (ast.Store, ast.Del)):
            fn.local_names.add(n.id)
        elif isinstance(n, ast.ExceptHandler) and n.name:
            fn.local_names.add(n.name)
        elif isinstance(n, (ast.Import, ast.ImportFrom)) \
                and not fn.is_module_body:
            _bind_imports(project, n, project.modules[fn.module], fn.imports)
    fn.local_names -= fn.global_decls
    for _ in range(2):  # two rounds settle simple x = f(); y = x chains
        for n in _iter_scope(node):
            if isinstance(n, ast.Assign):
                types = _type_of_expr(project, fn, n.value)
                for target in n.targets:
                    if isinstance(target, ast.Name) and types:
                        fn.local_types.setdefault(target.id,
                                                  set()).update(types)
                    elif isinstance(target, (ast.Tuple, ast.List)) \
                            and types == {EXTERNAL}:
                        # e.g. ``parent, child = ctx.Pipe()``
                        for elt in target.elts:
                            if isinstance(elt, ast.Name):
                                fn.local_types.setdefault(
                                    elt.id, set()).add(EXTERNAL)
            elif isinstance(n, ast.AnnAssign) \
                    and isinstance(n.target, ast.Name):
                types = _types_from_annotation(
                    project, project.modules[fn.module], n.annotation)
                if types:
                    fn.local_types.setdefault(n.target.id,
                                              set()).update(types)
            elif isinstance(n, (ast.With, ast.AsyncWith)):
                for item in n.items:
                    if isinstance(item.optional_vars, ast.Name):
                        types = _type_of_expr(project, fn, item.context_expr)
                        if types:
                            fn.local_types.setdefault(
                                item.optional_vars.id, set()).update(types)


def _collect_class_attrs(project):
    """Data attrs, lock/thread-local fields, and the global attr-type map."""
    for cls in project.classes.values():
        mod = project.modules[cls.module]
        for attr, ann in cls.attr_ann.items():
            types = _types_from_annotation(project, mod, ann)
            if types - {EXTERNAL}:
                project.attr_types.setdefault(attr, set()).update(
                    types - {EXTERNAL})
        for method in cls.methods.values():
            for n in _iter_scope(method.node):
                targets, value, ann = [], None, None
                if isinstance(n, ast.Assign):
                    targets, value = n.targets, n.value
                elif isinstance(n, ast.AnnAssign):
                    targets, value, ann = [n.target], n.value, n.annotation
                elif isinstance(n, ast.AugAssign):
                    targets = [n.target]
                for target in targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    attr = target.attr
                    cls.attrs.add(attr)
                    ctor = (_terminal_name(value.func)
                            if isinstance(value, ast.Call) else None)
                    if ctor in _LOCK_CTORS:
                        cls.lock_attrs.add(attr)
                    if ctor == "local":
                        cls.local_attrs.add(attr)
                    types = _type_of_expr(project, method, value)
                    types |= _types_from_annotation(project, mod, ann)
                    if EXTERNAL in types:
                        project.attr_external.add(attr)
                    if types - {EXTERNAL}:
                        project.attr_types.setdefault(attr, set()).update(
                            types - {EXTERNAL})
    # Inherit lock/thread-local fields down the hierarchy.
    for cls in project.classes.values():
        for anc in cls.ancestors:
            cls.lock_attrs |= project.classes[anc].lock_attrs
            cls.local_attrs |= project.classes[anc].local_attrs


def _classify_globals(project):
    """First pass: kind for every module-level binding (cls-aware later)."""
    for mod in project.modules.values():
        for name, (value, lineno) in mod.raw_globals.items():
            kind, cls = "other", None
            if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                  ast.DictComp, ast.SetComp)):
                kind = "mutable"
            elif isinstance(value, ast.Call):
                ctor = _terminal_name(value.func)
                if ctor in _LOCK_CTORS:
                    kind = "lock"
                elif ctor == "local":
                    kind = "thread_local"
                elif ctor in _MUTABLE_CTORS:
                    kind = "mutable"
                else:
                    resolved = (_resolve_name(project, mod.id, value.func.id)
                                if isinstance(value.func, ast.Name) else None)
                    if resolved is not None and resolved[0] == "class":
                        kind, cls = "shared_instance", resolved[1]
                    elif resolved is not None and resolved[0] == "func":
                        rts = [k for k in resolved[1].return_types
                               if k in project.classes]
                        if len(rts) == 1:
                            kind, cls = "shared_instance", \
                                project.classes[rts[0]]
                    elif ctor is not None and \
                            len(project.classes_by_name.get(ctor, [])) == 1:
                        kind = "shared_instance"
                        cls = project.classes_by_name[ctor][0]
            project.globals[(mod.id, name)] = GlobalInfo(
                module=mod.id, name=name, kind=kind, path=mod.path,
                lineno=lineno, cls=cls)


def _refine_globals(project):
    """Second pass: instances of classes with threading.local fields are
    thread-confined, not cross-thread-shared."""
    for info in project.globals.values():
        if info.kind == "shared_instance" and info.cls is not None:
            chain = _class_chain(project, info.cls)
            if any(cls.local_attrs for cls in chain):
                info.kind = "thread_confined"


def build_project(paths) -> Project:
    """Phase A + A2: parse and fully index every ``*.py`` under ``paths``."""
    project = Project()
    for file in _iter_files(paths):
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError:
            continue  # the single-file lint pass reports REP000 for these
        mid, is_pkg = _module_id(file)
        if mid in project.modules:
            mid = f"{mid}#{len(project.modules)}"
        mod = ModuleInfo(id=mid, path=str(file), is_package=is_pkg,
                         tree=tree, lines=source.splitlines())
        project.modules[mid] = mod
        project.sources[str(file)] = mod.lines
    indexer = _Indexer(project)
    for mod in project.modules.values():
        indexer.index_module(mod)
    _link_hierarchy(project)
    _parse_signatures(project)
    _classify_globals(project)
    for fn in project.functions:
        _prepass_locals(project, fn)
    _collect_class_attrs(project)
    _refine_globals(project)
    for cls in project.classes.values():
        for attr in cls.attrs:
            project.attr_owners.setdefault(attr, set()).add(cls.key)
    return project


# ---------------------------------------------------------------------------
# Phase B: per-function scan (edges, roots, events, accesses)
# ---------------------------------------------------------------------------

def _strictly_precedes(a, b):
    """True when statement path ``a`` executes strictly before path ``b``.

    Paths are tuples of ``(index, field)`` components; two paths that diverge
    into different fields of the same statement (an ``if`` body versus its
    ``else``) are unordered — only same-suite index order counts.
    """
    for pa, pb in zip(a, b):
        if pa == pb:
            continue
        if pa[1] == pb[1]:
            return pa[0] < pb[0]
        return False
    return False


def _seed_server_roots(project, roots):
    """Request-handler methods run on the HTTP server's handler threads."""
    for cls in project.classes.values():
        basenames = set(cls.bases)
        for anc in cls.ancestors:
            basenames.update(project.classes[anc].bases)
        if not any(base.endswith("RequestHandler") for base in basenames):
            continue
        for name, method in cls.methods.items():
            if name.startswith("do_") or name in _HANDLER_METHODS:
                roots.setdefault(method.fid, set()).add(SERVER_THREAD)


class _Scanner:
    """Scan one function body: call edges, concurrency events, accesses."""

    def __init__(self, project, fn, roots):
        self.project = project
        self.fn = fn
        self.roots = roots
        self._rooted = set()      # id() of arg exprs consumed as thread roots
        self._call_funcs = set()  # id() of Attribute nodes that are call
        #                           targets (method calls, not data access)
        self._pipe_names = set()  # locals unpacked from a Pipe() pair
        self._pipe_passed = {}    # endpoint name -> Process ctor lineno
        self._closed = set()      # receivers of a .close() call

    def scan(self):
        self._block(getattr(self.fn.node, "body", []), (), "body", 0, 0)
        for name, lineno in self._pipe_passed.items():
            if name in self._pipe_names and name not in self._closed:
                self.fn.pipe_leaks.append((lineno, name))

    # -- statement walk -------------------------------------------------------

    def _block(self, stmts, base, fieldname, lock, wt):
        for idx, stmt in enumerate(stmts):
            self._stmt(stmt, base + ((idx, fieldname),), lock, wt)

    def _stmt(self, stmt, path, lock, wt):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # indexed and scanned as their own scopes
        if isinstance(stmt, ast.If):
            self._exprs(stmt.test, path, lock, wt)
            self._block(stmt.body, path, "body", lock, wt)
            self._block(stmt.orelse, path, "orelse", lock, wt)
        elif isinstance(stmt, ast.While):
            forever = (isinstance(stmt.test, ast.Constant)
                       and stmt.test.value is True)
            self._exprs(stmt.test, path, lock, wt)
            self._block(stmt.body, path, "body", lock, wt + int(forever))
            self._block(stmt.orelse, path, "orelse", lock, wt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._exprs(stmt.iter, path, lock, wt)
            self._exprs(stmt.target, path, lock, wt)
            self._block(stmt.body, path, "body", lock, wt)
            self._block(stmt.orelse, path, "orelse", lock, wt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner_lock = lock
            for item in stmt.items:
                self._exprs(item.context_expr, path, lock, wt)
                if item.optional_vars is not None:
                    self._exprs(item.optional_vars, path, lock, wt)
                if self._is_lock_expr(item.context_expr):
                    inner_lock += 1
            self._block(stmt.body, path, "body", inner_lock, wt)
        elif isinstance(stmt, ast.Try) or (
                hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)):
            self._block(stmt.body, path, "body", lock, wt)
            for idx, handler in enumerate(stmt.handlers):
                self._block(handler.body, path, f"handler{idx}", lock, wt)
            self._block(stmt.orelse, path, "orelse", lock, wt)
            self._block(stmt.finalbody, path, "finalbody", lock, wt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._ref_edges(stmt.value)
                self._exprs(stmt.value, path, lock, wt)
        elif isinstance(stmt, ast.Assign):
            self._maybe_pipe_unpack(stmt)
            for target in stmt.targets:
                self._exprs(target, path, lock, wt)
            self._ref_edges(stmt.value)
            self._exprs(stmt.value, path, lock, wt)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            self._exprs(stmt.target, path, lock, wt)
            if stmt.value is not None:
                self._ref_edges(stmt.value)
                self._exprs(stmt.value, path, lock, wt)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._exprs(child, path, lock, wt)

    def _maybe_pipe_unpack(self, stmt):
        if (isinstance(stmt.value, ast.Call)
                and _terminal_name(stmt.value.func) == "Pipe"):
            for target in stmt.targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            self._pipe_names.add(elt.id)

    def _is_lock_expr(self, expr):
        node = expr.func if isinstance(expr, ast.Call) else expr
        name = _terminal_name(node)
        if name and ("lock" in name.lower() or "mutex" in name.lower()):
            return True
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self" and self.fn.cls is not None
                and node.attr in self.fn.cls.lock_attrs):
            return True
        if isinstance(node, ast.Name):
            resolved = _resolve_in_fn(self.project, self.fn, node.id)
            if resolved is not None and resolved[0] == "global":
                info = self.project.globals.get(resolved[1])
                if info is not None and info.kind == "lock":
                    return True
        return False

    # -- expression walk ------------------------------------------------------

    def _exprs(self, node, path, lock, wt):
        stack = [node]
        while stack:
            n = stack.pop()
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
                continue
            if isinstance(n, ast.Lambda):
                stack.append(n.body)  # inline the body, skip the args
                continue
            if isinstance(n, ast.Call):
                if isinstance(n.func, ast.Attribute):
                    self._call_funcs.add(id(n.func))
                self._call(n, path, lock, wt)
            elif isinstance(n, ast.Attribute):
                self._attribute(n, path, lock,
                                isinstance(n.ctx, (ast.Store, ast.Del)))
            elif isinstance(n, ast.Name):
                self._name(n, path, lock,
                           isinstance(n.ctx, (ast.Store, ast.Del)))
            elif (isinstance(n, ast.Subscript)
                  and isinstance(n.ctx, (ast.Store, ast.Del))):
                self._store_through(n.value, path, lock)
            stack.extend(ast.iter_child_nodes(n))

    def _record_attr(self, node, path, lock, is_write):
        attr = node.attr
        recv = _type_of_expr(self.project, self.fn, node.value)
        owners = set()
        if recv - {EXTERNAL}:
            for key in recv - {EXTERNAL}:
                cls = self.project.classes.get(key)
                if cls is None:
                    continue
                hit = False
                for cand in _class_chain(self.project, cls):
                    if attr in cand.attrs:
                        owners.add(cand.key)
                        hit = True
                        break
                if not hit:
                    for desc_key in cls.descendants:
                        desc = self.project.classes[desc_key]
                        if attr in desc.attrs:
                            owners.add(desc.key)
        elif EXTERNAL in recv:
            return
        else:
            if attr in _NO_ATTR_FALLBACK or id(node) in self._call_funcs:
                return
            own = self.project.attr_owners.get(attr, ())
            if len(own) == 1:
                owners = set(own)
        if not owners:
            return
        in_init = (self.fn.name in _INIT_METHODS
                   and isinstance(node.value, ast.Name)
                   and node.value.id == "self")
        for owner in owners:
            self.fn.attr_accesses.append(
                (owner, attr, is_write, path, node.lineno, lock > 0, in_init))

    def _record_global(self, key, path, lineno, lock, is_write, kind=None):
        self.fn.global_accesses.append(
            (key, is_write, path, lineno, lock > 0, kind))

    def _attribute(self, node, path, lock, is_write):
        if isinstance(node.value, ast.Name) and node.value.id != "self" \
                and _local_types_of(self.fn, node.value.id) is None:
            resolved = _resolve_in_fn(self.project, self.fn,
                                     node.value.id)
            if resolved is not None and resolved[0] == "module":
                key = (resolved[1], node.attr)
                if key in self.project.globals:
                    self._record_global(key, path, node.lineno, lock,
                                        is_write,
                                        "rebind" if is_write else None)
                    return
            if resolved is not None and resolved[0] == "global" and is_write:
                self._record_global(resolved[1], path, node.lineno, lock,
                                    True, "attr")
                return
        self._record_attr(node, path, lock, is_write)

    def _name(self, node, path, lock, is_write):
        if node.id == "self":
            return
        if node.id not in self.fn.global_decls \
                and _local_types_of(self.fn, node.id) is not None:
            return
        resolved = _resolve_in_fn(self.project, self.fn, node.id)
        if resolved is not None and resolved[0] == "global":
            self._record_global(resolved[1], path, node.lineno, lock,
                                is_write, "rebind" if is_write else None)

    def _store_through(self, target, path, lock):
        while isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute):
            self._attribute(target, path, lock, True)
        elif isinstance(target, ast.Name):
            self._name(target, path, lock, True)

    # -- calls ----------------------------------------------------------------

    def _call(self, call, path, lock, wt):
        func = call.func
        tname = _terminal_name(func)
        lineno = call.lineno
        if tname in _THREAD_CTORS:
            self.fn.thread_events.append((path, lineno, f"{tname}()"))
            self._root_from_target(call, THREAD_WORKER)
        elif tname in _FORK_CTORS:
            self.fn.fork_events.append((path, lineno, f"{tname}()", lock > 0))
            self._root_from_target(call, PROCESS_WORKER)
            self._note_pipe_args(call)
        elif tname == "fork" and _root_name(func) == "os":
            self.fn.fork_events.append((path, lineno, "os.fork()", lock > 0))
        elif tname == "submit" and isinstance(func, ast.Attribute) \
                and call.args:
            first = call.args[0]
            for fid in self._resolve_ref(first):
                self.roots.setdefault(fid, set()).add(THREAD_WORKER)
            self._rooted.add(id(first))
        elif tname == "close" and isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name):
            self._closed.add(func.value.id)
        if isinstance(func, ast.Attribute):
            if func.attr in _BLOCKING_ALWAYS:
                self.fn.blocking.append(
                    (func.attr, False, lock > 0, wt > 0, lineno, False))
            elif func.attr in _BLOCKING_TIMEOUT:
                bounded = bool(call.args) or any(
                    kw.arg == "timeout" for kw in call.keywords)
                self.fn.blocking.append(
                    (func.attr, bounded, lock > 0, wt > 0, lineno, False))
            if func.attr in _MUTATORS:
                self._store_through(func.value, path, lock)
        if tname == "sleep":
            self.fn.blocking.append(
                ("sleep", True, lock > 0, wt > 0, lineno, True))
        if tname == "setattr" and not isinstance(func, ast.Attribute) \
                and call.args and isinstance(call.args[0], ast.Name):
            self._name(call.args[0], path, lock, True)
        targets = self._resolve_call(call)
        if targets:
            self.fn.edges |= targets
            self.fn.call_sites.append(
                (path, lineno, frozenset(targets), lock > 0))
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if id(arg) in self._rooted:
                continue
            self.fn.edges |= self._resolve_ref(arg)

    def _root_from_target(self, call, context):
        target = None
        for kw in call.keywords:
            if kw.arg == "target":
                target = kw.value
        if target is None and _terminal_name(call.func) == "Timer" \
                and len(call.args) >= 2:
            target = call.args[1]
        if target is None:
            return
        for fid in self._resolve_ref(target):
            self.roots.setdefault(fid, set()).add(context)
        self._rooted.add(id(target))

    def _note_pipe_args(self, call):
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for node in ast.walk(arg):
                if isinstance(node, ast.Name) \
                        and node.id in self._pipe_names:
                    self._pipe_passed.setdefault(node.id, call.lineno)

    # -- resolution -----------------------------------------------------------

    def _ref_edges(self, expr):
        """Edge for a bare callable reference (return value / assign RHS)."""
        if isinstance(expr, (ast.Name, ast.Attribute)) \
                and id(expr) not in self._rooted:
            self.fn.edges |= self._resolve_ref(expr)

    def _resolve_ref(self, expr):
        """Function ids a callable *reference* (not a call) points at."""
        if isinstance(expr, ast.Call):
            if _terminal_name(expr.func) == "partial" and expr.args:
                return self._resolve_ref(expr.args[0])
            return set()
        if isinstance(expr, ast.Name):
            walker = self.fn
            while walker is not None:
                if expr.id in walker.nested:
                    return {walker.nested[expr.id].fid}
                walker = walker.parent
            if _local_types_of(self.fn, expr.id) is not None:
                return set()
            resolved = _resolve_in_fn(self.project, self.fn, expr.id)
            if resolved is not None and resolved[0] == "func":
                return {resolved[1].fid}
            return set()
        if isinstance(expr, ast.Attribute):
            return self._resolve_method(expr)
        return set()

    def _resolve_method(self, node):
        mname = node.attr
        if isinstance(node.value, ast.Name) and node.value.id != "self" \
                and _local_types_of(self.fn, node.value.id) is None:
            resolved = _resolve_in_fn(self.project, self.fn,
                                     node.value.id)
            if resolved is not None and resolved[0] == "module":
                found = _resolve_name(self.project, resolved[1], mname)
                if found is not None and found[0] == "func":
                    return {found[1].fid}
                if found is not None and found[0] == "class":
                    return self._ctor_edge(found[1])
                return set()
            if resolved is not None and resolved[0] == "external":
                return set()
        recv = _type_of_expr(self.project, self.fn, node.value)
        if EXTERNAL in recv and not (recv - {EXTERNAL}):
            return set()
        out = set()
        for key in recv - {EXTERNAL}:
            cls = self.project.classes.get(key)
            if cls is None:
                continue
            for cand_key in [cls.key, *cls.ancestors, *cls.descendants]:
                cand = self.project.classes.get(cand_key)
                if cand is not None and mname in cand.methods:
                    out.add(cand.methods[mname].fid)
        if out or recv:
            return out
        if mname in _NO_FALLBACK:
            return set()
        pool = self.project.funcs_by_name.get(mname, [])
        if 0 < len(pool) <= AMBIGUITY_LIMIT:
            return {fn.fid for fn in pool}
        return set()

    def _ctor_edge(self, cls):
        for key in [cls.key, *cls.ancestors]:
            cand = self.project.classes.get(key)
            if cand is not None and "__init__" in cand.methods:
                return {cand.methods["__init__"].fid}
        return set()

    def _resolve_call(self, call):
        func = call.func
        if isinstance(func, ast.Name):
            walker = self.fn
            while walker is not None:
                if func.id in walker.nested:
                    return {walker.nested[func.id].fid}
                walker = walker.parent
            if _local_types_of(self.fn, func.id) is not None:
                return set()
            resolved = _resolve_in_fn(self.project, self.fn, func.id)
            if resolved is not None:
                if resolved[0] == "func":
                    return {resolved[1].fid}
                if resolved[0] == "class":
                    return self._ctor_edge(resolved[1])
            return set()
        if isinstance(func, ast.Attribute):
            return self._resolve_method(func)
        return set()


# ---------------------------------------------------------------------------
# Context inference and rule evaluation
# ---------------------------------------------------------------------------

def _infer_contexts(project, roots):
    incoming = {fn.fid: 0 for fn in project.functions}
    for fn in project.functions:
        for callee in fn.edges:
            incoming[callee] = incoming.get(callee, 0) + 1
    for fn in project.functions:
        if fn.fid in roots:
            fn.contexts |= roots[fn.fid]
        if fn.is_module_body or (incoming[fn.fid] == 0
                                 and fn.fid not in roots):
            fn.contexts.add(COORDINATOR)
    changed = True
    while changed:
        changed = False
        for fn in project.functions:
            if not fn.contexts:
                continue
            for callee_fid in fn.edges:
                callee = project.functions[callee_fid]
                if not fn.contexts <= callee.contexts:
                    callee.contexts |= fn.contexts
                    changed = True


def _propagate_flags(project):
    callers = {}
    for fn in project.functions:
        for callee in fn.edges:
            callers.setdefault(callee, set()).add(fn.fid)

    def closure(seeds, mark):
        seen = set(seeds)
        stack = list(seeds)
        while stack:
            fid = stack.pop()
            mark(project.functions[fid])
            for caller in callers.get(fid, ()):
                if caller not in seen:
                    seen.add(caller)
                    stack.append(caller)

    closure([fn.fid for fn in project.functions if fn.thread_events],
            lambda fn: setattr(fn, "may_thread", True))
    closure([fn.fid for fn in project.functions if fn.fork_events],
            lambda fn: setattr(fn, "may_fork", True))


def _make_adder(project, findings):
    seen = set()

    def add(code, message, path, lineno):
        key = (code, path, lineno)
        if key in seen:
            return
        seen.add(key)
        lines = project.sources.get(path, [])
        text = lines[lineno - 1] if 0 < lineno <= len(lines) else ""
        codes = _suppressed_codes(text)
        suppressed = codes == "all" or (codes is not None and code in codes)
        findings.append(Finding(code, message, path, lineno, 0,
                                suppressed=suppressed))

    return add


def _ctx_label(contexts):
    return ", ".join(sorted(contexts))


def _rule_rep008(project, add):
    accesses = {}
    for fn in project.functions:
        for (owner, attr, is_write, path, lineno, locked,
             in_init) in fn.attr_accesses:
            accesses.setdefault((owner, attr), []).append(
                (fn, is_write, locked, in_init, lineno))
    for (owner, attr), entries in sorted(accesses.items()):
        cls = project.classes[owner]
        if attr in cls.lock_attrs or attr in cls.local_attrs:
            continue
        contexts = set()
        for entry in entries:
            contexts |= entry[0].contexts
        shared = contexts & THREAD_SHARING
        if len(shared) < 2:
            continue
        emitted = set()
        for (fn, is_write, locked, in_init, lineno) in entries:
            if not is_write or locked or in_init:
                continue
            site = (fn.path, lineno)
            if site in emitted:
                continue
            emitted.add(site)
            add("REP008",
                f"{cls.name}.{attr} is written without holding a lock but "
                f"is reachable from several contexts "
                f"({_ctx_label(shared)}); guard the write with a lock or "
                f"annotate the happens-before that makes it safe",
                fn.path, lineno)
    gaccesses = {}
    for fn in project.functions:
        for (key, is_write, path, lineno, locked,
             kind) in fn.global_accesses:
            gaccesses.setdefault(key, []).append(
                (fn, is_write, locked, lineno))
    for key, entries in sorted(gaccesses.items()):
        info = project.globals.get(key)
        if info is None or info.kind != "mutable":
            continue
        contexts = set()
        for entry in entries:
            contexts |= entry[0].contexts
        shared = contexts & THREAD_SHARING
        if len(shared) < 2:
            continue
        emitted = set()
        for (fn, is_write, locked, lineno) in entries:
            if not is_write or locked:
                continue
            site = (fn.path, lineno)
            if site in emitted:
                continue
            emitted.add(site)
            add("REP008",
                f"module-level mutable {info.name} is written without a "
                f"lock but is reachable from several contexts "
                f"({_ctx_label(shared)}); guard it with a lock",
                fn.path, lineno)


def _rule_rep009(project, add):
    for fn in project.functions:
        thread_evts = list(fn.thread_events)
        fork_evts = list(fn.fork_events)
        for (path, lineno, targets, locked) in fn.call_sites:
            callees = [project.functions[fid] for fid in targets]
            if any(callee.may_fork for callee in callees):
                fork_evts.append((path, lineno, "a call that forks", locked))
            elif any(callee.may_thread for callee in callees):
                thread_evts.append(
                    (path, lineno, "a call that starts a thread"))
        for (fpath, flineno, fwhat, flocked) in fork_evts:
            if flocked:
                add("REP009",
                    f"fork ({fwhat}) while a lock is held: the child "
                    f"inherits a copy of the locked mutex and can "
                    f"deadlock on it",
                    fn.path, flineno)
            for (tpath, tlineno, twhat) in thread_evts:
                if _strictly_precedes(tpath, fpath):
                    add("REP009",
                        f"fork ({fwhat}) on a path after {twhat} (line "
                        f"{tlineno}); the forked child inherits the "
                        f"thread's locks and buffers mid-state",
                        fn.path, flineno)
                    break
        for (lineno, name) in fn.pipe_leaks:
            add("REP009",
                f"pipe endpoint {name!r} is handed to the forked child "
                f"but never closed in the parent, so EOF is never "
                f"delivered",
                fn.path, lineno)


def _rule_rep010(project, add):
    supervised = {PROCESS_WORKER, SERVER_THREAD}
    for fn in project.functions:
        for (name, bounded, locked, in_wt, lineno, is_sleep) in fn.blocking:
            if locked and (is_sleep or not bounded):
                add("REP010",
                    f"{name}() blocks with a lock held; every other "
                    f"context that needs the lock stalls behind it — "
                    f"release the lock first or bound the wait",
                    fn.path, lineno)
            elif (not bounded and not is_sleep and in_wt
                  and fn.contexts & supervised):
                add("REP010",
                    f"{name}() with no timeout inside a supervised "
                    f"`while True` loop ({_ctx_label(fn.contexts & supervised)}) "
                    f"can never observe shutdown; pass a timeout",
                    fn.path, lineno)


def _rule_rep011(project, add):
    for fn in project.functions:
        for (key, is_write, path, lineno, locked,
             kind) in fn.global_accesses:
            info = project.globals.get(key)
            if info is None:
                continue
            if info.kind in ("thread_local", "thread_confined") \
                    and SERVER_THREAD in fn.contexts:
                add("REP011",
                    f"{info.name} is thread-local/thread-confined state "
                    f"but is touched from the server thread, which sees "
                    f"its own empty copy, never the run loop's values",
                    fn.path, lineno)
            elif info.kind == "shared_instance" and is_write \
                    and (fn.contexts - {COORDINATOR}):
                add("REP011",
                    f"shared singleton {info.name} is mutated from a "
                    f"non-coordinator context "
                    f"({_ctx_label(fn.contexts - {COORDINATOR})}); other "
                    f"contexts assume it is fixed after startup",
                    fn.path, lineno)


_RULE_FUNCS = {
    "REP008": _rule_rep008,
    "REP009": _rule_rep009,
    "REP010": _rule_rep010,
    "REP011": _rule_rep011,
}


def analyze_project(project, rules=None):
    """Run the scan + context inference + rules over a built project."""
    roots = {}
    _seed_server_roots(project, roots)
    for fn in project.functions:
        _Scanner(project, fn, roots).scan()
    _infer_contexts(project, roots)
    _propagate_flags(project)
    findings = []
    add = _make_adder(project, findings)
    enabled = set(CONCURRENCY_RULES) if rules is None else set(rules)
    for code in sorted(enabled):
        rule = _RULE_FUNCS.get(code)
        if rule is not None:
            rule(project, add)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def scan_paths(paths, rules=None):
    """Concurrency findings for files/trees; mirrors ``lint_paths``.

    Raises :class:`FileNotFoundError` for a path that does not exist.
    """
    project = build_project(paths)
    return analyze_project(project, rules=rules)
