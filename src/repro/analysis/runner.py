"""Lint runner: text/JSON reporting and deterministic exit codes.

Exit codes are stable so CI can gate on them:

- ``0`` — every scanned file is clean (suppressed findings allowed);
- ``1`` — at least one non-suppressed finding;
- ``2`` — usage error (a path does not exist).

The JSON payload is machine-readable and self-describing::

    {"ok": false, "files": 83, "findings": [...], "suppressed": [...],
     "counts": {"REP003": 1}, "rules": {"REP001": "...", ...}}
"""

from __future__ import annotations

import json
import sys

from .lint import RULES, lint_paths

__all__ = ["EXIT_CLEAN", "EXIT_FINDINGS", "EXIT_USAGE", "run_analyze"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _count_files(paths) -> int:
    from pathlib import Path
    total = 0
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            total += sum(
                1 for file in entry.rglob("*.py")
                if not any(part.startswith(".") for part in file.parts)
            )
        elif entry.is_file():
            total += 1
    return total


def run_analyze(paths, output_format: str = "text",
                show_suppressed: bool = False, stream=None,
                concurrency: bool = False) -> int:
    """Lint ``paths`` and report; returns the process exit code.

    ``concurrency=True`` additionally runs the execution-context pass
    (REP008–REP011, :mod:`repro.analysis.concurrency`) over the same
    paths; its findings merge into the same report and exit code.
    """
    stream = stream if stream is not None else sys.stdout
    try:
        findings = lint_paths(paths)
        if concurrency:
            from .concurrency import scan_paths
            findings = sorted(
                findings + scan_paths(paths),
                key=lambda f: (f.path, f.line, f.col, f.code),
            )
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE

    active = [finding for finding in findings if not finding.suppressed]
    suppressed = [finding for finding in findings if finding.suppressed]
    counts: dict[str, int] = {}
    for finding in active:
        counts[finding.code] = counts.get(finding.code, 0) + 1

    rules = dict(RULES)
    if concurrency:
        from .concurrency import CONCURRENCY_RULES
        rules.update(CONCURRENCY_RULES)

    if output_format == "json":
        payload = {
            "ok": not active,
            "files": _count_files(paths),
            "findings": [finding.to_dict() for finding in active],
            "suppressed": [finding.to_dict() for finding in suppressed],
            "counts": dict(sorted(counts.items())),
            "rules": rules,
        }
        print(json.dumps(payload, indent=2), file=stream)
    else:
        for finding in active:
            print(finding.describe(), file=stream)
        if show_suppressed:
            for finding in suppressed:
                print(finding.describe(), file=stream)
        summary = (f"{len(active)} finding(s)"
                   + (f", {len(suppressed)} suppressed" if suppressed else ""))
        print(f"analyzed {_count_files(paths)} file(s): {summary}",
              file=stream)

    return EXIT_FINDINGS if active else EXIT_CLEAN
