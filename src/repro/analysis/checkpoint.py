"""Static checkpoint-compatibility checking.

FreewayML restores ``(distribution, parameters)`` checkpoints into live
models mid-stream (historical knowledge reuse) and whole learners from
``.npz`` archives (:mod:`repro.core.persistence`).  A serialized
``state_dict`` that drifted from the target architecture — truncated,
transposed, or re-dtyped — must be a clean, typed error *before* any
parameter is written, not a numpy broadcast failure thousands of batches
later.

:func:`check_state_dict` compares a serialized state against a reference
(a live :class:`~repro.nn.modules.Module`, a ``state_dict`` mapping, or a
pre-computed spec mapping) and returns a :class:`CompatReport` listing
every problem: missing / unexpected parameter names, shape mismatches,
and dtype-kind mismatches (a float parameter restored from an integer or
complex blob is rejected; width changes within a kind, e.g. float32 →
float64, are allowed).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..nn.modules import Module
from ..nn.serialization import load_state_dict as _load_state_dict_file
from .shapes import TensorSpec

__all__ = [
    "CompatProblem",
    "CompatReport",
    "CheckpointIncompatibleError",
    "state_spec",
    "check_state_dict",
    "verify_checkpoint_file",
]


class CheckpointIncompatibleError(ValueError):
    """A serialized state does not fit the target architecture."""

    def __init__(self, problems, context: str = ""):
        self.problems = list(problems)
        self.context = context
        lines = "; ".join(problem.describe() for problem in self.problems[:5])
        more = (f" (+{len(self.problems) - 5} more)"
                if len(self.problems) > 5 else "")
        prefix = f"{context}: " if context else ""
        super().__init__(
            f"{prefix}incompatible checkpoint — {lines}{more}"
        )


@dataclass(frozen=True)
class CompatProblem:
    """One incompatibility between a state dict and its target."""

    kind: str                      # "missing" | "unexpected" | "shape" | "dtype"
    name: str                      # dotted parameter name
    expected: str = ""
    actual: str = ""

    def describe(self) -> str:
        if self.kind == "missing":
            return f"parameter {self.name!r} missing from checkpoint"
        if self.kind == "unexpected":
            return f"checkpoint carries unexpected parameter {self.name!r}"
        return (f"{self.kind} mismatch for parameter {self.name!r}: "
                f"expected {self.expected}, got {self.actual}")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "name": self.name,
                "expected": self.expected, "actual": self.actual}


@dataclass
class CompatReport:
    """Outcome of one compatibility check."""

    problems: list
    checked: int                   # parameters compared

    @property
    def ok(self) -> bool:
        return not self.problems

    def raise_if_incompatible(self, context: str = "") -> None:
        if self.problems:
            raise CheckpointIncompatibleError(self.problems, context=context)

    def to_dict(self) -> dict:
        return {"ok": self.ok, "checked": self.checked,
                "problems": [problem.to_dict() for problem in self.problems]}


def state_spec(reference) -> "OrderedDict[str, TensorSpec]":
    """Normalize a reference into ``name -> TensorSpec``.

    ``reference`` may be a :class:`Module` (uses its parameters), a mapping
    of names to arrays (a ``state_dict``), or a mapping of names to
    :class:`TensorSpec` (already a spec).
    """
    if isinstance(reference, Module):
        return OrderedDict(
            (name, TensorSpec(parameter.data.shape,
                              str(parameter.data.dtype)))
            for name, parameter in reference.named_parameters()
        )
    spec: "OrderedDict[str, TensorSpec]" = OrderedDict()
    for name, value in reference.items():
        if isinstance(value, TensorSpec):
            spec[name] = value
        else:
            array = np.asarray(value)
            spec[name] = TensorSpec(array.shape, str(array.dtype))
    return spec


def _dtype_compatible(expected: np.dtype, actual: np.dtype) -> bool:
    # Same kind (float↔float, int↔int) and losslessly-intended: width
    # changes inside a kind are fine, cross-kind re-dtyping is not.
    return (expected.kind == actual.kind
            and np.can_cast(actual, expected, casting="same_kind"))


def check_state_dict(reference, state) -> CompatReport:
    """Compare serialized ``state`` against ``reference``; never mutates.

    Returns a :class:`CompatReport`; call ``raise_if_incompatible`` to turn
    problems into a typed :class:`CheckpointIncompatibleError`.
    """
    spec = state_spec(reference)
    problems: list[CompatProblem] = []
    for name in spec:
        if name not in state:
            problems.append(CompatProblem("missing", name,
                                          expected=str(spec[name])))
    for name in state:
        if name not in spec:
            problems.append(CompatProblem("unexpected", name))
    checked = 0
    for name, expected in spec.items():
        if name not in state:
            continue
        checked += 1
        array = np.asarray(state[name])
        if tuple(array.shape) != tuple(expected.shape):
            problems.append(CompatProblem(
                "shape", name, expected=str(tuple(expected.shape)),
                actual=str(tuple(array.shape)),
            ))
            continue
        if not _dtype_compatible(np.dtype(expected.dtype), array.dtype):
            problems.append(CompatProblem(
                "dtype", name, expected=expected.dtype,
                actual=str(array.dtype),
            ))
    return CompatReport(problems=problems, checked=checked)


def verify_checkpoint_file(path: str | Path, reference) -> CompatReport:
    """Check a checkpoint written by :func:`repro.nn.save_state_dict`."""
    return check_state_dict(reference, _load_state_dict_file(path))
