"""Fuzzed gradient checking: random expression trees vs numeric gradients.

The strongest correctness property an autograd engine can have: for ANY
composition of its ops, backward() agrees with central differences.  Here
hypothesis builds random expression trees over a leaf tensor and we check
the gradient of the scalarized output.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor

from conftest import numeric_gradient

# Each op maps a Tensor to a Tensor and is smooth on the safe domain below.
UNARY_OPS = {
    "exp": lambda t: (t * 0.3).exp(),
    "log": lambda t: (t * t + 1.0).log(),
    "sqrt": lambda t: (t * t + 0.5).sqrt(),
    "tanh": lambda t: t.tanh(),
    "sigmoid": lambda t: t.sigmoid(),
    "neg": lambda t: -t,
    "square": lambda t: t ** 2,
    "scale": lambda t: t * 1.7,
    "shift": lambda t: t + 0.9,
    "reciprocal_like": lambda t: 1.0 / (t * t + 2.0),
}

BINARY_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div_safe": lambda a, b: a / (b * b + 1.5),
}


def expression_strategy():
    """A random program: a list of (op, operand) instructions."""
    unary = st.sampled_from(sorted(UNARY_OPS))
    binary = st.sampled_from(sorted(BINARY_OPS))
    step = st.one_of(
        st.tuples(st.just("unary"), unary),
        st.tuples(st.just("binary"), binary),
    )
    return st.lists(step, min_size=1, max_size=6)


def evaluate(program, leaf: Tensor) -> Tensor:
    value = leaf
    for kind, name in program:
        if kind == "unary":
            value = UNARY_OPS[name](value)
        else:
            # Binary ops pair the running value with the (reused) leaf,
            # exercising gradient accumulation through shared nodes.
            value = BINARY_OPS[name](value, leaf)
    return (value * value).mean()  # smooth scalarization


class TestRandomExpressionGradients:
    @given(expression_strategy(),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_backward_matches_numeric(self, program, seed):
        rng = np.random.default_rng(seed)
        data = rng.uniform(-1.5, 1.5, size=(3, 4))
        leaf = Tensor(data.copy(), requires_grad=True)
        evaluate(program, leaf).backward()
        analytic = leaf.grad

        eps = 1e-6
        numeric = numeric_gradient(
            lambda: evaluate(program, Tensor(data)).item(), data, eps=eps
        )
        # A central difference can only resolve gradients down to roughly
        # ULP(|f|) / (2 * eps); when the program blows the output up (e.g.
        # exp of a fourth power) the reference quantizes in steps of that
        # size, so widen atol to a few quanta instead of failing on noise.
        value = abs(evaluate(program, Tensor(data)).item())
        resolution = np.spacing(value) / (2.0 * eps)
        np.testing.assert_allclose(analytic, numeric, rtol=2e-4,
                                   atol=max(2e-6, 8.0 * resolution))

    @given(expression_strategy())
    @settings(max_examples=30, deadline=None)
    def test_gradients_finite(self, program):
        rng = np.random.default_rng(0)
        leaf = Tensor(rng.uniform(-1.5, 1.5, size=(5,)),
                      requires_grad=True)
        evaluate(program, leaf).backward()
        assert np.isfinite(leaf.grad).all()

    def test_deep_composition(self):
        """A long chain through every unary op stays numerically exact."""
        rng = np.random.default_rng(1)
        data = rng.uniform(-1.0, 1.0, size=(2, 3))
        program = [("unary", name) for name in sorted(UNARY_OPS)] * 2
        leaf = Tensor(data.copy(), requires_grad=True)
        evaluate(program, leaf).backward()
        numeric = numeric_gradient(
            lambda: evaluate(program, Tensor(data)).item(), data, eps=1e-6
        )
        np.testing.assert_allclose(leaf.grad, numeric, rtol=1e-4, atol=1e-7)


class TestAliasedGradientOwnership:
    """The grad-ownership fast path must never adopt an aliased buffer.

    ``a + a`` (and friends) deliver the *same* gradient array to both
    parent slots; expressions that fan one tensor into many consumers
    accumulate several contributions into one grad.  If ``_accumulate``
    ever adopted a buffer it does not privately own, one contribution
    would overwrite another.  These cases pin the hazard.
    """

    def _aliased_value(self, leaf: Tensor) -> Tensor:
        doubled = leaf + leaf          # same grad array to both slots
        squared = doubled * doubled    # same tensor as both operands
        mixed = squared + leaf.exp() + doubled
        return (mixed * mixed).sum()

    def test_aliased_expression_matches_numeric(self):
        rng = np.random.default_rng(5)
        data = rng.uniform(-0.7, 0.7, size=(4,))
        leaf = Tensor(data.copy(), requires_grad=True)
        self._aliased_value(leaf).backward()
        numeric = numeric_gradient(
            lambda: self._aliased_value(Tensor(data)).item(), data, eps=1e-6
        )
        np.testing.assert_allclose(leaf.grad, numeric, rtol=1e-4, atol=1e-7)

    def test_ownership_flag_is_bitwise_neutral(self):
        from repro.perf import configure
        rng = np.random.default_rng(6)
        data = rng.uniform(-0.7, 0.7, size=(8,))
        grads = []
        for own in (True, False):
            with configure(grad_ownership=own):
                leaf = Tensor(data.copy(), requires_grad=True)
                self._aliased_value(leaf).backward()
                grads.append(leaf.grad.tobytes())
        assert grads[0] == grads[1]

    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_fuzzed_self_references(self, seed):
        """Random self-referencing chains: ownership on == ownership off."""
        from repro.perf import configure
        rng = np.random.default_rng(seed)
        data = rng.uniform(-0.9, 0.9, size=(3,))

        def build(leaf):
            value = leaf
            for step in range(int(rng.integers(1, 5))):
                value = value + value if step % 2 == 0 else value * leaf
            return (value + leaf).sum()

        state = rng.bit_generator.state
        grads = []
        for own in (True, False):
            rng.bit_generator.state = state
            with configure(grad_ownership=own):
                leaf = Tensor(data.copy(), requires_grad=True)
                build(leaf).backward()
                grads.append(leaf.grad.tobytes())
        assert grads[0] == grads[1]
