"""Tests for historical knowledge reuse (repro.core.knowledge)."""

import numpy as np
import pytest

from repro.core import KnowledgeStore
from repro.models import StreamingLR


def state(seed=0):
    return StreamingLR(num_features=4, num_classes=2, seed=seed).state_dict()


class TestPreserve:
    def test_preserve_and_len(self):
        store = KnowledgeStore(capacity=5)
        store.preserve(np.zeros(2), state(), "long", 0.5, 10)
        assert len(store) == 1
        assert store.preserved_total == 1

    def test_preserved_state_is_a_copy(self):
        store = KnowledgeStore()
        original = state()
        entry = store.preserve(np.zeros(2), original, "long", 0.5, 1)
        original["weight"][:] = 0.0
        assert not (entry.state["weight"] == 0).all()

    def test_nbytes_per_entry(self):
        store = KnowledgeStore()
        entry = store.preserve(np.zeros(2), state(), "long", 0.5, 1)
        assert entry.nbytes == (4 * 2 + 2) * 8

    def test_total_nbytes_scales_linearly(self):
        store = KnowledgeStore(capacity=100)
        for i in range(10):
            store.preserve(np.zeros(2), state(), "long", 0.5, i)
        assert store.total_nbytes() == 10 * (4 * 2 + 2) * 8

    def test_validation(self):
        with pytest.raises(ValueError):
            KnowledgeStore(capacity=0)
        with pytest.raises(ValueError):
            KnowledgeStore(beta=1.5)


class TestDisorderGatedPreservation:
    def test_high_disorder_preserves_long_only(self):
        store = KnowledgeStore(beta=0.35)
        entries = store.preserve_at_window_end(
            disorder=0.8, long_embedding=np.zeros(2), long_state=state(),
            short_embedding=np.ones(2), short_state=state(1), batch_index=5,
        )
        assert [entry.model_kind for entry in entries] == ["long"]

    def test_low_disorder_preserves_both(self):
        store = KnowledgeStore(beta=0.35)
        entries = store.preserve_at_window_end(
            disorder=0.1, long_embedding=np.zeros(2), long_state=state(),
            short_embedding=np.ones(2), short_state=state(1), batch_index=5,
        )
        assert [entry.model_kind for entry in entries] == ["long", "short"]

    def test_low_disorder_untrained_short_skipped(self):
        store = KnowledgeStore(beta=0.35)
        entries = store.preserve_at_window_end(
            disorder=0.1, long_embedding=np.zeros(2), long_state=state(),
            short_embedding=np.ones(2), short_state=None, batch_index=5,
        )
        assert [entry.model_kind for entry in entries] == ["long"]


class TestOverflow:
    def test_evicts_older_half(self):
        store = KnowledgeStore(capacity=4)
        for i in range(5):
            store.preserve(np.full(2, float(i)), state(), "long", 0.5, i)
        assert len(store) <= 4
        remaining = [entry.batch_index for entry in store.entries]
        assert 0 not in remaining  # oldest evicted
        assert 4 in remaining
        assert store.spilled_total > 0

    def test_spill_writes_checkpoints(self, tmp_path):
        store = KnowledgeStore(capacity=2, spill_dir=tmp_path / "spill")
        for i in range(3):
            store.preserve(np.zeros(2), state(), "long", 0.5, i)
        spilled = list((tmp_path / "spill").glob("*.npz"))
        assert len(spilled) >= 1

    def test_spilled_checkpoint_loads(self, tmp_path):
        store = KnowledgeStore(capacity=2, spill_dir=tmp_path)
        reference = state(7)
        store.preserve(np.array([3.0, -1.0]), reference, "short", 0.1, 0)
        store.preserve(np.zeros(2), state(), "long", 0.5, 1)
        store.preserve(np.zeros(2), state(), "long", 0.5, 2)
        (path,) = tmp_path.glob("knowledge-00000000-short-*.npz")
        entry = KnowledgeStore.load_spilled(path)
        np.testing.assert_array_equal(entry.state["weight"],
                                      reference["weight"])

    def test_spill_keeps_embedding_and_metadata(self, tmp_path):
        store = KnowledgeStore(capacity=2, spill_dir=tmp_path)
        embedding = np.array([3.0, -1.0])
        store.preserve(embedding, state(7), "short", 0.125, 0)
        store.preserve(np.zeros(2), state(), "long", 0.5, 1)
        store.preserve(np.zeros(2), state(), "long", 0.5, 2)
        (path,) = tmp_path.glob("knowledge-00000000-short-*.npz")
        entry = KnowledgeStore.load_spilled(path)
        np.testing.assert_array_equal(entry.embedding, embedding)
        assert entry.model_kind == "short"
        assert entry.disorder == pytest.approx(0.125)
        assert entry.batch_index == 0

    def test_spill_filenames_never_collide(self, tmp_path):
        # Same batch index + same model kind used to overwrite one file.
        store = KnowledgeStore(capacity=1, spill_dir=tmp_path)
        for i in range(4):
            store.preserve(np.full(2, float(i)), state(i), "long", 0.5, 7)
        spilled = list(tmp_path.glob("knowledge-00000007-long-*.npz"))
        assert len(spilled) == store.spilled_total
        assert store.spilled_total >= 2

    def test_readmit_restores_matchable_entry(self, tmp_path):
        store = KnowledgeStore(capacity=2, spill_dir=tmp_path)
        embedding = np.array([9.0, 9.0])
        store.preserve(embedding, state(3), "short", 0.1, 0)
        store.preserve(np.zeros(2), state(), "long", 0.5, 1)
        store.preserve(np.zeros(2), state(), "long", 0.5, 2)
        (path,) = tmp_path.glob("knowledge-00000000-short-*.npz")
        store.readmit(path)
        match = store.match(embedding)
        assert match.entry.model_kind == "short"
        assert match.distance == pytest.approx(0.0)


class TestMatch:
    def test_nearest_entry_wins(self):
        store = KnowledgeStore(capacity=10)
        store.preserve(np.array([0.0, 0.0]), state(0), "long", 0.5, 0)
        store.preserve(np.array([5.0, 5.0]), state(1), "long", 0.5, 1)
        match = store.match(np.array([4.5, 5.0]))
        assert match.entry.batch_index == 1
        assert match.distance == pytest.approx(0.5)

    def test_current_shift_gate(self):
        store = KnowledgeStore(capacity=10)
        store.preserve(np.array([3.0, 0.0]), state(), "long", 0.5, 0)
        # Nearest entry at distance 3; current shift only 1 -> no reuse.
        assert store.match(np.zeros(2), current_shift=1.0) is None
        # Current shift 10 -> the entry is closer, reuse applies.
        assert store.match(np.zeros(2), current_shift=10.0) is not None

    def test_empty_store_returns_none(self):
        assert KnowledgeStore().match(np.zeros(2)) is None

    def test_matched_state_restores_model(self, blob_data):
        x, y = blob_data
        trained = StreamingLR(num_features=4, num_classes=2, lr=0.5, seed=0)
        for _ in range(30):
            trained.partial_fit(x, y)
        store = KnowledgeStore()
        store.preserve(np.zeros(2), trained.state_dict(), "short", 0.1, 0)
        fresh = StreamingLR(num_features=4, num_classes=2, seed=9)
        fresh.load_state_dict(store.match(np.zeros(2)).entry.state)
        assert (fresh.predict(x) == y).mean() > 0.95
