"""Tests for the shift graph (repro.shift.graph, Figure 2)."""

import networkx as nx
import numpy as np
import pytest

from repro.shift import ShiftGraph


def feed(graph, rng, centers, accuracies=None, n=64, d=5):
    for position, center in enumerate(centers):
        accuracy = accuracies[position] if accuracies else None
        graph.observe(rng.normal(size=(n, d)) + center, accuracy=accuracy)


class TestConstruction:
    def test_warmup_batches_replayed(self, rng):
        graph = ShiftGraph(warmup_points=150)
        feed(graph, rng, [0.0, 0.0, 0.0])  # 192 points total
        # All three batches present once PCA fitted mid-way.
        assert len(graph) == 3
        assert graph.points.shape == (3, 2)

    def test_points_accumulate(self, rng):
        graph = ShiftGraph(warmup_points=10)
        feed(graph, rng, [0.0] * 7)
        assert len(graph) == 7

    def test_empty_graph(self):
        graph = ShiftGraph()
        assert graph.points.shape == (0, 2)
        assert graph.shift_magnitudes.size == 0


class TestShiftMagnitudes:
    def test_edge_count(self, rng):
        graph = ShiftGraph(warmup_points=10)
        feed(graph, rng, [0.0, 1.0, 2.0, 3.0])
        assert len(graph.shift_magnitudes) == 3

    def test_big_jump_has_big_edge(self, rng):
        graph = ShiftGraph(warmup_points=10)
        feed(graph, rng, [0.0, 0.1, 0.2, 10.0])
        magnitudes = graph.shift_magnitudes
        assert magnitudes[-1] > 5 * magnitudes[:-1].max()


class TestAccuracyCorrelation:
    def test_positive_correlation_when_shifts_cause_drops(self, rng):
        graph = ShiftGraph(warmup_points=10)
        centers = [0.0, 0.1, 5.0, 5.1, 10.0, 10.1, 15.0]
        # Accuracy drops right after each big jump.
        accuracies = [0.9, 0.9, 0.5, 0.88, 0.5, 0.87, 0.5]
        feed(graph, rng, centers, accuracies)
        correlation = graph.accuracy_shift_correlation()
        assert correlation is not None
        assert correlation > 0.5

    def test_none_with_too_few_annotations(self, rng):
        graph = ShiftGraph(warmup_points=10)
        feed(graph, rng, [0.0, 1.0], accuracies=[0.9, 0.8])
        assert graph.accuracy_shift_correlation() is None

    def test_none_when_accuracy_constant(self, rng):
        graph = ShiftGraph(warmup_points=10)
        feed(graph, rng, [0.0, 1.0, 2.0, 3.0, 4.0],
             accuracies=[0.9] * 5)
        assert graph.accuracy_shift_correlation() is None

    def test_accuracies_aligned_with_points(self, rng):
        graph = ShiftGraph(warmup_points=150)
        feed(graph, rng, [0.0, 1.0, 2.0], accuracies=[0.7, 0.8, 0.9])
        assert graph.accuracies == [0.7, 0.8, 0.9]


class TestNetworkxExport:
    def test_chain_topology(self, rng):
        graph = ShiftGraph(warmup_points=10)
        feed(graph, rng, [0.0, 1.0, 2.0, 3.0])
        g = graph.to_networkx()
        assert isinstance(g, nx.DiGraph)
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 3
        assert list(g.successors(0)) == [1]

    def test_attributes(self, rng):
        graph = ShiftGraph(warmup_points=10)
        feed(graph, rng, [0.0, 5.0], accuracies=[0.9, 0.4])
        g = graph.to_networkx()
        assert "pos" in g.nodes[0]
        assert g.nodes[1]["accuracy"] == 0.4
        assert g.edges[0, 1]["shift"] == pytest.approx(
            graph.shift_magnitudes[0]
        )
