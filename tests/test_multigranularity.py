"""Tests for multi-time granularity models (repro.core.multigranularity)."""

import numpy as np
import pytest

from repro.core import (
    GranularityLevel,
    MultiGranularityEnsemble,
    gaussian_kernel,
)
from repro.models import StreamingLR


def factory():
    return StreamingLR(num_features=4, num_classes=2, lr=0.3, seed=0)


def labeled_batch(rng, center, n=32):
    x = rng.normal(size=(n, 4)) * 0.3 + center
    y = (x[:, 0] > center).astype(np.int64)
    return x, y, x.mean(axis=0)[:2]  # 2-d "embedding"


class TestGaussianKernel:
    def test_zero_distance_is_one(self):
        assert gaussian_kernel(0.0, 1.0) == 1.0

    def test_monotone_decreasing(self):
        values = [gaussian_kernel(d, 1.0) for d in (0.0, 0.5, 1.0, 2.0)]
        assert all(values[i] > values[i + 1] for i in range(3))

    def test_sigma_widens(self):
        assert gaussian_kernel(1.0, 2.0) > gaussian_kernel(1.0, 0.5)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            gaussian_kernel(1.0, 0.0)


class TestGranularityLevel:
    def test_short_level_trains_every_batch(self, rng):
        level = GranularityLevel(factory(), window_batches=1)
        assert level.is_short
        info = level.update(*labeled_batch(rng, 0.0))
        assert info["trained"]
        assert level.updates == 1

    def test_window_level_waits_for_fullness(self, rng):
        level = GranularityLevel(factory(), window_batches=3)
        assert not level.is_short
        infos = [level.update(*labeled_batch(rng, 0.0)) for _ in range(3)]
        assert [i["trained"] for i in infos] == [False, False, True]
        assert "disorder" in infos[-1]
        assert level.updates == 1

    def test_window_resets_after_update(self, rng):
        level = GranularityLevel(factory(), window_batches=2)
        level.update(*labeled_batch(rng, 0.0))
        level.update(*labeled_batch(rng, 0.0))
        assert len(level.window) == 0

    def test_reference_embedding_tracks_training_not_pending(self, rng):
        level = GranularityLevel(factory(), window_batches=2)
        level.update(np.zeros((8, 4)), np.zeros(8), np.array([0.0, 0.0]))
        level.update(np.zeros((8, 4)), np.zeros(8), np.array([1.0, 1.0]))
        trained_reference = level.reference_embedding().copy()
        # New pending batch far away must NOT move the reference.
        level.update(np.zeros((8, 4)), np.zeros(8), np.array([50.0, 50.0]))
        np.testing.assert_array_equal(level.reference_embedding(),
                                      trained_reference)

    def test_untrained_reference_is_none(self):
        level = GranularityLevel(factory(), window_batches=4)
        assert level.reference_embedding() is None
        assert not level.trained

    def test_multi_epoch_update(self, rng):
        eager = GranularityLevel(factory(), window_batches=2,
                                 update_epochs=8)
        lazy = GranularityLevel(factory(), window_batches=2,
                                update_epochs=1)
        x, y, e = labeled_batch(rng, 0.0, n=64)
        for level in (eager, lazy):
            level.update(x, y, e)
            level.update(x, y, e)
        assert eager.model.loss_on(x, y) < lazy.model.loss_on(x, y)

    def test_validation(self):
        with pytest.raises(ValueError):
            GranularityLevel(factory(), window_batches=0)


class TestEnsemble:
    def test_requires_short_level(self):
        with pytest.raises(ValueError):
            MultiGranularityEnsemble(factory, window_sizes=(4, 8))
        with pytest.raises(ValueError):
            MultiGranularityEnsemble(factory, window_sizes=())

    def test_level_accessors(self):
        ensemble = MultiGranularityEnsemble(factory, window_sizes=(1, 4))
        assert ensemble.short_level.is_short
        assert len(ensemble.long_levels) == 1

    def test_untrained_predicts_uniform(self, rng):
        ensemble = MultiGranularityEnsemble(factory, window_sizes=(1, 4))
        proba = ensemble.predict_proba(rng.normal(size=(5, 4)),
                                       np.zeros(2))
        np.testing.assert_allclose(proba, 0.5)

    def test_update_feeds_all_levels(self, rng):
        ensemble = MultiGranularityEnsemble(factory, window_sizes=(1, 2))
        infos = ensemble.update(*labeled_batch(rng, 0.0))
        assert len(infos) == 2
        assert infos[0]["trained"]      # short
        assert not infos[1]["trained"]  # long window still filling

    def test_model_distances(self, rng):
        ensemble = MultiGranularityEnsemble(factory, window_sizes=(1, 2))
        x, y, e = labeled_batch(rng, 0.0)
        ensemble.update(x, y, e)
        distances = ensemble.model_distances(e + 1.0)
        assert distances[0] == pytest.approx(np.linalg.norm(np.ones(2)))
        assert distances[1] is None  # long model untrained

    def test_nearer_model_dominates_blend(self, rng):
        ensemble = MultiGranularityEnsemble(factory, window_sizes=(1, 2),
                                            sigma=0.5, exclusion_ratio=100.0)
        # Train short on center 0, fill long window at center 5.
        for center in (0.0, 5.0):
            x = rng.normal(size=(32, 4)) * 0.1 + center
            y = (x[:, 0] > center).astype(np.int64)
            embedding = np.full(2, center)
            ensemble.levels[1].update(x, y, embedding)
        x0, y0, e0 = labeled_batch(rng, 0.0)
        ensemble.levels[0].update(x0, y0, np.zeros(2))
        # Query at the short model's reference: its weight should dominate.
        distances = ensemble.model_distances(np.zeros(2))
        assert distances[0] < distances[1]

    def test_exclusion_drops_mismatched_model(self, rng):
        ensemble = MultiGranularityEnsemble(factory, window_sizes=(1, 1),
                                            sigma=1.0, exclusion_ratio=2.0)
        # Two "short" levels with different references.
        near, far = ensemble.levels
        x, y, _ = labeled_batch(rng, 0.0)
        near.update(x, y, np.array([0.0, 0.0]))
        far.update(x, y, np.array([100.0, 100.0]))
        # Make the far model's predictions degenerate so inclusion is visible.
        for parameter in far.model.module.parameters():
            parameter.data = parameter.data * 0 + 100.0
        proba = ensemble.predict_proba(x, np.array([0.1, 0.0]))
        near_only = near.model.predict_proba(x)
        np.testing.assert_allclose(proba, near_only, atol=1e-6)

    def test_auto_sigma_adapts(self, rng):
        ensemble = MultiGranularityEnsemble(factory, window_sizes=(1,),
                                            sigma="auto")
        x, y, _ = labeled_batch(rng, 0.0)
        ensemble.levels[0].update(x, y, np.zeros(2))
        before = ensemble.sigma
        for _ in range(20):
            ensemble.predict_proba(x, np.array([5.0, 0.0]))
        assert ensemble.sigma != before

    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            MultiGranularityEnsemble(factory, sigma=0.0)
        with pytest.raises(ValueError):
            MultiGranularityEnsemble(factory, sigma="bogus")
        with pytest.raises(ValueError):
            MultiGranularityEnsemble(factory, exclusion_ratio=1.0)

    def test_blend_is_probability_simplex(self, rng):
        ensemble = MultiGranularityEnsemble(factory, window_sizes=(1, 2))
        for center in (0.0, 0.2, 0.4):
            ensemble.update(*labeled_batch(rng, center))
        x, _, e = labeled_batch(rng, 0.3)
        proba = ensemble.predict_proba(x, e)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_predict_labels(self, rng):
        ensemble = MultiGranularityEnsemble(factory, window_sizes=(1,))
        x, y, e = labeled_batch(rng, 0.0, n=128)
        for _ in range(100):
            ensemble.update(x, y, e)
        assert (ensemble.predict(x, e) == y).mean() > 0.9
