"""Tests for coherent experience clustering (repro.core.cec)."""

import numpy as np
import pytest

from repro.core import CoherentExperienceClustering, ExperienceBuffer


def fill_buffer(buffer, rng, centers, labels, n=40):
    """Add one labeled batch whose rows cluster at `centers` per label."""
    xs, ys = [], []
    for center, label in zip(centers, labels):
        xs.append(rng.normal(size=(n, len(center))) * 0.3 + center)
        ys.append(np.full(n, label, dtype=np.int64))
    x = np.concatenate(xs)
    y = np.concatenate(ys)
    order = rng.permutation(len(x))
    buffer.add(x[order], y[order])


class TestExperienceBuffer:
    def test_add_and_len(self, rng):
        buffer = ExperienceBuffer(capacity=100, per_batch=10)
        buffer.add(rng.normal(size=(30, 3)), np.zeros(30))
        assert len(buffer) == 10  # only the tail is kept

    def test_keeps_batch_tail(self):
        buffer = ExperienceBuffer(capacity=100, per_batch=3)
        x = np.arange(10, dtype=float).reshape(10, 1)
        buffer.add(x, np.arange(10) % 2)
        recent_x, _ = buffer.recent(3)
        np.testing.assert_allclose(sorted(recent_x.ravel()), [7.0, 8.0, 9.0])

    def test_capacity_evicts_oldest(self, rng):
        buffer = ExperienceBuffer(capacity=25, per_batch=10, expiration=100)
        for _ in range(5):
            buffer.add(rng.normal(size=(10, 2)), np.zeros(10))
        assert len(buffer) <= 25

    def test_expiration_drops_old_batches(self, rng):
        buffer = ExperienceBuffer(capacity=1000, per_batch=10, expiration=2)
        buffer.add(rng.normal(size=(10, 2)), np.zeros(10))
        buffer.add(rng.normal(size=(10, 2)), np.ones(10))
        buffer.add(rng.normal(size=(10, 2)), np.ones(10))
        # First batch is now 2 ticks old -> expired.
        assert len(buffer) == 20

    def test_recent_spans_batches_newest_first(self):
        buffer = ExperienceBuffer(capacity=100, per_batch=2, expiration=50)
        buffer.add(np.array([[1.0], [2.0]]), np.array([0, 0]))
        buffer.add(np.array([[3.0], [4.0]]), np.array([1, 1]))
        x, y = buffer.recent(3)
        assert 3.0 in x and 4.0 in x  # newest batch fully included
        assert len(x) == 3

    def test_recent_empty_raises(self):
        with pytest.raises(RuntimeError):
            ExperienceBuffer().recent(5)

    def test_label_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            ExperienceBuffer().add(rng.normal(size=(4, 2)), np.zeros(3))

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperienceBuffer(capacity=0)
        with pytest.raises(ValueError):
            ExperienceBuffer(per_batch=0)
        with pytest.raises(ValueError):
            ExperienceBuffer(expiration=0)


class TestCoherentExperienceClustering:
    def test_maps_clusters_to_labels(self, rng):
        buffer = ExperienceBuffer(capacity=500, per_batch=200, expiration=10)
        centers = [np.array([0.0, 0.0]), np.array([8.0, 8.0]),
                   np.array([-8.0, 8.0])]
        fill_buffer(buffer, rng, centers, labels=[0, 1, 2])
        cec = CoherentExperienceClustering(3, experience_points=90, seed=0)
        # New unlabeled batch from the same three clusters.
        x_new, y_true = [], []
        for label, center in enumerate(centers):
            x_new.append(rng.normal(size=(30, 2)) * 0.3 + center)
            y_true.append(np.full(30, label))
        x_new = np.concatenate(x_new)
        y_true = np.concatenate(y_true)
        result = cec.predict(x_new, buffer)
        assert (result.labels == y_true).mean() > 0.95
        assert result.guided_clusters == 3

    def test_survives_label_remap(self, rng):
        """The flagship CEC property: after a sudden shift that permutes
        which regions carry which labels, recent experience re-maps the
        clusters correctly."""
        buffer = ExperienceBuffer(capacity=500, per_batch=200, expiration=10)
        centers = [np.array([0.0, 0.0]), np.array([8.0, 8.0])]
        # Post-shift experience: region 0 now labeled 1 and vice versa.
        fill_buffer(buffer, rng, centers, labels=[1, 0])
        cec = CoherentExperienceClustering(2, experience_points=80, seed=0)
        x_new = np.concatenate([
            rng.normal(size=(30, 2)) * 0.3 + centers[0],
            rng.normal(size=(30, 2)) * 0.3 + centers[1],
        ])
        y_new = np.concatenate([np.ones(30), np.zeros(30)])
        result = cec.predict(x_new, buffer)
        assert (result.labels == y_new).mean() > 0.95

    def test_proba_rows_sum_to_one(self, rng):
        buffer = ExperienceBuffer(capacity=500, per_batch=100)
        fill_buffer(buffer, rng, [np.zeros(2), np.full(2, 6.0)], [0, 1])
        cec = CoherentExperienceClustering(2, experience_points=50, seed=0)
        result = cec.predict(rng.normal(size=(20, 2)), buffer)
        np.testing.assert_allclose(result.proba.sum(axis=1), 1.0, atol=1e-9)

    def test_orphan_cluster_inherits_nearest_label(self, rng):
        buffer = ExperienceBuffer(capacity=500, per_batch=100)
        # Experience only covers one region.
        buffer.add(rng.normal(size=(50, 2)) * 0.3, np.zeros(50, dtype=int))
        cec = CoherentExperienceClustering(2, experience_points=50, seed=0)
        # Batch includes a far-away region with no labeled guidance.
        x_new = np.concatenate([
            rng.normal(size=(30, 2)) * 0.3,
            rng.normal(size=(30, 2)) * 0.3 + 20.0,
        ])
        result = cec.predict(x_new, buffer)
        assert set(np.unique(result.labels)) <= {0, 1}
        # All labels valid (orphan resolved, no -1 leaks).
        assert (result.cluster_labels >= 0).all()

    def test_featurizer_applied(self, rng):
        calls = []

        def featurizer(x):
            calls.append(len(x))
            return np.asarray(x)[:, :2]

        buffer = ExperienceBuffer(capacity=500, per_batch=100)
        fill_buffer(buffer, rng, [np.zeros(4), np.full(4, 6.0)], [0, 1])
        cec = CoherentExperienceClustering(2, experience_points=50,
                                           featurizer=featurizer, seed=0)
        cec.predict(rng.normal(size=(20, 4)), buffer)
        assert len(calls) == 2  # batch + experience

    def test_image_input_flattened(self, rng):
        buffer = ExperienceBuffer(capacity=500, per_batch=50)
        buffer.add(rng.normal(size=(50, 1, 4, 4)), np.zeros(50))
        cec = CoherentExperienceClustering(2, experience_points=30, seed=0)
        result = cec.predict(rng.normal(size=(10, 1, 4, 4)), buffer)
        assert result.labels.shape == (10,)

    def test_deterministic(self, rng):
        buffer = ExperienceBuffer(capacity=500, per_batch=100)
        fill_buffer(buffer, rng, [np.zeros(2), np.full(2, 6.0)], [0, 1])
        x = rng.normal(size=(20, 2))
        cec = CoherentExperienceClustering(2, experience_points=50, seed=7)
        a = cec.predict(x, buffer).labels
        b = cec.predict(x, buffer).labels
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            CoherentExperienceClustering(1)
        with pytest.raises(ValueError):
            CoherentExperienceClustering(2, experience_points=0)


class TestFeaturizerShapes:
    def test_cnn_featurizer_receives_native_image_shape(self, rng):
        """A convolutional featurizer needs (N, C, H, W) input; flattening
        must happen after featurization (regression: predict() flattened
        the batch before the featurizer saw it)."""
        seen_shapes = []

        def featurizer(x):
            x = np.asarray(x)
            seen_shapes.append(x.shape)
            assert x.ndim == 4, "featurizer expected image-shaped input"
            return x.reshape(len(x), -1)[:, :3]

        buffer = ExperienceBuffer(capacity=500, per_batch=60)
        buffer.add(rng.normal(size=(60, 1, 4, 4)),
                   (rng.random(60) > 0.5).astype(np.int64))
        cec = CoherentExperienceClustering(2, experience_points=40,
                                           featurizer=featurizer, seed=0)
        result = cec.predict(rng.normal(size=(12, 1, 4, 4)), buffer)
        assert result.labels.shape == (12,)
        assert all(len(shape) == 4 for shape in seen_shapes)


class TestSegmentLabels:
    def _buffer(self, rng):
        buffer = ExperienceBuffer(capacity=500, per_batch=200)
        fill_buffer(buffer, rng, [np.zeros(2), np.full(2, 6.0)], [0, 1],
                    n=60)
        return buffer

    def test_segmented_result_carries_per_segment_labels(self, rng):
        """Each segment is clustered independently; the result must expose
        every segment's cluster→label map, not just the last one
        (regression: only results[-1].cluster_labels survived)."""
        buffer = self._buffer(rng)
        cec = CoherentExperienceClustering(2, experience_points=80,
                                           segments=3, seed=0)
        result = cec.predict(rng.normal(size=(90, 2)), buffer)
        assert isinstance(result.segment_labels, list)
        assert len(result.segment_labels) == 3
        for labels in result.segment_labels:
            assert (labels >= 0).all()
        # The compat field still mirrors the last segment.
        np.testing.assert_array_equal(result.cluster_labels,
                                      result.segment_labels[-1])

    def test_unsegmented_result_has_no_segment_labels(self, rng):
        buffer = self._buffer(rng)
        cec = CoherentExperienceClustering(2, experience_points=80, seed=0)
        result = cec.predict(rng.normal(size=(30, 2)), buffer)
        assert result.segment_labels is None
        assert (result.cluster_labels >= 0).all()
