"""Tests for repro.analysis: shape inference, checkpoint compat, lint."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro import nn
from repro.analysis import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    CheckpointIncompatibleError,
    GraphValidationError,
    TensorSpec,
    check_state_dict,
    infer_output_spec,
    infer_shapes,
    input_spec_for,
    lint_paths,
    lint_source,
    register_shape_rule,
    run_analyze,
    state_spec,
    validate_model,
    verify_checkpoint_file,
)
from repro.cli import main as cli_main
from repro.core import Learner, load_learner, save_learner
from repro.core.knowledge import KnowledgeMatch, KnowledgeStore
from repro.models import StreamingCNN, StreamingLR, StreamingMLP
from repro.nn.serialization import save_state_dict
from repro.obs import CheckpointRejected, Observability

SRC = Path(__file__).resolve().parent.parent / "src"


# ---------------------------------------------------------------------------
# Symbolic shape inference
# ---------------------------------------------------------------------------


class TestShapeInference:
    def test_linear_chain_symbolic_batch(self):
        module = nn.Sequential(
            nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2),
        )
        traces = infer_shapes(module, TensorSpec(("N", 4)))
        assert len(traces) == 3
        assert traces[0].output.shape == ("N", 8)
        assert traces[-1].output.shape == ("N", 2)
        assert traces[-1].output.dtype == "float64"

    def test_mismatched_linear_chain_rejected_statically(self):
        # No forward pass ever runs: validation is purely symbolic.
        module = nn.Sequential(nn.Linear(4, 8), nn.Linear(9, 2))
        with pytest.raises(GraphValidationError, match=r"layer1.*9.*8|8.*9"):
            infer_shapes(module, TensorSpec(("N", 4)))

    def test_wrong_input_width_rejected(self):
        with pytest.raises(GraphValidationError, match="7"):
            infer_output_spec(nn.Linear(4, 2), TensorSpec(("N", 7)))

    def test_conv_channel_mismatch_rejected(self):
        module = nn.Conv2d(3, 8, kernel_size=3)
        with pytest.raises(GraphValidationError, match="channels"):
            infer_output_spec(module, TensorSpec(("N", 1, 8, 8)))

    def test_conv_empty_output_rejected(self):
        module = nn.Conv2d(1, 8, kernel_size=9)
        with pytest.raises(GraphValidationError, match="empty"):
            infer_output_spec(module, TensorSpec(("N", 1, 4, 4)))

    def test_symbolic_spatial_dim_rejected_cleanly(self):
        module = nn.Conv2d(1, 8, kernel_size=3)
        with pytest.raises(GraphValidationError, match="concrete"):
            infer_output_spec(module, TensorSpec(("N", 1, "H", 8)))

    def test_unregistered_module_type_names_the_hook(self):
        class Mystery(nn.Module):
            def forward(self, x):
                return x

        with pytest.raises(GraphValidationError,
                           match="register_shape_rule"):
            infer_shapes(nn.Sequential(Mystery()), TensorSpec(("N", 4)))

        @register_shape_rule(Mystery)
        def _mystery_rule(module, spec):
            return spec

        out = infer_output_spec(nn.Sequential(Mystery()), TensorSpec(("N", 4)))
        assert out.shape == ("N", 4)

    def test_flatten_and_pool_arithmetic(self):
        module = nn.Sequential(
            nn.Conv2d(1, 4, kernel_size=3, padding=1),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.Linear(4 * 4 * 4, 3),
        )
        out = infer_output_spec(module, TensorSpec(("N", 1, 8, 8)))
        assert out.shape == ("N", 3)


class TestModelZoo:
    ZOO = [
        StreamingLR(num_features=6, num_classes=3, seed=0),
        StreamingMLP(num_features=6, num_classes=3, hidden=(16, 8), seed=0),
        StreamingCNN(input_shape=(6,), num_classes=3, seed=0),
        StreamingCNN(input_shape=(1, 8, 8), num_classes=4, seed=0),
    ]

    @pytest.mark.parametrize("model", ZOO, ids=lambda m: m.name + str(
        getattr(m, "input_shape", "")))
    def test_zoo_validates_and_matches_real_forward(self, model, rng):
        traces = validate_model(model)
        assert traces[-1].output.shape == ("N", model.num_classes)

        # Re-infer with a concrete batch and compare against an actual
        # forward pass — the symbolic arithmetic must agree with reality.
        spec = input_spec_for(model, batch=5)
        inferred = infer_output_spec(model.module, spec)
        x = rng.normal(size=(5, model.num_features))
        proba = model.predict_proba(x)
        assert tuple(inferred.shape) == proba.shape

    def test_validate_model_catches_bad_head(self):
        model = StreamingMLP(num_features=6, num_classes=3, hidden=(8,),
                             seed=0)
        # Sabotage the head: shape-consistent, but claims 3 classes while
        # producing 7.
        model.module.layer2 = nn.Linear(8, 7)
        model.module.layers[2] = model.module.layer2
        with pytest.raises(GraphValidationError, match="num_classes"):
            validate_model(model)

    def test_validate_model_requires_nn_module(self):
        with pytest.raises(TypeError, match="no repro.nn module"):
            validate_model(object())


# ---------------------------------------------------------------------------
# Checkpoint compatibility
# ---------------------------------------------------------------------------


def mlp_module():
    return StreamingMLP(num_features=5, num_classes=3, hidden=(4,),
                        seed=0).module


class TestCheckpointCompat:
    def test_own_state_is_compatible(self):
        module = mlp_module()
        report = check_state_dict(module, module.state_dict())
        assert report.ok
        assert report.checked == len(module.state_dict())

    def test_truncated_blob_rejected(self):
        module = mlp_module()
        state = module.state_dict()
        state.popitem()
        report = check_state_dict(module, state)
        assert not report.ok
        assert report.problems[0].kind == "missing"

    def test_transposed_blob_rejected(self):
        module = mlp_module()
        state = module.state_dict()
        state["layer0.weight"] = state["layer0.weight"].T
        report = check_state_dict(module, state)
        assert [p.kind for p in report.problems] == ["shape"]
        assert "layer0.weight" in report.problems[0].name

    def test_re_dtyped_blob_rejected(self):
        module = mlp_module()
        state = module.state_dict()
        state["layer0.bias"] = state["layer0.bias"].astype(np.int64)
        report = check_state_dict(module, state)
        assert [p.kind for p in report.problems] == ["dtype"]

    def test_float32_width_change_allowed(self):
        module = mlp_module()
        state = {k: v.astype(np.float32)
                 for k, v in module.state_dict().items()}
        assert check_state_dict(module, state).ok

    def test_unexpected_key_rejected(self):
        module = mlp_module()
        state = module.state_dict()
        state["ghost.weight"] = np.zeros((2, 2))
        kinds = {p.kind for p in check_state_dict(module, state).problems}
        assert kinds == {"unexpected"}

    def test_typed_error_names_parameter(self):
        module = mlp_module()
        state = module.state_dict()
        state["layer0.weight"] = state["layer0.weight"].T
        report = check_state_dict(module, state)
        with pytest.raises(CheckpointIncompatibleError,
                           match="layer0.weight") as excinfo:
            report.raise_if_incompatible(context="unit test")
        assert excinfo.value.problems[0].kind == "shape"
        assert "unit test" in str(excinfo.value)

    def test_reference_may_be_plain_state_dict(self):
        module = mlp_module()
        reference = module.state_dict()
        spec = state_spec(reference)
        assert all(isinstance(value, TensorSpec) for value in spec.values())
        bad = dict(reference)
        bad["layer0.bias"] = np.zeros(99)
        assert not check_state_dict(reference, bad).ok

    def test_verify_checkpoint_file(self, tmp_path):
        module = mlp_module()
        path = tmp_path / "ckpt.npz"
        save_state_dict(module.state_dict(), path)
        assert verify_checkpoint_file(path, module).ok
        other = StreamingMLP(num_features=9, num_classes=3, hidden=(4,),
                             seed=0).module
        assert not verify_checkpoint_file(path, other).ok


class TestLoadStateDictTightened:
    def test_shape_error_names_parameter(self):
        module = mlp_module()
        state = module.state_dict()
        state["layer2.weight"] = state["layer2.weight"].T
        with pytest.raises(ValueError, match="parameter 'layer2.weight'"):
            module.load_state_dict(state)

    def test_dtype_error_names_parameter(self):
        module = mlp_module()
        state = module.state_dict()
        state["layer0.bias"] = state["layer0.bias"].astype(np.complex128)
        with pytest.raises(TypeError, match="parameter 'layer0.bias'"):
            module.load_state_dict(state)

    def test_no_partial_write_on_late_failure(self):
        # layer2.weight is invalid; layer0.* (validated earlier) must not
        # have been written when the error surfaces.
        module = mlp_module()
        before = module.state_dict()
        state = module.state_dict()
        for key in state:
            state[key] = state[key] + 1.0
        state["layer2.weight"] = state["layer2.weight"].T
        with pytest.raises(ValueError):
            module.load_state_dict(state)
        after = module.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_float32_still_loads(self):
        module = mlp_module()
        state = {k: v.astype(np.float32)
                 for k, v in module.state_dict().items()}
        module.load_state_dict(state)
        assert module.state_dict()["layer0.weight"].dtype == np.float64


# ---------------------------------------------------------------------------
# KnowledgeStore.restore gating + CheckpointRejected event
# ---------------------------------------------------------------------------


class TestKnowledgeRestoreGate:
    def make_store(self):
        obs = Observability.in_memory()
        return KnowledgeStore(capacity=4, obs=obs), obs

    def test_compatible_restore_loads_weights(self):
        store, _ = self.make_store()
        donor = StreamingLR(num_features=4, num_classes=2, seed=1)
        target = StreamingLR(num_features=4, num_classes=2, seed=2)
        entry = store.preserve(np.zeros(2), donor.state_dict(), "short",
                               disorder=0.1, batch_index=3)
        store.restore(entry, target)
        np.testing.assert_allclose(target.state_dict()["weight"],
                                   donor.state_dict()["weight"])

    def test_incompatible_restore_is_typed_error_and_event(self):
        store, obs = self.make_store()
        donor = StreamingLR(num_features=5, num_classes=2, seed=1)
        target = StreamingLR(num_features=4, num_classes=2, seed=2)
        entry = store.preserve(np.zeros(2), donor.state_dict(), "short",
                               disorder=0.1, batch_index=7)
        before = target.state_dict()

        with pytest.raises(CheckpointIncompatibleError, match="batch 7"):
            store.restore(entry, target)

        # Nothing was written to the target model.
        np.testing.assert_array_equal(target.state_dict()["weight"],
                                      before["weight"])
        rejected = obs.sink.events_of(CheckpointRejected)
        assert len(rejected) == 1
        assert rejected[0].source == "knowledge"
        assert rejected[0].batch == 7
        assert rejected[0].model_kind == "short"
        assert rejected[0].problems >= 1
        snapshot = obs.registry.snapshot()
        series = snapshot["freeway_checkpoints_rejected_total"]["series"]
        assert sum(entry["value"] for entry in series) == 1
        assert series[0]["labels"] == {"source": "knowledge"}

    def test_learner_verify_pending_reuse_blocked_safely(self):
        factory = lambda: StreamingLR(num_features=4, num_classes=2, seed=0)
        obs = Observability.in_memory()
        learner = Learner(factory, num_models=1, seed=0, obs=obs)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 4))
        y = (x[:, 0] > 0).astype(np.int64)
        learner.update(x, y)
        before = learner.ensemble.levels[0].model.state_dict()

        bogus = StreamingLR(num_features=9, num_classes=2, seed=0)
        entry = learner.knowledge.preserve(
            np.zeros(2), bogus.state_dict(), "short", 0.1, batch_index=1)
        learner._pending_reuse = KnowledgeMatch(entry=entry, distance=0.05)
        learner.update(x, y)  # must not raise, must not warm-start

        after = learner.ensemble.levels[0].model.state_dict()
        assert before["weight"].shape == after["weight"].shape
        assert obs.sink.events_of(CheckpointRejected)


# ---------------------------------------------------------------------------
# Persistence gating
# ---------------------------------------------------------------------------


class TestPersistenceGate:
    def test_tampered_checkpoint_rejected_with_typed_error(self, tmp_path):
        factory = lambda: StreamingMLP(num_features=8, num_classes=3,
                                       hidden=(6,), seed=0)
        learner = Learner(factory, num_models=2, window_batches=4, seed=0)
        rng = np.random.default_rng(1)
        for _ in range(3):
            x = rng.normal(size=(64, 8))
            y = rng.integers(0, 3, size=64)
            learner.update(x, y)
        path = tmp_path / "ckpt.npz"
        save_learner(learner, path)

        # Transpose one level-0 weight in the archive.
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        key = "level0/layer0.weight"
        assert key in arrays
        arrays[key] = arrays[key].T
        np.savez(path, **arrays)

        fresh = Learner(factory, num_models=2, window_batches=4, seed=0)
        with pytest.raises(CheckpointIncompatibleError,
                           match="granularity level 0"):
            load_learner(fresh, path)


# ---------------------------------------------------------------------------
# Lint rules
# ---------------------------------------------------------------------------


def findings_for(source, path="pkg/module.py"):
    return lint_source(source, path)


def active_codes(source, path="pkg/module.py"):
    return [f.code for f in findings_for(source, path) if not f.suppressed]


class TestLintRules:
    def test_rep001_legacy_global_rng(self):
        src = '__all__ = []\nimport numpy as np\nnp.random.seed(0)\nvalue = np.random.rand(3)\n'
        assert active_codes(src) == ["REP001", "REP001"]

    def test_rep001_unseeded_default_rng(self):
        src = '__all__ = []\nimport numpy as np\nrng = np.random.default_rng()\n'
        assert active_codes(src) == ["REP001"]

    def test_rep001_seeded_is_clean(self):
        src = ('__all__ = []\nimport numpy as np\n'
               'rng = np.random.default_rng(42)\n'
               'gen: np.random.Generator = rng\n')
        assert active_codes(src) == []

    def test_rep001_suppressed(self):
        src = ('__all__ = []\nimport numpy as np\n'
               'rng = np.random.default_rng()  # repro: noqa[REP001] — opt-out\n')
        findings = findings_for(src)
        assert [f.code for f in findings] == ["REP001"]
        assert findings[0].suppressed

    def test_rep002_data_mutation_outside_nn(self):
        src = '__all__ = []\ntensor.data = tensor.data * 2\ntensor.data[0] = 1\n'
        assert active_codes(src) == ["REP002", "REP002"]

    def test_rep002_allowed_inside_nn(self):
        src = 'tensor.data = tensor.data * 2\n'
        assert active_codes(src, path="src/repro/nn/optim.py") == []

    def test_rep003_float_equality_in_core(self):
        src = '__all__ = []\nif x.std() == 0:\n    pass\nok = y == 0.5\n'
        assert active_codes(src, path="src/repro/core/thing.py") == \
            ["REP003", "REP003"]

    def test_rep003_only_in_shift_and_core(self):
        src = '__all__ = []\nok = y == 0.5\n'
        assert active_codes(src, path="src/repro/data/thing.py") == []

    def test_rep003_int_and_string_equality_clean(self):
        src = ('__all__ = []\nif count == 0:\n    pass\n'
               'if kind != "auto":\n    pass\n')
        assert active_codes(src, path="src/repro/core/thing.py") == []

    def test_rep004_swallowing_broad_except(self):
        src = ('__all__ = []\ntry:\n    step()\n'
               'except Exception:\n    pass\n')
        assert active_codes(src) == ["REP004"]

    def test_rep004_bare_except(self):
        src = '__all__ = []\ntry:\n    step()\nexcept:\n    pass\n'
        assert active_codes(src) == ["REP004"]

    def test_rep004_reraise_is_clean(self):
        src = ('__all__ = []\ntry:\n    step()\n'
               'except Exception:\n    log()\n    raise\n')
        assert active_codes(src) == []

    def test_rep004_narrow_except_clean(self):
        src = '__all__ = []\ntry:\n    step()\nexcept ValueError:\n    pass\n'
        assert active_codes(src) == []

    def test_rep005_direct_sink_emit(self):
        src = '__all__ = []\nself.obs.sink.emit(event)\n'
        assert active_codes(src) == ["REP005"]

    def test_rep005_facade_emit_clean(self):
        src = '__all__ = []\nobs.emit(event)\n'
        assert active_codes(src) == []

    def test_rep005_allowed_inside_obs(self):
        src = 'self.sink.emit(record)\n'
        assert active_codes(src, path="src/repro/obs/facade.py") == []

    def test_rep006_public_module_without_all(self):
        src = 'def shiny():\n    return 1\n'
        findings = findings_for(src)
        assert [f.code for f in findings] == ["REP006"]
        assert findings[0].line == 1

    def test_rep006_private_module_exempt(self):
        src = 'def shiny():\n    return 1\n'
        assert active_codes(src, path="pkg/_private.py") == []
        assert active_codes(src, path="pkg/__main__.py") == []

    def test_rep006_suppressed_on_line_one(self):
        src = '# repro: noqa[REP006]\ndef shiny():\n    return 1\n'
        findings = findings_for(src)
        assert findings[0].suppressed

    def test_rep007_entry_loop_in_core(self):
        src = ('__all__ = []\nfor entry in self._entries:\n'
               '    total += entry.weight\n')
        assert active_codes(src, path="src/repro/core/window.py") == \
            ["REP007"]

    def test_rep007_sees_through_wrappers(self):
        src = ('__all__ = []\n'
               'for i, entry in enumerate(reversed(window.entries)):\n'
               '    use(entry)\n')
        assert active_codes(src, path="src/repro/core/window.py") == \
            ["REP007"]

    def test_rep007_outside_core_clean(self):
        src = '__all__ = []\nfor entry in self._entries:\n    use(entry)\n'
        assert active_codes(src, path="src/repro/shift/thing.py") == []

    def test_rep007_other_iterables_clean(self):
        src = '__all__ = []\nfor level in self.levels:\n    use(level)\n'
        assert active_codes(src, path="src/repro/core/thing.py") == []

    def test_rep007_noqa_escape_hatch(self):
        src = ('__all__ = []\n'
               'for entry in self._entries:  '
               '# repro: noqa[REP007] — serialization, off the hot path\n'
               '    save(entry)\n')
        findings = findings_for(src, path="src/repro/core/io.py")
        assert [f.code for f in findings] == ["REP007"]
        assert findings[0].suppressed

    def test_rep012_allocation_in_replay_kernel(self):
        src = ('__all__ = []\nimport numpy as np\n'
               '@replay_kernel\n'
               'def forward(self, arena, x):\n'
               '    scratch = np.zeros((8, 8))\n'
               '    t = Tensor(x)\n'
               '    grad = np.empty_like(x)\n'
               '    return scratch, t, grad\n')
        assert active_codes(src) == ["REP012", "REP012", "REP012"]

    def test_rep012_undecorated_function_clean(self):
        src = ('__all__ = []\nimport numpy as np\n'
               'def forward(self, x):\n'
               '    return np.zeros((8, 8))\n')
        assert active_codes(src) == []

    def test_rep012_arena_writes_clean(self):
        src = ('__all__ = []\nimport numpy as np\n'
               '@replay_kernel\n'
               'def forward(self, arena, x):\n'
               '    np.matmul(x, self.w, out=arena.out)\n'
               '    np.maximum(arena.out, 0.0, out=arena.out)\n'
               '    return arena.out\n')
        assert active_codes(src) == []

    def test_rep012_noqa_escape_hatch(self):
        src = ('__all__ = []\nimport numpy as np\n'
               '@replay_kernel\n'
               'def forward(self, arena, x):\n'
               '    return np.zeros(3)  '
               '# repro: noqa[REP012] — capture-time only\n')
        findings = findings_for(src)
        assert [f.code for f in findings] == ["REP012"]
        assert findings[0].suppressed

    def test_blanket_noqa(self):
        src = '__all__ = []\nimport numpy as np\nnp.random.seed(0)  # repro: noqa\n'
        assert active_codes(src) == []

    def test_rep000_syntax_error(self):
        assert [f.code for f in findings_for("def broken(:\n")] == ["REP000"]


FIXTURE_ALL_RULES = '''\
import numpy as np

def stream_loop(batches, tensor, obs, threshold):
    np.random.seed(0)
    rng = np.random.default_rng()
    for batch in batches:
        tensor.data = tensor.data * 0.5
        if batch.distance() == 0.0:
            continue
        try:
            obs.sink.emit(batch)
        except Exception:
            pass
    return threshold
'''


class TestRunner:
    def write_fixture(self, tmp_path):
        # Path contains "core" so REP003 is in scope.
        fixture_dir = tmp_path / "core"
        fixture_dir.mkdir()
        (fixture_dir / "violations.py").write_text(FIXTURE_ALL_RULES)
        return fixture_dir

    def test_fixture_trips_every_rule(self, tmp_path):
        fixture_dir = self.write_fixture(tmp_path)
        findings = lint_paths([fixture_dir])
        assert {f.code for f in findings if not f.suppressed} == {
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
        }

    def test_json_output_and_exit_code(self, tmp_path, capsys):
        fixture_dir = self.write_fixture(tmp_path)
        code = run_analyze([fixture_dir], output_format="json")
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert set(payload["counts"]) == {
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
        }
        assert payload["files"] == 1
        assert all({"code", "message", "path", "line", "col"} <=
                   set(f) for f in payload["findings"])

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text('__all__ = ["f"]\ndef f():\n    return 1\n')
        assert run_analyze([clean]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_missing_path_exits_two(self, tmp_path):
        assert run_analyze([tmp_path / "nope"]) == EXIT_USAGE

    def test_suppressed_findings_reported_in_json(self, tmp_path, capsys):
        target = tmp_path / "suppressed.py"
        target.write_text(
            '__all__ = []\nimport numpy as np\n'
            'np.random.seed(0)  # repro: noqa[REP001]\n'
        )
        assert run_analyze([target], output_format="json") == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert len(payload["suppressed"]) == 1


class TestTreeIsClean:
    def test_src_analyzes_clean(self):
        findings = [f for f in lint_paths([SRC]) if not f.suppressed]
        assert findings == [], "\n".join(f.describe() for f in findings)


class TestCli:
    def test_analyze_subcommand_clean_tree(self):
        assert cli_main(["analyze", str(SRC)]) == EXIT_CLEAN

    def test_analyze_subcommand_check_models(self, capsys):
        assert cli_main(["analyze", str(SRC), "--check-models"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "model zoo" in out
        assert "cnn-image" in out

    def test_analyze_subcommand_json_failure(self, tmp_path, capsys):
        fixture_dir = tmp_path / "core"
        fixture_dir.mkdir()
        (fixture_dir / "violations.py").write_text(FIXTURE_ALL_RULES)
        code = cli_main(["analyze", str(fixture_dir), "--format", "json"])
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"]
