"""Tests for the rate-aware adjuster (repro.core.rate)."""

import pytest

from repro.core import RateAwareAdjuster


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make(high_rate=1000.0, **kwargs):
    clock = FakeClock()
    adjuster = RateAwareAdjuster(high_rate=high_rate, clock=clock, **kwargs)
    return adjuster, clock


class TestFlowRateEstimation:
    def test_ema_tracks_rate(self):
        adjuster, clock = make()
        adjuster.observe(100)
        for _ in range(50):
            clock.advance(0.1)      # 100 items / 0.1s = 1000 items/s
            adjuster.observe(100)
        assert adjuster.flow_rate == pytest.approx(1000.0, rel=0.05)

    def test_first_observation_no_rate(self):
        adjuster, _ = make()
        adjuster.observe(100)
        assert adjuster.flow_rate == 0.0


class TestThrottling:
    def test_stride_grows_under_load(self):
        adjuster, clock = make(high_rate=10.0, max_stride=4)
        adjuster.observe(100)
        for _ in range(10):
            clock.advance(0.01)     # 10,000 items/s >> 10
            adjuster.observe(100, window_pressure=0.95)
        assert adjuster.inference_stride == 4
        assert adjuster.decay_boost == 2.0

    def test_stride_recovers_when_calm(self):
        adjuster, clock = make(high_rate=10.0, max_stride=4)
        adjuster.observe(100)
        for _ in range(10):
            clock.advance(0.01)
            adjuster.observe(100, window_pressure=0.95)
        for _ in range(30):
            clock.advance(100.0)    # 1 item/s << 10
            adjuster.observe(100, window_pressure=0.0)
        assert adjuster.inference_stride == 1
        assert adjuster.decay_boost == 1.0

    def test_pressure_required_for_throttle(self):
        adjuster, clock = make(high_rate=10.0)
        adjuster.observe(100)
        for _ in range(10):
            clock.advance(0.01)
            adjuster.observe(100, window_pressure=0.0)  # fast but no pressure
        assert adjuster.inference_stride == 1

    def test_should_infer_follows_stride(self):
        adjuster, _ = make()
        adjuster.inference_stride = 3
        decisions = [adjuster.should_infer(i) for i in range(6)]
        assert decisions == [True, False, False, True, False, False]

    def test_disabled_when_high_rate_none(self):
        clock = FakeClock()
        adjuster = RateAwareAdjuster(high_rate=None, clock=clock)
        adjuster.observe(100)
        for _ in range(10):
            clock.advance(0.0001)
            adjuster.observe(100, window_pressure=1.0)
        assert adjuster.inference_stride == 1
        assert adjuster.decay_boost == 1.0


class TestValidation:
    def test_bad_stride(self):
        with pytest.raises(ValueError):
            RateAwareAdjuster(max_stride=0)

    def test_bad_ema(self):
        with pytest.raises(ValueError):
            RateAwareAdjuster(ema=0.0)
        with pytest.raises(ValueError):
            RateAwareAdjuster(ema=1.5)
