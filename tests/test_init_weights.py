"""Tests for weight initializers (repro.nn.init)."""

import math

import numpy as np
import pytest

from repro.nn import init


class TestFanComputation:
    def test_linear_shape(self):
        fan_in, fan_out = init.fan_in_and_out((8, 3))
        assert fan_in == 3
        assert fan_out == 8

    def test_conv_shape_includes_receptive_field(self):
        fan_in, fan_out = init.fan_in_and_out((16, 4, 3, 3))
        assert fan_in == 4 * 9
        assert fan_out == 16 * 9

    def test_vector_rejected(self):
        with pytest.raises(ValueError):
            init.fan_in_and_out((5,))


class TestKaimingUniform:
    def test_bound_formula(self, rng):
        shape = (64, 32)
        values = init.kaiming_uniform(shape, rng)
        gain = math.sqrt(2.0 / (1.0 + 5.0))
        bound = gain * math.sqrt(3.0 / 32)
        assert values.min() >= -bound
        assert values.max() <= bound
        # Nearly fills the bound on a large sample.
        assert values.max() > 0.8 * bound

    def test_deterministic_per_seed(self):
        a = init.kaiming_uniform((4, 4), np.random.default_rng(3))
        b = init.kaiming_uniform((4, 4), np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestXavierUniform:
    def test_bound_formula(self, rng):
        values = init.xavier_uniform((50, 30), rng)
        bound = math.sqrt(6.0 / 80)
        assert np.abs(values).max() <= bound

    def test_gain_scales(self, rng):
        small = init.xavier_uniform((100, 100),
                                    np.random.default_rng(0), gain=1.0)
        large = init.xavier_uniform((100, 100),
                                    np.random.default_rng(0), gain=2.0)
        np.testing.assert_allclose(large, 2.0 * small)


class TestOthers:
    def test_uniform_range(self, rng):
        values = init.uniform((1000,), rng, -2.0, 5.0)
        assert values.min() >= -2.0
        assert values.max() < 5.0

    def test_normal_moments(self, rng):
        values = init.normal((20000,), rng, mean=1.0, std=2.0)
        assert abs(values.mean() - 1.0) < 0.1
        assert abs(values.std() - 2.0) < 0.1

    def test_zeros(self):
        np.testing.assert_array_equal(init.zeros((3, 2)), np.zeros((3, 2)))
